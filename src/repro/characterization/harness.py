"""Characterization harness: the Section 3.1 methodology against the
device model.

The study protocol: pick chips, select blocks evenly across each chip,
pre-cycle them to a target P/E count, bake to a target retention time,
then read every WL and count raw retention bit errors.  The harness
returns dense numpy grids indexed ``[block, layer, wl]`` per aging
condition, from which the experiments module derives every Fig. 5/6
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.nand.chip import NandChip
from repro.nand.geometry import BlockGeometry
from repro.nand.reliability import AgingState


@dataclass(frozen=True)
class StudyConfig:
    """Scope of a characterization run.

    The paper used 160 chips x 128 blocks (more than 20 000 blocks,
    11.5 M pages); the default here is smaller but follows the same
    sampling structure.  Scale ``n_chips``/``blocks_per_chip`` up for
    paper-scale statistics.
    """

    n_chips: int = 8
    blocks_per_chip: int = 16
    geometry: BlockGeometry = field(default_factory=BlockGeometry)
    seed: int = 0

    @property
    def total_blocks(self) -> int:
        return self.n_chips * self.blocks_per_chip

    @property
    def total_wls(self) -> int:
        return self.total_blocks * self.geometry.wls_per_block

    @property
    def total_pages(self) -> int:
        return self.total_wls * self.geometry.pages_per_wl


class CharacterizationStudy:
    """Runs the N_ret measurement protocol over a grid of aging states."""

    def __init__(self, config: StudyConfig = StudyConfig()) -> None:
        self.config = config
        self.chips: List[NandChip] = [
            NandChip(
                chip_id=chip_id,
                n_blocks=config.blocks_per_chip,
                geometry=config.geometry,
            )
            for chip_id in range(config.n_chips)
        ]
        # blocks sampled evenly across each chip's address space
        self.sampled_blocks = list(range(config.blocks_per_chip))
        self._cache: Dict[Tuple[int, float], np.ndarray] = {}

    def measure(self, aging: AgingState) -> np.ndarray:
        """N_ret for every sampled WL under one aging condition.

        Returns an int array of shape
        ``(n_chips * blocks_per_chip, n_layers, wls_per_layer)``.
        """
        key = (aging.pe_cycles, aging.retention_months)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        geometry = self.config.geometry
        result = np.zeros(
            (self.config.total_blocks, geometry.n_layers, geometry.wls_per_layer),
            dtype=np.int64,
        )
        row = 0
        for chip in self.chips:
            for block in self.sampled_blocks:
                for layer in range(geometry.n_layers):
                    for wl in range(geometry.wls_per_layer):
                        result[row, layer, wl] = chip.measure_retention_errors(
                            block, layer, wl, aging
                        )
                row += 1
        self._cache[key] = result
        return result

    def measure_grid(
        self, pe_points: Sequence[int], retention_points: Sequence[float]
    ) -> Dict[Tuple[int, float], np.ndarray]:
        """Sweep the full (P/E, retention) grid of the study."""
        return {
            (pe, ret): self.measure(AgingState(pe, ret))
            for pe in pe_points
            for ret in retention_points
        }

    # ------------------------------------------------------------------

    def delta_h_values(self, aging: AgingState) -> np.ndarray:
        """Delta-H of every sampled (block, h-layer) pair."""
        grid = self.measure(aging).astype(float)
        return grid.max(axis=2) / grid.min(axis=2)

    def delta_v_values(self, aging: AgingState) -> np.ndarray:
        """Delta-V of every sampled (block, v-layer) pair."""
        grid = self.measure(aging).astype(float)
        return grid.max(axis=1) / grid.min(axis=1)

    def t_prog_per_wl(self, block_row: int = 0) -> np.ndarray:
        """Default-parameter tPROG of every WL of one sampled block
        (Fig. 5(d): identical within each h-layer)."""
        chip_index, block_offset = divmod(block_row, self.config.blocks_per_chip)
        chip = self.chips[chip_index]
        block = self.sampled_blocks[block_offset]
        geometry = self.config.geometry
        out = np.zeros((geometry.n_layers, geometry.wls_per_layer))
        for layer in range(geometry.n_layers):
            slowdown = chip.reliability.program_slowdown(chip.chip_id, block, layer)
            for wl in range(geometry.wls_per_layer):
                out[layer, wl] = chip.ispp.default_t_prog_us(slowdown)
        return out
