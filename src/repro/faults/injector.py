"""Deterministic, seeded fault injection for the NAND device model.

The :class:`FaultInjector` is created by the
:class:`~repro.ssd.controller.SSDController` from the config's
:class:`~repro.faults.campaign.FaultCampaign` and shared by every chip.
Each query is a pure function of ``(campaign seed, operation identity)``
via :func:`repro.nand.reliability.hash_unit`, so identical configs
replay identical fault sequences -- the property the seeded-determinism
regression test pins down.

The injector only *decides* faults; the chip turns the decisions into
failure statuses / perturbed observables, and the FTL recovers.  With no
injector attached (the default) the device model takes no extra draws
and behaves bit-for-bit like the fault-free seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.faults.campaign import FaultCampaign
from repro.nand.reliability import hash_unit

# domain-separation tags for the hash draws (arbitrary, fixed)
_TAG_PROGRAM = 0xFA01
_TAG_ERASE = 0xFA02
_TAG_GROWN = 0xFA03
_TAG_SPIKE = 0xFA04
_TAG_SKEW = 0xFA05
_TAG_SKEW_SIGN = 0xFA06
_TAG_STUCK = 0xFA07


@dataclass
class InjectionCounters:
    """How many faults the injector actually fired (diagnostics)."""

    program_fails: int = 0
    erase_fails: int = 0
    grown_bad_trips: int = 0
    ber_spikes: int = 0
    ort_skews: int = 0
    stuck_ops: int = 0


class FaultInjector:
    """Seeded per-operation fault decisions for one campaign."""

    def __init__(self, campaign: FaultCampaign) -> None:
        self.campaign = campaign
        self.seed = campaign.seed
        self.injected = InjectionCounters()
        #: chip_id -> {block: onset erase count}
        self._grown_bad: Dict[int, Dict[int, int]] = {}
        #: targeted skews planted by tests: (chip, block, layer) -> steps
        self._forced_skews: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # program / erase faults
    # ------------------------------------------------------------------

    def program_fails(
        self, chip_id: int, block: int, wl_index: int, nonce: int
    ) -> bool:
        """Whether this WL program reports a program-status failure."""
        p = self.campaign.program_fail_prob
        if p <= 0.0:
            return False
        u = hash_unit(self.seed, _TAG_PROGRAM, chip_id, block, wl_index, nonce)
        if u < p:
            self.injected.program_fails += 1
            return True
        return False

    def grown_bad_blocks(self, chip_id: int, n_blocks: int) -> Dict[int, int]:
        """The chip's grown-bad blocks: ``{block: onset erase count}``."""
        table = self._grown_bad.get(chip_id)
        if table is None:
            table = {}
            count = min(self.campaign.grown_bad_per_chip, n_blocks)
            draw = 0
            while len(table) < count:
                u = hash_unit(self.seed, _TAG_GROWN, chip_id, draw)
                block = int(u * n_blocks) % n_blocks
                draw += 1
                if block in table:
                    continue
                table[block] = self.campaign.grown_bad_onset_erases
            self._grown_bad[chip_id] = table
        return table

    def erase_fails(
        self, chip_id: int, block: int, n_blocks: int, erase_count: int
    ) -> bool:
        """Whether this block erase fails.

        A grown-bad block fails permanently from its onset erase count
        on; any block can additionally fail transiently with
        ``erase_fail_prob``.
        """
        onset = self.grown_bad_blocks(chip_id, n_blocks).get(block)
        if onset is not None and erase_count >= onset:
            self.injected.grown_bad_trips += 1
            self.injected.erase_fails += 1
            return True
        p = self.campaign.erase_fail_prob
        if p <= 0.0:
            return False
        u = hash_unit(self.seed, _TAG_ERASE, chip_id, block, erase_count)
        if u < p:
            self.injected.erase_fails += 1
            return True
        return False

    # ------------------------------------------------------------------
    # read faults
    # ------------------------------------------------------------------

    def ber_multiplier(self, chip_id: int, block: int, nonce: int) -> float:
        """Transient raw-BER multiplier for one read (1.0 = no spike)."""
        p = self.campaign.ber_spike_prob
        if p <= 0.0:
            return 1.0
        u = hash_unit(self.seed, _TAG_SPIKE, chip_id, block, nonce)
        if u < p:
            self.injected.ber_spikes += 1
            return self.campaign.ber_spike_factor
        return 1.0

    def ort_skew(
        self, chip_id: int, block: int, layer: int, epoch: int, read_nonce: int
    ) -> int:
        """Offset-level skew of an h-layer's optimal read offset.

        Re-drawn per block-erase ``epoch`` *and* per read-phase window
        (``read_nonce // ort_skew_phase_reads``): within one phase the
        skew is stable, so it behaves like a real shift of the optimum,
        and a phase transition models read-disturb / retention drift that
        strands previously learned ORT hints mid-epoch -- the stale-ORT
        hazard.  Erasing the block (new epoch) clears the skew with the
        data.
        """
        forced = self._forced_skews.get((chip_id, block, layer))
        if forced is not None:
            return forced
        p = self.campaign.ort_skew_prob
        if p <= 0.0:
            return 0
        phase = read_nonce // self.campaign.ort_skew_phase_reads
        u = hash_unit(self.seed, _TAG_SKEW, chip_id, block, layer, epoch, phase)
        if u >= p:
            return 0
        self.injected.ort_skews += 1
        sign_u = hash_unit(
            self.seed, _TAG_SKEW_SIGN, chip_id, block, layer, epoch, phase
        )
        sign = 1 if sign_u < 0.5 else -1
        return sign * self.campaign.ort_skew_steps

    def force_ort_skew(
        self, chip_id: int, block: int, layer: int, steps: int
    ) -> None:
        """Plant a targeted stale-offset fault (test hook)."""
        self._forced_skews[(chip_id, block, layer)] = steps

    def clear_forced_skews(self) -> None:
        self._forced_skews.clear()

    # ------------------------------------------------------------------
    # latency faults
    # ------------------------------------------------------------------

    def latency_factor(self, chip_id: int, nonce: int) -> float:
        """Service-time multiplier for one die operation (stuck die)."""
        p = self.campaign.stuck_die_prob
        if p <= 0.0:
            return 1.0
        u = hash_unit(self.seed, _TAG_STUCK, chip_id, nonce)
        if u < p:
            self.injected.stuck_ops += 1
            return self.campaign.stuck_latency_factor
        return 1.0

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable injector state.

        Every decision is a pure function of (seed, operation identity),
        so the only state is the fired-fault accounting, the lazily drawn
        grown-bad table, and any test-planted skews.  The campaign itself
        is part of the config fingerprint, not the state.
        """
        return {
            "injected": dict(vars(self.injected)),
            "grown_bad": {
                chip: dict(table) for chip, table in self._grown_bad.items()
            },
            "forced_skews": dict(self._forced_skews),
        }

    def load_state_dict(self, state: dict) -> None:
        self.injected = InjectionCounters(**state["injected"])
        self._grown_bad = {
            chip: dict(table) for chip, table in state["grown_bad"].items()
        }
        self._forced_skews = dict(state["forced_skews"])
