"""Fault injection and recovery accounting.

- :class:`FaultCampaign` -- declarative, seeded fault-campaign config
  (part of :class:`~repro.ssd.config.SSDConfig`);
- :class:`FaultInjector` -- per-operation deterministic fault decisions,
  consumed by :class:`~repro.nand.chip.NandChip`;
- :class:`RecoveryCounters` -- the FTL's record of what it survived.
"""

from repro.faults.campaign import CAMPAIGNS, FaultCampaign, get_campaign
from repro.faults.counters import RecoveryCounters
from repro.faults.injector import FaultInjector, InjectionCounters

__all__ = [
    "CAMPAIGNS",
    "FaultCampaign",
    "FaultInjector",
    "InjectionCounters",
    "RecoveryCounters",
    "get_campaign",
]
