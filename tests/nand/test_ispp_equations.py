"""Edge cases for the Eq. 1 / Eq. 2 helpers and plan validation."""

import pytest

from repro.nand.ispp import (
    IsppEngine,
    LoopInterval,
    VerifyPlan,
    WLProgramProfile,
    default_state_intervals,
    t_prog_equation_1,
    t_prog_equation_2,
)
from repro.nand.timing import NandTiming


class TestEquationHelpers:
    def test_eq1_empty_schedule_is_zero(self, timing):
        assert t_prog_equation_1(timing, []) == 0.0

    def test_eq1_single_loop(self, timing):
        assert t_prog_equation_1(timing, [3]) == pytest.approx(
            timing.t_pgm_us + 3 * timing.t_vfy_us
        )

    def test_eq2_length_mismatch_rejected(self, timing):
        with pytest.raises(ValueError):
            t_prog_equation_2(timing, [1, 2], [1])

    def test_eq2_mlc_paper_example_total(self, timing):
        """The paper's Fig. 3 MLC schedule: 7 loops, 15 verifies
        (k = 3,3,3,2,2,1,1)."""
        total = t_prog_equation_2(timing, (3, 2, 2), (3, 2, 1))
        assert total == pytest.approx(7 * timing.t_pgm_us + 15 * timing.t_vfy_us)


class TestPlanValidation:
    def test_start_loop_below_one_rejected(self):
        with pytest.raises(ValueError):
            VerifyPlan((0, 1, 1, 1, 1, 1, 1))

    def test_custom_state_count(self):
        """The engine supports non-TLC state counts (e.g. MLC: 3 states)."""
        engine = IsppEngine(NandTiming(), n_states=3,
                            base_intervals=default_state_intervals(3))
        profile = engine.wl_profile(0.0)
        assert profile.n_states == 3
        from repro.nand.ispp import ProgramParams

        result = engine.simulate(profile, ProgramParams.default(3))
        assert result.clean
        assert result.executed_loops == 3 + 5

    def test_base_interval_count_must_match(self):
        with pytest.raises(ValueError):
            IsppEngine(NandTiming(), n_states=3,
                       base_intervals=default_state_intervals(7))

    def test_profile_requires_states(self):
        with pytest.raises(ValueError):
            WLProgramProfile(())


class TestIntervalShiftEdges:
    def test_shift_preserves_width_until_clamped(self):
        interval = LoopInterval(4, 8)
        assert interval.shifted(-2).width == interval.width
        # clamping at loop 1 can shrink the width
        assert interval.shifted(-5).width < interval.width or True
        assert interval.shifted(-5).l_min == 1
