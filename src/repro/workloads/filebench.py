"""Filebench-personality workload models (Section 6.1 of the paper).

The paper drives its SSD with four Filebench personalities.  Each
generator below synthesizes the personality's characteristic I/O stream
from its published description:

- **Mail** (varmail): many small files with frequent fsyncs -- a roughly
  half-and-half mix of small random reads and small synchronous writes
  over a modest working set.
- **Web** (webserver): overwhelmingly reads of popular files (Zipf), with
  a thin append-only access log.
- **Proxy**: a proxy cache -- read-mostly but with a meaningful stream of
  cache-fill writes; accesses are nearly uniform (low re-reference
  locality beyond the cache), which maximizes read-retry exposure on
  aged devices (why cubeFTL's largest end-of-life gain appears here,
  Fig. 17(c)).
- **OLTP**: a database backend -- the most write-intensive of the four,
  dominated by small random writes arriving in bursts (log flushes and
  checkpoint storms), plus random point reads.  Burst arrivals are what
  exercise the WAM's adaptive allocation (why cubeFTL's largest fresh
  gain appears here, Fig. 17(a)).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import READ, WRITE, IORequest, Trace
from repro.workloads.synthetic import ZipfSampler


def mail_trace(logical_pages: int, n_requests: int, seed: int = 1) -> Trace:
    """Filebench varmail: ~55 % small sync writes, ~45 % small reads."""
    rng = np.random.default_rng(seed)
    trace = Trace("Mail", logical_pages)
    working_set = max(16, int(logical_pages * 0.30))
    base = rng.integers(0, max(1, logical_pages - working_set))
    for _ in range(n_requests):
        lpn = int(base + rng.integers(0, working_set - 2))
        if rng.random() < 0.55:
            # small mail file append + fsync
            trace.append(IORequest(WRITE, lpn, 1))
        else:
            # whole-file read: one or two pages
            trace.append(IORequest(READ, lpn, int(rng.integers(1, 3))))
    return trace


def web_trace(logical_pages: int, n_requests: int, seed: int = 1) -> Trace:
    """Filebench webserver: ~92 % Zipf reads plus a sequential log."""
    rng = np.random.default_rng(seed)
    trace = Trace("Web", logical_pages)
    log_region = max(8, int(logical_pages * 0.02))
    file_region = logical_pages - log_region
    sampler = ZipfSampler(max(1, file_region - 4), theta=0.9, rng=rng)
    log_cursor = 0
    reads = sampler.sample(rng, n_requests)
    for i in range(n_requests):
        if rng.random() < 0.92:
            # whole-file reads: 16 KB - 64 KB
            trace.append(IORequest(READ, int(reads[i]), int(rng.integers(1, 5))))
        else:
            trace.append(IORequest(WRITE, file_region + log_cursor, 1))
            log_cursor = (log_cursor + 1) % (log_region - 1)
    return trace


def proxy_trace(logical_pages: int, n_requests: int, seed: int = 1) -> Trace:
    """Proxy cache: ~75 % near-uniform reads, ~25 % cache-fill writes."""
    rng = np.random.default_rng(seed)
    trace = Trace("Proxy", logical_pages)
    for _ in range(n_requests):
        if rng.random() < 0.75:
            # whole cached objects: 16 KB - 128 KB (1-8 pages)
            n_pages = int(rng.integers(1, 9))
            lpn = int(rng.integers(0, logical_pages - n_pages))
            trace.append(IORequest(READ, lpn, n_pages))
        else:
            # cache fill of a fetched object
            n_pages = int(rng.integers(1, 5))
            lpn = int(rng.integers(0, logical_pages - n_pages))
            trace.append(IORequest(WRITE, lpn, n_pages))
    return trace


def oltp_trace(logical_pages: int, n_requests: int, seed: int = 1) -> Trace:
    """OLTP: ~70 % small random writes arriving in bursts, ~30 % reads.

    Writes come in runs of 8-32 consecutive requests (log flushes /
    checkpoint storms) so the write buffer periodically saturates and the
    WAM switches to follower WLs.
    """
    rng = np.random.default_rng(seed)
    trace = Trace("OLTP", logical_pages)
    hot = max(16, int(logical_pages * 0.25))
    base = rng.integers(0, max(1, logical_pages - hot))
    produced = 0
    while produced < n_requests:
        if rng.random() < 0.70:
            burst = int(rng.integers(8, 33))
            for _ in range(min(burst, n_requests - produced)):
                lpn = int(base + rng.integers(0, hot - 1))
                trace.append(IORequest(WRITE, lpn, 1))
                produced += 1
        else:
            run = int(rng.integers(2, 9))
            for _ in range(min(run, n_requests - produced)):
                lpn = int(base + rng.integers(0, hot - 1))
                trace.append(IORequest(READ, lpn, 1))
                produced += 1
    return trace
