"""Observability: request-lifecycle tracing and time-sliced metrics.

The paper's claims are *latency decompositions* -- tPROG savings from
VFY skipping and MaxLoop reduction (Figs. 8-11), read-retry counts cut
by the ORT (Fig. 14) -- so the simulator must be able to attribute a
latency to a mechanism, not just report end-to-end percentiles.  This
package provides that attribution in three parts:

- :mod:`repro.obs.trace` -- a :class:`Tracer` that records one
  :class:`Span` per stage a host request passes through (write buffer,
  bus/die FIFOs, NAND operation, read retries, recovery), emitted to a
  pluggable :class:`TraceSink` (in-memory, JSONL file, null).  With no
  tracer attached every hook is a single ``is None`` test.
- :mod:`repro.obs.metrics` -- a :class:`MetricsSampler` driven by the
  event engine that periodically snapshots IOPS, buffer utilization
  (the WAM's mu signal), free-block counts, GC activity, the
  leader/follower WL mix, VFY-skip savings and the ORT hit rate.
- :mod:`repro.obs.analyze` -- turns a trace into per-stage latency
  breakdowns (queueing vs. NAND vs. retry time) and a metrics timeline
  (ASCII plot + dict).
- :mod:`repro.obs.registry` -- a Prometheus-style
  :class:`TelemetryRegistry` of named, labelled counters / gauges /
  histograms; :mod:`repro.obs.device` attaches the per-die /
  per-channel / per-h-layer device instruments to a built simulation.
- :mod:`repro.obs.profile` -- an opt-in :class:`WallClockProfiler`
  attributing *host* time to subsystems (FTL, NAND model, event
  queue, tracing).
- :mod:`repro.obs.log` -- structured ``REPRO key=value`` diagnostics
  on :mod:`logging` (:func:`configure_logging`, :func:`log_event`).
- :mod:`repro.obs.artifact` / :mod:`repro.obs.timeseries` /
  :mod:`repro.obs.exemplars` -- persistent run artifacts: a versioned
  ``runs/<run_id>/`` directory per run with the spec, results, a
  delta-compressed telemetry time-series, and tail/typical exemplar
  spans linked from the latency histogram's tail buckets.
- :mod:`repro.obs.report` / :mod:`repro.obs.diffing` -- deterministic
  ASCII/HTML dashboards over one artifact and metric-by-metric
  comparison between two (``repro-ssd report`` / ``repro-ssd diff``).

The supported entry point is :func:`repro.api.run_simulation` with its
``trace=`` and ``metrics_interval=`` arguments; see
``docs/OBSERVABILITY.md`` for the trace format and span taxonomy.
"""

from repro.obs.artifact import (
    load_artifact,
    run_fingerprint,
    run_id,
    validate_artifact,
    write_artifact,
    write_sweep_manifest,
)
from repro.obs.diffing import (
    SchemaDriftError,
    compare_artifacts,
    format_artifact_diff,
)
from repro.obs.exemplars import ExemplarRecorder
from repro.obs.log import configure_logging, get_logger, log_event
from repro.obs.metrics import MetricsSample, MetricsSampler
from repro.obs.report import render_html, render_report
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.profile import WallClockProfiler
from repro.obs.registry import Counter, Gauge, Histogram, TelemetryRegistry
from repro.obs.trace import (
    InMemorySink,
    JsonlSink,
    NullSink,
    Span,
    Tracer,
    TraceSink,
)

__all__ = [
    "Counter",
    "ExemplarRecorder",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsSample",
    "MetricsSampler",
    "NullSink",
    "SchemaDriftError",
    "Span",
    "TelemetryRegistry",
    "TimeSeriesRecorder",
    "TraceSink",
    "Tracer",
    "WallClockProfiler",
    "compare_artifacts",
    "configure_logging",
    "format_artifact_diff",
    "get_logger",
    "load_artifact",
    "log_event",
    "render_html",
    "render_report",
    "run_fingerprint",
    "run_id",
    "validate_artifact",
    "write_artifact",
    "write_sweep_manifest",
]
