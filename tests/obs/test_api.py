"""The repro.api facade: the stable entry point every front end uses."""

import pytest

import repro
from repro.api import SimulationResult, run_simulation
from repro.ssd.config import SSDConfig
from repro.workloads.synthetic import uniform_random_trace


class TestRunSimulation:
    def test_happy_path_by_name(self):
        config = SSDConfig.small(logical_fraction=0.4)
        result = run_simulation(
            config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
            n_requests=200,
        )
        assert isinstance(result, SimulationResult)
        assert result.stats.completed_requests == 200
        assert result.iops == result.stats.iops > 0
        assert result.spans is None
        assert result.metrics is None
        assert result.trace_path is None

    def test_accepts_prebuilt_trace(self):
        config = SSDConfig.small(logical_fraction=0.4)
        workload = uniform_random_trace(
            config.logical_pages, 150, read_fraction=0.5, seed=3
        )
        result = run_simulation(
            config, workload, ftl="page", queue_depth=8, prefill=0.4
        )
        assert result.stats.completed_requests == 150
        assert result.stats.ftl_name == "pageFTL"

    def test_schema_version_2(self):
        config = SSDConfig.small(logical_fraction=0.4)
        result = run_simulation(
            config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
            n_requests=100,
        )
        payload = result.to_dict()
        assert payload["schema_version"] == 2
        assert payload["read_latency"]["p999_us"] >= payload["read_latency"]["p99_us"]
        assert payload["read_latency"]["max_us"] >= payload["read_latency"]["p999_us"]
        assert payload["counters"]["vfy_skipped"] >= 0

    def test_memory_trace_and_metrics_together(self):
        config = SSDConfig.small(logical_fraction=0.4)
        result = run_simulation(
            config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
            n_requests=100, trace="memory", metrics_interval=1000.0,
        )
        assert result.spans
        assert result.metrics
        assert result.to_dict()["metrics"][-1]["completed_requests"] == 100

    def test_jsonl_trace_written_and_closed(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        config = SSDConfig.small(logical_fraction=0.4)
        result = run_simulation(
            config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
            n_requests=50, trace=path,
        )
        assert result.trace_path == path
        assert result.spans is None
        with open(path) as handle:
            assert sum(1 for line in handle if line.strip()) > 50

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(SSDConfig.small(), "NoSuchWorkload", n_requests=10)

    def test_exported_from_package_root(self):
        assert repro.run_simulation is run_simulation
        assert repro.SimulationResult is SimulationResult
