"""Tests for the perfect-knowledge oracle FTL."""

import pytest

from repro.ftl import OracleFTL, make_ftl
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDController, SSDSimulation
from repro.workloads.synthetic import uniform_random_trace


@pytest.fixture
def config():
    return SSDConfig.small(env_shift_prob=0.0)


class TestOracleFTL:
    def test_registry(self, config):
        controller = SSDController(config)
        assert isinstance(make_ftl("oracle", config, controller), OracleFTL)

    def test_every_wl_gets_fast_params(self, config):
        controller = SSDController(config)
        ftl = OracleFTL(config, controller)
        ftl.install_block(0, 3)
        for _ in range(8):
            allocation = ftl.allocate_wl(0)
            params, squeeze = ftl.program_params(0, allocation)
            assert squeeze > 0
            assert any(start > 1 for start in params.verify_plan.start_loops)

    def test_params_clean_on_device(self, config):
        """Oracle parameters never over- or under-program (it knows the
        truth)."""
        controller = SSDController(config)
        ftl = OracleFTL(config, controller)
        ftl.install_block(0, 3)
        chip = controller.chip(0)
        for _ in range(12):
            allocation = ftl.allocate_wl(0)
            params, _squeeze = ftl.program_params(0, allocation)
            result = chip.program_wl(
                allocation.block,
                allocation.address.layer,
                allocation.address.wl,
                params=params,
            )
            assert result.ispp.clean

    def test_bounds_cube_from_above(self, config):
        """On a pure-write workload the oracle is at least as fast as
        cubeFTL (it pays no leader monitoring)."""
        results = {}
        for ftl in ("cube", "oracle"):
            sim = SSDSimulation(config, ftl=ftl)
            trace = uniform_random_trace(
                sim.config.logical_pages, 500, read_fraction=0.0, seed=3
            )
            results[ftl] = sim.run(trace, queue_depth=8)
        assert (
            results["oracle"].counters.mean_t_prog_us
            <= results["cube"].counters.mean_t_prog_us + 1.0
        )
        assert results["oracle"].counters.leader_programs == 0

    def test_erase_clears_cache(self, config):
        controller = SSDController(config)
        ftl = OracleFTL(config, controller)
        ftl.install_block(0, 3)
        allocation = ftl.allocate_wl(0)
        ftl.program_params(0, allocation)
        assert ftl._params_cache
        ftl.on_block_erased(0, 3)
        assert not ftl._params_cache
