"""Fig. 17 -- normalized IOPS under six workloads and three FTLs.

Regenerates all three panels: (a) fresh, (b) 2 K P/E + 1-month retention,
(c) 2 K P/E + 1-year retention.

Paper shape: cubeFTL wins everywhere; vertFTL's gain over pageFTL is
small (its offline V_final-only adjustment reduces tPROG ~8 %); cubeFTL's
gains GROW with aging (its ORT removes most read retries) -- the largest
fresh gain is on the most write-intensive workload (OLTP), while at end
of life the read-mostly workloads gain most.
"""

import pytest

from benchmarks.conftest import emit
from benchmarks.runner import AGING_STATES, run_matrix
from repro.analysis.tables import format_table


def _render(results, label):
    rows = []
    for workload, per_ftl in results.items():
        base = per_ftl["pageFTL"].iops
        rows.append(
            [
                workload,
                f"{per_ftl['pageFTL'].iops:.0f}",
                round(per_ftl["vertFTL"].iops / base, 2),
                round(per_ftl["cubeFTL"].iops / base, 2),
            ]
        )
    table = format_table(
        ["workload", "pageFTL IOPS", "vertFTL (norm)", "cubeFTL (norm)"], rows
    )
    return f"Fig 17 {label} -- IOPS normalized over pageFTL:\n{table}"


def _norm(results, workload, ftl):
    per_ftl = results[workload]
    return per_ftl[ftl].iops / per_ftl["pageFTL"].iops


@pytest.fixture(scope="module")
def fig17(bench_ssd_config):
    return {
        label: run_matrix(bench_ssd_config, aging)
        for label, aging in AGING_STATES.items()
    }


def test_fig17a_fresh(benchmark, fig17):
    results = benchmark.pedantic(
        lambda: fig17["fresh (0K P/E)"], rounds=1, iterations=1
    )
    emit("fig17a_iops_fresh", _render(results, "(a) fresh"))
    for workload in results:
        # cubeFTL always wins; vertFTL gain modest
        assert _norm(results, workload, "cubeFTL") > 1.0
        assert 0.97 <= _norm(results, workload, "vertFTL") <= 1.15
        assert _norm(results, workload, "cubeFTL") >= _norm(
            results, workload, "vertFTL"
        ) - 0.02
    # the largest fresh gain is on a write-intensive workload
    gains = {w: _norm(results, w, "cubeFTL") for w in results}
    assert max(gains, key=gains.get) in ("OLTP", "Rocks", "Mongo", "Mail")
    assert max(gains.values()) >= 1.2  # paper: up to 1.48


def test_fig17b_one_month(benchmark, fig17):
    results = benchmark.pedantic(
        lambda: fig17["2K P/E + 1-month"], rounds=1, iterations=1
    )
    emit("fig17b_iops_1month", _render(results, "(b) 2K P/E + 1-month"))
    for workload in results:
        assert _norm(results, workload, "cubeFTL") > 1.0


def test_fig17c_one_year(benchmark, fig17):
    fresh = fig17["fresh (0K P/E)"]
    results = benchmark.pedantic(
        lambda: fig17["2K P/E + 1-year"], rounds=1, iterations=1
    )
    emit("fig17c_iops_1year", _render(results, "(c) 2K P/E + 1-year"))
    gains = {w: _norm(results, w, "cubeFTL") for w in results}
    for workload, gain in gains.items():
        assert gain > 1.0
    # at end of life the read-retry reduction dominates: read-mostly
    # workloads now gain the most (the paper highlights Proxy)
    read_mostly_best = max(gains, key=gains.get)
    assert read_mostly_best in ("Proxy", "Web")
    # aged gains exceed fresh gains for the read-mostly workloads
    for workload in ("Proxy", "Web"):
        assert gains[workload] > _norm(fresh, workload, "cubeFTL")
    # raw IOPS collapse under aging for the baseline
    for workload in results:
        assert (
            results[workload]["pageFTL"].iops
            < fresh[workload]["pageFTL"].iops
        )
