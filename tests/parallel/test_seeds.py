"""The seed-derivation rule is a fixed compatibility surface."""

from repro.parallel import derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "cube-OLTP") == derive_seed(7, "cube-OLTP")

    def test_sensitive_to_name(self):
        assert derive_seed(7, "cube-OLTP") != derive_seed(7, "page-OLTP")

    def test_sensitive_to_base_seed(self):
        assert derive_seed(7, "cube-OLTP") != derive_seed(8, "cube-OLTP")

    def test_range_is_63_bit_nonnegative(self):
        for name in ("a", "b", "c", "x" * 200):
            seed = derive_seed(123, name)
            assert 0 <= seed < 1 << 63

    def test_pinned_rule_values(self):
        """The derivation rule must never drift silently: these values
        are part of the ``repro.parallel/1`` contract (see seeds.py)."""
        assert derive_seed(7, "case-OLTP") == 5156186468927675302
        assert derive_seed(7, "case-Proxy") == 9768577473064433
