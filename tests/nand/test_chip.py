"""Tests for the NAND chip: operations, ordering rules, interfaces."""

import pytest

from repro.nand.chip import NandChip
from repro.nand.errors import (
    AddressError,
    ProgramOrderError,
    UnprogrammedReadError,
    WearOutError,
)
from repro.nand.ispp import ProgramParams, VerifyPlan
from repro.nand.read_retry import ReadParams
from repro.nand.reliability import AgingState


class TestProgram:
    def test_program_marks_wl(self, quiet_chip):
        assert not quiet_chip.is_programmed(0, 5, 1)
        result = quiet_chip.program_wl(0, 5, 1)
        assert quiet_chip.is_programmed(0, 5, 1)
        assert result.t_prog_us > 0
        assert result.clean

    def test_double_program_rejected(self, quiet_chip):
        quiet_chip.program_wl(0, 5, 1)
        with pytest.raises(ProgramOrderError):
            quiet_chip.program_wl(0, 5, 1)

    def test_program_any_order_allowed(self, quiet_chip):
        """3D NAND allows arbitrary WL order (Fig. 13)."""
        quiet_chip.program_wl(0, 40, 3)
        quiet_chip.program_wl(0, 0, 0)
        quiet_chip.program_wl(0, 20, 2)
        assert quiet_chip.programmed_wl_count(0) == 3

    def test_program_result_reports_monitoring(self, quiet_chip):
        result = quiet_chip.program_wl(0, 10, 0)
        assert result.monitored.n_states == 7
        assert result.ber_ep1 > 0
        assert result.post_program_ber > 0

    def test_intra_layer_t_prog_identical(self, quiet_chip):
        """Fig. 5(d): all WLs of an h-layer have the same tPROG."""
        times = {quiet_chip.program_wl(0, 25, wl).t_prog_us for wl in range(4)}
        assert len(times) == 1

    def test_inter_layer_t_prog_differs(self, quiet_chip):
        beta = quiet_chip.reliability.layer_beta
        kappa = quiet_chip.reliability.layer_kappa
        fast = quiet_chip.program_wl(0, beta, 0).t_prog_us
        slow = quiet_chip.program_wl(0, kappa, 0).t_prog_us
        assert slow > fast

    def test_default_params_add_no_set_feature_overhead(self, quiet_chip):
        result = quiet_chip.program_wl(0, 10, 0)
        assert result.t_prog_us == result.ispp.t_prog_us

    def test_adjusted_params_add_sub_microsecond_overhead(self, quiet_chip):
        leader = quiet_chip.program_wl(0, 10, 0)
        params = quiet_chip.ispp.follower_params(leader.monitored, 240)
        follower = quiet_chip.program_wl(0, 10, 1, params=params)
        overhead = follower.t_prog_us - follower.ispp.t_prog_us
        assert 0 < overhead < 1.0

    def test_data_tags_round_trip(self):
        chip = NandChip(n_blocks=2, store_tags=True, env_shift_prob=0.0)
        chip.program_wl(0, 3, 2, data=["a", "b", "c"])
        assert chip.read_page(0, 3, 2, 0).data == "a"
        assert chip.read_page(0, 3, 2, 2).data == "c"

    def test_data_length_validated(self, quiet_chip):
        with pytest.raises(ValueError):
            quiet_chip.program_wl(0, 3, 2, data=["a"])

    def test_bad_addresses(self, quiet_chip):
        with pytest.raises(AddressError):
            quiet_chip.program_wl(quiet_chip.n_blocks, 0, 0)
        with pytest.raises(AddressError):
            quiet_chip.program_wl(0, 48, 0)
        with pytest.raises(AddressError):
            quiet_chip.program_wl(0, 0, 4)


class TestRead:
    def test_read_unprogrammed_rejected(self, quiet_chip):
        with pytest.raises(UnprogrammedReadError):
            quiet_chip.read_page(0, 5, 1, 0)

    def test_fresh_read_no_retries(self, quiet_chip):
        quiet_chip.program_wl(0, 5, 1)
        result = quiet_chip.read_page(0, 5, 1, 0)
        assert result.num_retry == 0
        assert result.t_read_us == quiet_chip.timing.t_read_us
        assert result.correctable

    def test_aged_read_retries_and_latency(self, quiet_chip):
        quiet_chip.set_baseline_aging(AgingState(2000, 12.0))
        kappa = quiet_chip.reliability.layer_kappa
        quiet_chip.program_wl(0, kappa, 0)
        retried = [quiet_chip.read_page(0, kappa, 0, 0) for _ in range(50)]
        assert any(r.num_retry > 0 for r in retried)
        for r in retried:
            expected = quiet_chip.timing.read_us(r.num_retry)
            assert r.t_read_us == expected

    def test_good_hint_eliminates_retries(self, quiet_chip):
        quiet_chip.set_baseline_aging(AgingState(2000, 12.0))
        quiet_chip.program_wl(0, 30, 0)
        first = quiet_chip.read_page(0, 30, 0, 0)
        hinted = quiet_chip.read_page(
            0, 30, 0, 0, ReadParams(offset_hint=first.final_offset)
        )
        assert hinted.num_retry <= first.num_retry

    def test_over_programmed_wl_reads_with_elevated_ber(self, quiet_chip):
        clean = quiet_chip.program_wl(0, 10, 0)
        starts = list(VerifyPlan.from_profile(clean.monitored).start_loops)
        starts = [s + 3 for s in starts]
        bad_params = ProgramParams(verify_plan=VerifyPlan(tuple(starts)))
        quiet_chip.program_wl(0, 10, 1, params=bad_params)
        good = quiet_chip.read_page(0, 10, 0, 0)
        bad = quiet_chip.read_page(0, 10, 1, 0)
        assert bad.ber > 3 * good.ber


class TestErase:
    def test_erase_clears_and_counts(self, quiet_chip):
        quiet_chip.program_wl(0, 5, 1, data=None)
        t_erase = quiet_chip.erase_block(0)
        assert t_erase == quiet_chip.timing.t_erase_us
        assert not quiet_chip.is_programmed(0, 5, 1)
        assert quiet_chip.block_pe(0) == 1

    def test_erase_allows_reprogram(self, quiet_chip):
        quiet_chip.program_wl(0, 5, 1)
        quiet_chip.erase_block(0)
        quiet_chip.program_wl(0, 5, 1)  # no ProgramOrderError

    def test_erase_drops_tags(self):
        chip = NandChip(n_blocks=2, store_tags=True, env_shift_prob=0.0)
        chip.program_wl(0, 3, 2, data=["a", "b", "c"])
        chip.erase_block(0)
        chip.program_wl(0, 3, 2)
        assert chip.read_page(0, 3, 2, 0).data is None

    def test_wear_out_limit(self):
        chip = NandChip(n_blocks=1, erase_limit=2, env_shift_prob=0.0)
        chip.erase_block(0)
        chip.erase_block(0)
        with pytest.raises(WearOutError):
            chip.erase_block(0)

    def test_dynamic_pe_adds_to_baseline(self, quiet_chip):
        quiet_chip.set_baseline_aging(AgingState(1000, 1.0))
        quiet_chip.erase_block(2)
        aging = quiet_chip.block_aging(2)
        assert aging.pe_cycles == 1001
        assert aging.retention_months == 1.0


class TestFeatures:
    def test_set_get_round_trip(self, quiet_chip):
        latency = quiet_chip.set_features(0x90, (1, 2, 3))
        assert latency < 1.0
        assert quiet_chip.get_features(0x90) == (1, 2, 3)

    def test_get_unset_feature_rejected(self, quiet_chip):
        with pytest.raises(AddressError):
            quiet_chip.get_features(0x42)


class TestEnvironmentalShifts:
    def test_shift_probability_zero_means_never(self, quiet_chip):
        for layer in range(48):
            for wl in range(4):
                assert quiet_chip.program_wl(1, layer, wl).env_shift == 0

    def test_shift_probability_one_means_always(self):
        chip = NandChip(n_blocks=1, env_shift_prob=1.0)
        result = chip.program_wl(0, 10, 0)
        assert result.env_shift != 0
        assert not result.clean

    def test_shift_changes_monitored_profile(self):
        shifted_chip = NandChip(n_blocks=1, env_shift_prob=1.0)
        quiet = NandChip(n_blocks=1, env_shift_prob=0.0)
        shifted = shifted_chip.program_wl(0, 10, 0).monitored
        normal = quiet.program_wl(0, 10, 0).monitored
        assert shifted.intervals != normal.intervals

    def test_validation(self):
        with pytest.raises(ValueError):
            NandChip(env_shift_prob=1.5)
        with pytest.raises(ValueError):
            NandChip(n_blocks=0)


class TestCharacterizationHelpers:
    def test_measure_retention_errors_matches_model(self, quiet_chip, aged_eol):
        n_ret = quiet_chip.measure_retention_errors(0, 20, 1, aged_eol)
        assert n_ret == quiet_chip.reliability.n_ret(0, 0, 20, 1, aged_eol)

    def test_wl_penalty_defaults_to_one(self, quiet_chip):
        quiet_chip.program_wl(0, 7, 0)
        assert quiet_chip.wl_penalty(0, 7, 0) == pytest.approx(1.0)
