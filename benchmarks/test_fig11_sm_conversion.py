"""Fig. 11 -- V_start/V_final adjustment based on BER_EP1.

Regenerates: (a) the correlation between the monitored E<->P1 BER and
the retention BER; (b) the S_M -> total-adjustment-margin conversion and
the resulting tPROG reduction.

Paper anchors: BER_EP1 accurately predicts NAND health; S_M = 1.7 maps
to a 320 mV margin which cuts tPROG by ~19.7 %.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.characterization import experiments as exp


def regenerate():
    correlation = exp.fig11a_ber_ep1_correlation()
    conversion = exp.fig11b_margin_conversion()
    lines = [
        "Fig 11(a) -- BER_EP1 vs retention BER: "
        f"correlation = {correlation['correlation']:.3f} over "
        f"{len(correlation['ber_ep1'])} (layer, aging) samples",
        "",
        "Fig 11(b) -- S_M -> margin -> tPROG reduction:",
    ]
    rows = [
        [s_m, round(stats["margin_mv"]), round(stats["t_prog_us"], 1),
         f"{100 * stats['t_prog_reduction']:.1f} %"]
        for s_m, stats in conversion.items()
    ]
    lines.append(format_table(["S_M", "margin (mV)", "tPROG (us)", "reduction"], rows))
    return "\n".join(lines), correlation, conversion


def test_fig11_sm_conversion(benchmark):
    text, correlation, conversion = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    emit("fig11_sm_conversion", text)
    assert correlation["correlation"] > 0.95
    anchor = conversion[1.7]
    assert anchor["margin_mv"] == 320.0
    assert 0.15 <= anchor["t_prog_reduction"] <= 0.30
    reductions = [conversion[s]["t_prog_reduction"] for s in sorted(conversion)]
    assert all(b >= a for a, b in zip(reductions, reductions[1:]))
