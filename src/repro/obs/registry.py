"""Unified telemetry: a Prometheus-style instrument registry.

Every quantitative signal the simulator exposes -- FTL operation
counters, fault-recovery counters, device-level busy time, queue-depth
and read-retry distributions, ORT lookups -- is described by a named
instrument in a :class:`TelemetryRegistry`:

- :class:`Counter` -- monotonically increasing totals (busy time,
  operation counts), optionally labelled (``die``, ``channel``,
  ``h_layer``, ``ftl``...).
- :class:`Gauge` -- point-in-time values (buffer utilization, free
  blocks).  Gauges may be *collected*: a callback re-reads the live
  value at snapshot time, which is how the pre-existing counter
  dataclasses (:class:`~repro.ftl.base.FTLCounters`,
  :class:`~repro.faults.counters.RecoveryCounters`) and the
  :class:`~repro.obs.metrics.MetricsSampler` gauges are migrated onto
  the registry *behind their existing public APIs*: the hot path keeps
  bumping plain Python attributes (zero overhead, schema v2 output
  unchanged) and the registry exports them through collector bindings
  -- the Prometheus custom-collector pattern.
- :class:`Histogram` -- distributions over fixed bucket edges (queue
  depths, retries per read).

Determinism is part of the contract: :meth:`TelemetryRegistry.snapshot`
returns a JSON-safe dict with instruments sorted by name and series
sorted by label values, so two identically seeded runs produce
identical snapshots (asserted by the test suite).

Recording never schedules events and never perturbs simulation state,
so attaching a registry cannot change any simulated result; with no
registry attached every hook site is a single ``is None`` test.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: hard ceiling on label combinations per instrument -- a guard against
#: accidentally labelling by an unbounded key (LPN, request id, ...)
MAX_SERIES_PER_INSTRUMENT = 4096

#: default bucket upper edges for queue-depth style histograms
QUEUE_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64)

#: default bucket upper edges for retries-per-read histograms
RETRY_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12)


class CardinalityError(ValueError):
    """An instrument exceeded :data:`MAX_SERIES_PER_INSTRUMENT` label sets."""


def _check_labels(
    labelnames: Tuple[str, ...], labels: Dict[str, object]
) -> Tuple[object, ...]:
    if tuple(sorted(labels)) != tuple(sorted(labelnames)):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"labelnames {sorted(labelnames)}"
        )
    return tuple(labels[name] for name in labelnames)


class _Instrument:
    """Shared naming / label bookkeeping of all instrument kinds."""

    kind = "?"

    def __init__(
        self,
        name: str,
        help: str,
        unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[object, ...], "_Instrument"] = {}
        self._max_series = MAX_SERIES_PER_INSTRUMENT

    def labels(self, **labels: object) -> "_Instrument":
        """The child series for one label combination (created lazily)."""
        if not self.labelnames:
            raise ValueError(f"instrument {self.name!r} declares no labels")
        key = _check_labels(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self._max_series:
                raise CardinalityError(
                    f"instrument {self.name!r} exceeded "
                    f"{self._max_series} label combinations"
                )
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    # -- snapshot --------------------------------------------------------

    def _series(self) -> List[dict]:
        if self.labelnames:
            rows = []
            for key in sorted(self._children, key=lambda k: tuple(map(str, k))):
                row = {"labels": dict(zip(self.labelnames, map(str, key)))}
                row.update(self._children[key]._value_fields())
                rows.append(row)
            return rows
        return [self._value_fields()]

    def _value_fields(self) -> dict:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "unit": self.unit,
            "labelnames": list(self.labelnames),
            "series": self._series(),
        }


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help, self.unit)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _value_fields(self) -> dict:
        return {"value": self._value}


class Gauge(_Instrument):
    """A point-in-time value, set directly or via a collector callback."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help, self.unit)

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _value_fields(self) -> dict:
        return {"value": self._value}


class Histogram(_Instrument):
    """A distribution over fixed, strictly increasing bucket upper edges.

    An observation lands in the first bucket whose edge is >= the value;
    values above the last edge land in the implicit overflow (``+inf``)
    bucket.  Bucket counts are *non-cumulative* (unlike the Prometheus
    exposition format) because snapshots are consumed whole.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        unit: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = QUEUE_DEPTH_BUCKETS,
    ) -> None:
        super().__init__(name, help, unit, labelnames)
        edges = tuple(buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(low >= high for low, high in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self.unit, buckets=self.buckets)

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1
        for index, edge in enumerate(self.buckets):
            if value <= edge:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> Dict[str, int]:
        """Bucket label (upper edge or ``+inf``) -> observation count."""
        labels = [f"{edge:g}" for edge in self.buckets] + ["+inf"]
        return dict(zip(labels, self._counts))

    def _value_fields(self) -> dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": self.bucket_counts(),
        }


class TelemetryRegistry:
    """Named instruments plus collector callbacks.

    Instruments are created once (re-requesting a name returns the same
    object, and re-declaring it with a different kind or labels is an
    error).  Collectors run at :meth:`snapshot` / :meth:`collect` time
    and bridge pre-existing live state (counter dataclasses, buffer
    occupancy) into registry gauges without touching the hot paths.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- declaration -----------------------------------------------------

    def _declare(self, cls, name: str, *args, **kwargs) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"instrument {name!r} already declared as {existing.kind}"
                )
            return existing
        instrument = cls(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str, unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._declare(Counter, name, help, unit, labelnames)

    def gauge(
        self, name: str, help: str, unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._declare(Gauge, name, help, unit, labelnames)

    def histogram(
        self, name: str, help: str, unit: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = QUEUE_DEPTH_BUCKETS,
    ) -> Histogram:
        return self._declare(
            Histogram, name, help, unit, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    # -- collectors ------------------------------------------------------

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a zero-argument callback that refreshes gauges from
        live state; it runs on every :meth:`collect` / :meth:`snapshot`."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    # -- snapshot --------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic JSON-safe dump of every instrument.

        Collectors run first, so collected gauges reflect the state at
        the moment of the call.  Instruments are sorted by name, series
        by label values; two identically seeded runs therefore produce
        identical snapshots.
        """
        self.collect()
        return {
            name: self._instruments[name].describe()
            for name in sorted(self._instruments)
        }


# ----------------------------------------------------------------------
# collector bindings for the pre-existing counter surfaces
# ----------------------------------------------------------------------


def bind_ftl(registry: TelemetryRegistry, ftl) -> None:
    """Export an FTL's live counters into the registry.

    Covers :class:`~repro.ftl.base.FTLCounters` (as
    ``ftl_counter{ftl,counter}``), the fault-recovery counters (as
    ``ftl_recovery{ftl,event}``), and the gauges the
    :class:`~repro.obs.metrics.MetricsSampler` samples (buffer
    utilization / occupancy, free blocks, ORT size and hit rate) -- all
    read back from the same live objects at snapshot time, so the
    existing public APIs and the result schema are untouched.
    """
    counter_gauge = registry.gauge(
        "ftl_counter", "FTL operation counters (FTLCounters fields)",
        labelnames=("ftl", "counter"),
    )
    recovery_gauge = registry.gauge(
        "ftl_recovery", "fault-recovery event counters (RecoveryCounters fields)",
        labelnames=("ftl", "event"),
    )
    buffer_util = registry.gauge(
        "buffer_utilization", "write-buffer utilization mu", labelnames=("ftl",)
    )
    buffer_occ = registry.gauge(
        "buffer_occupancy", "staged + in-flight buffer pages",
        unit="pages", labelnames=("ftl",),
    )
    free_blocks = registry.gauge(
        "free_blocks", "free blocks summed over all chips",
        unit="blocks", labelnames=("ftl",),
    )
    ort_entries = registry.gauge(
        "ort_entries", "learned ORT entries", labelnames=("ftl",)
    )
    ort_hit_rate = registry.gauge(
        "ort_hit_rate", "fraction of ORT lookups served from a learned entry",
        labelnames=("ftl",),
    )

    name = ftl.name

    def collect() -> None:
        for field, value in vars(ftl.counters).items():
            counter_gauge.labels(ftl=name, counter=field).set(value)
        for field, value in vars(ftl.recovery).items():
            recovery_gauge.labels(ftl=name, event=field).set(value)
        buffer_util.labels(ftl=name).set(ftl.buffer.utilization)
        buffer_occ.labels(ftl=name).set(ftl.buffer.occupancy)
        free_blocks.labels(ftl=name).set(
            sum(ftl.blocks.free_count(c) for c in range(ftl.geometry.n_chips))
        )
        opm = getattr(ftl, "opm", None)
        ort = opm.ort if opm is not None else None
        ort_entries.labels(ftl=name).set(len(ort) if ort is not None else 0)
        ort_hit_rate.labels(ftl=name).set(
            ort.hit_rate if ort is not None else 0.0
        )

    registry.add_collector(collect)


def bind_engine(registry: TelemetryRegistry, engine) -> None:
    """Export event-queue statistics (events processed, peak queue
    length) from a :class:`~repro.sim.engine.Engine`."""
    processed = registry.gauge(
        "engine_events_processed", "events executed by the event engine"
    )
    peak = registry.gauge(
        "engine_peak_pending", "largest live event-queue length observed"
    )
    now = registry.gauge(
        "engine_now_us", "engine clock at snapshot time", unit="us"
    )

    def collect() -> None:
        processed.set(engine.processed)
        peak.set(engine.peak_pending)
        now.set(engine.now)

    registry.add_collector(collect)
