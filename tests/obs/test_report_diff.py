"""Deterministic reports and cross-run diffing on the committed
example artifact (``examples/artifact/``)."""

import glob
import json
import os
import shutil

import pytest

from repro.cli import main
from repro.obs.artifact import load_artifact, validate_artifact
from repro.obs.diffing import compare_artifacts, format_artifact_diff
from repro.obs.report import render_html, render_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture(scope="module")
def example_dir():
    candidates = sorted(glob.glob(
        os.path.join(REPO_ROOT, "examples", "artifact", "*", "manifest.json")
    ))
    assert candidates, "committed example artifact is missing"
    return os.path.dirname(candidates[0])


class TestReport:
    def test_example_artifact_still_validates(self, example_dir):
        assert validate_artifact(example_dir) == []

    def test_render_is_deterministic(self, example_dir):
        artifact = load_artifact(example_dir)
        first = render_report(artifact)
        second = render_report(load_artifact(example_dir))
        assert first == second

    def test_render_mentions_the_run_and_latency(self, example_dir):
        text = render_report(load_artifact(example_dir))
        assert os.path.basename(example_dir) in text
        assert "latency CDF" in text
        assert "run " in text

    def test_html_wraps_the_text_report(self, example_dir):
        artifact = load_artifact(example_dir)
        text = render_report(artifact)
        html = render_html(artifact, report=text)
        assert html.startswith("<!DOCTYPE html>")
        assert os.path.basename(example_dir) in html


class TestDiff:
    def test_self_diff_has_no_problems(self, example_dir):
        report = compare_artifacts(example_dir, example_dir)
        assert report["problems"] == []
        assert report["same_run"] is True
        lines = format_artifact_diff(report)
        assert lines[-1].startswith("OK: no regressions")

    def test_tampered_copy_is_flagged(self, example_dir, tmp_path):
        copy = str(tmp_path / os.path.basename(example_dir))
        shutil.copytree(example_dir, copy)
        result_path = os.path.join(copy, "result.json")
        with open(result_path) as handle:
            doc = json.load(handle)
        doc["iops"] *= 0.5
        with open(result_path, "w") as handle:
            json.dump(doc, handle)
        report = compare_artifacts(example_dir, copy)
        assert report["problems"]
        lines = "\n".join(format_artifact_diff(report))
        assert "REGRESSION" in lines


class TestCli:
    def test_report_command_exits_zero(self, example_dir, capsys):
        assert main(["report", example_dir]) == 0
        out = capsys.readouterr().out
        assert "latency CDF" in out

    def test_report_html_output(self, example_dir, tmp_path, capsys):
        html_path = str(tmp_path / "report.html")
        assert main(["report", example_dir, "--html", html_path]) == 0
        capsys.readouterr()
        with open(html_path) as handle:
            assert handle.read().startswith("<!DOCTYPE html>")

    def test_diff_command_exits_zero_on_self(self, example_dir, capsys):
        assert main(["diff", example_dir, example_dir]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_report_rejects_an_invalid_directory(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err

    def test_diff_rejects_an_invalid_directory(self, example_dir, tmp_path,
                                               capsys):
        assert main(["diff", example_dir, str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err
