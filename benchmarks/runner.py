"""Shared SSD-simulation runner for the evaluation benchmarks."""

from __future__ import annotations

from typing import Dict

from benchmarks.conftest import BENCH_QUEUE_DEPTH, BENCH_REQUESTS, BENCH_WARMUP
from repro.api import run_simulation
from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig
from repro.ssd.stats import SimulationStats

#: the paper's three aging conditions (Section 6.2)
AGING_STATES = {
    "fresh (0K P/E)": AgingState(0, 0.0),
    "2K P/E + 1-month": AgingState(2000, 1.0),
    "2K P/E + 1-year": AgingState(2000, 12.0),
}

WORKLOADS = ["Mail", "Web", "Proxy", "OLTP", "Rocks", "Mongo"]

FTLS = ["page", "vert", "cube"]


def run_one(
    config: SSDConfig,
    ftl: str,
    workload: str,
    aging: AgingState,
    seed: int = 7,
    prefill: float = 0.9,
    n_requests: int = None,
    warmup: int = None,
    queue_depth: int = None,
) -> SimulationStats:
    """Prefill an SSD and replay one workload against one FTL."""
    n_requests = n_requests if n_requests is not None else BENCH_REQUESTS
    warmup = warmup if warmup is not None else BENCH_WARMUP
    queue_depth = queue_depth if queue_depth is not None else BENCH_QUEUE_DEPTH
    result = run_simulation(
        config.with_aging(aging),
        workload,
        ftl=ftl,
        queue_depth=queue_depth,
        warmup_requests=warmup,
        prefill=prefill,
        n_requests=n_requests,
        seed=seed,
    )
    return result.stats


def run_matrix(
    config: SSDConfig,
    aging: AgingState,
    ftls=None,
    workloads=None,
    seed: int = 7,
) -> Dict[str, Dict[str, SimulationStats]]:
    """workload -> ftl-name -> stats, for one aging condition."""
    ftls = ftls if ftls is not None else FTLS
    workloads = workloads if workloads is not None else WORKLOADS
    results: Dict[str, Dict[str, SimulationStats]] = {}
    for workload in workloads:
        results[workload] = {}
        for ftl in ftls:
            stats = run_one(config, ftl, workload, aging, seed=seed)
            results[workload][stats.ftl_name] = stats
    return results
