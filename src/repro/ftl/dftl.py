"""DFTL: demand-paged page mapping with a bounded cached mapping table.

All other FTLs in the reproduction hold the full L2P table in
controller RAM, which is dishonest at TB-class capacities -- a 4 TB
drive needs ~4 GB of mapping table.  :class:`DFTL` models the classic
demand-paging design (Gupta et al., ASPLOS'09) on top of the pageFTL
allocation policy:

- a **CMT** (cached mapping table) holds at most ``cmt_capacity``
  per-LPN entries under LRU replacement, each carrying a dirty bit;
- the full table lives in **translation pages** on flash, one page per
  ``mappings_per_tpage`` consecutive LPNs, kept in dedicated
  translation blocks (``BlockManager`` kind ``"trans"``);
- the **GTD** (global translation directory) maps each translation
  virtual page number (TVPN) to the flash page currently holding it --
  here a second :class:`~repro.ftl.mapping.PageMapper` instance, which
  also provides valid-page accounting and the bijection audit for
  translation blocks;
- a CMT **miss** on a host read costs a translation-page flash read
  before the data read can issue; a **dirty eviction** writes the
  evicted entry's translation page back (read-modify-write), marking
  every co-resident dirty entry of the same TVPN clean (batched
  writeback);
- translation blocks fill up with superseded pages and are reclaimed
  by a dedicated **translation GC** state machine.

The *authoritative* L2P state is :attr:`~repro.ftl.base.BaseFTL.mapper`
(the union of CMT and flash-resident entries a real controller can
reconstruct); the CMT determines only *when* translation flash traffic
occurs.  Flash translation pages therefore carry marker content, not
serialized entries -- exactly like data pages carry content tags rather
than bytes -- and SPOR recovery rebuilds both tables from per-page OOB
records (data pages record ``(lpn, seq)`` with ``lpn >= 0``, translation
pages record ``(-(tvpn+1), tseq)``).  This makes the CMT a *pure cache*
by construction: changing ``cmt_capacity`` changes latency and
translation traffic, never any read result -- a property the
metamorphic suite in ``tests/ftl/test_dftl_properties.py`` enforces.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.wam import Allocation, SequentialCursor
from repro.ftl.blockmgr import DATA_KIND, TRANS_KIND, OutOfSpaceError
from repro.ftl.mapping import UNMAPPED, PageMapper
from repro.ftl.pageftl import PageFTL
from repro.nand.errors import EraseFailError, ProgramFailError, WearOutError
from repro.nand.geometry import PageAddress
from repro.nand.read_retry import ReadParams
from repro.ssd.config import SSDConfig
from repro.ssd.write_buffer import BufferEntry


@dataclass
class DftlStats:
    """Translation-path counters (kept apart from
    :class:`~repro.ftl.base.FTLCounters` so the shared result schema is
    untouched for the RAM-resident FTLs)."""

    cmt_hits: int = 0
    cmt_misses: int = 0
    cmt_evictions_clean: int = 0
    cmt_evictions_dirty: int = 0
    trans_reads: int = 0
    trans_read_retries: int = 0
    trans_recovered_pages: int = 0
    trans_programs: int = 0
    trans_program_fails: int = 0
    trans_gc_reads: int = 0
    trans_gc_programs: int = 0
    trans_gc_erases: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


class _TransGCJob:
    """State of one in-progress translation-block collection."""

    __slots__ = ("victim", "pending")

    def __init__(self, victim: int, pending: List[Tuple[int, int]]) -> None:
        self.victim = victim
        #: (ppn, tvpn) pairs still to migrate
        self.pending = pending


class DFTL(PageFTL):
    """Demand-paged mapping FTL (bounded CMT + flash translation pages)."""

    name = "dftl"

    def __init__(
        self,
        config: SSDConfig,
        controller,
        *,
        cmt_capacity: int = 64,
        mappings_per_tpage: int = 64,
    ) -> None:
        super().__init__(config, controller)
        if cmt_capacity < 1:
            raise ValueError("cmt_capacity must be >= 1")
        if mappings_per_tpage < 1:
            raise ValueError("mappings_per_tpage must be >= 1")
        self.cmt_capacity = cmt_capacity
        self.mappings_per_tpage = mappings_per_tpage
        logical = config.logical_pages
        self.n_tpages = (logical + mappings_per_tpage - 1) // mappings_per_tpage
        #: GTD + translation-block valid-page accounting: TVPN -> PPN of
        #: the current flash copy of that translation page
        self.tmapper = PageMapper(config.geometry, self.n_tpages)
        #: LPN -> dirty flag, LRU order (oldest first)
        self._cmt: "OrderedDict[int, bool]" = OrderedDict()
        self._trans_cursors: Dict[int, Optional[SequentialCursor]] = {
            chip: None for chip in range(config.geometry.n_chips)
        }
        self._trans_gc: Dict[int, Optional[_TransGCJob]] = {
            chip: None for chip in range(config.geometry.n_chips)
        }
        #: TVPN -> writebacks not yet landed (covers the audit window
        #: between a dirty eviction and its translation-page bind)
        self._inflight_trans: Dict[int, int] = {}
        self._inflight_trans_programs = 0
        #: translation work waiting for a free WL (retried after erases)
        self._trans_pending: Deque[Callable[[], None]] = deque()
        #: TVPNs with a *deferred* writeback queued; later writebacks of
        #: the same TVPN coalesce onto it (the page is rebuilt from the
        #: authoritative table when the program finally issues, so one
        #: deferred writeback serves any number of evictions)
        self._deferred_wb: set = set()
        #: OOB ordering for translation pages; deliberately separate from
        #: ``_write_seq`` -- data-page sequence numbers double as content
        #: tags, so sharing one counter would make dftl's data content
        #: diverge from the RAM-resident FTLs on identical traces
        self._trans_seq = 0
        self.dftl_stats = DftlStats()

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    def _tvpn_of(self, lpn: int) -> int:
        return lpn // self.mappings_per_tpage

    def _home_chip(self, tvpn: int) -> int:
        return tvpn % self.geometry.n_chips

    def cmt_occupancy(self) -> int:
        return len(self._cmt)

    # ------------------------------------------------------------------
    # checker introspection (kind-aware dispatch)
    # ------------------------------------------------------------------

    def mappers(self) -> Dict[str, PageMapper]:
        return {"l2p": self.mapper, "translation": self.tmapper}

    def block_valid_count(self, chip_id: int, block: int) -> int:
        if self.blocks.kind_of(chip_id, block) == TRANS_KIND:
            return self.tmapper.valid_count(chip_id, block)
        return self.mapper.valid_count(chip_id, block)

    def audit_variant(self) -> Optional[dict]:
        """DFTL deep invariants.

        1. the CMT never exceeds its configured capacity;
        2. kind segregation: data blocks hold no valid translation
           pages and translation blocks hold no valid data pages;
        3. lookup completeness: every mapped LPN is resolvable -- its
           entry is CMT-resident, or its translation page is flash
           resident, or that page's writeback is in flight.
        """
        if len(self._cmt) > self.cmt_capacity:
            return {
                "message": (
                    f"CMT holds {len(self._cmt)} entries but capacity is "
                    f"{self.cmt_capacity}"
                ),
                "occupancy": len(self._cmt),
                "capacity": self.cmt_capacity,
            }
        geometry = self.geometry
        for chip_id in range(geometry.n_chips):
            for block in range(geometry.blocks_per_chip):
                kind = self.blocks.kind_of(chip_id, block)
                other = self.tmapper if kind == DATA_KIND else self.mapper
                leaked = other.valid_count(chip_id, block)
                if leaked:
                    held = "translation" if kind == DATA_KIND else "data"
                    return {
                        "message": (
                            f"{kind} block holds {leaked} valid {held} "
                            "pages (kind segregation broken)"
                        ),
                        "chip": chip_id,
                        "block": block,
                        "valid_pages": leaked,
                    }
        per_tpage = self.mappings_per_tpage
        logical = self.config.logical_pages
        cmt = self._cmt
        for tvpn in set(
            int(lpn) // per_tpage for lpn in self.mapper.mapped_lpns()
        ):
            if self.tmapper.lookup(tvpn) != UNMAPPED:
                continue
            if tvpn in self._inflight_trans:
                continue
            for lpn in range(
                tvpn * per_tpage, min((tvpn + 1) * per_tpage, logical)
            ):
                if self.mapper.lookup(lpn) != UNMAPPED and lpn not in cmt:
                    return {
                        "message": (
                            f"mapped LPN {lpn} is neither CMT-resident nor "
                            f"covered by a flash translation page "
                            f"(TVPN {tvpn})"
                        ),
                        "lpn": lpn,
                        "tvpn": tvpn,
                    }
        return None

    # ------------------------------------------------------------------
    # CMT maintenance
    # ------------------------------------------------------------------

    def _cmt_note_update(self, lpn: int) -> None:
        """The LPN's mapping changed (host write landing or GC rebind):
        its CMT entry becomes/remains dirty and most-recently-used."""
        cmt = self._cmt
        cmt[lpn] = True
        cmt.move_to_end(lpn)
        self._cmt_evict_overflow()

    def _cmt_fill(self, lpn: int) -> None:
        """Install the entry a read miss fetched (clean unless a write
        raced the fetch and already re-dirtied it)."""
        cmt = self._cmt
        if lpn in cmt:
            cmt.move_to_end(lpn)
            return
        cmt[lpn] = False
        self._cmt_evict_overflow()

    def _cmt_evict_overflow(self) -> None:
        cmt = self._cmt
        stats = self.dftl_stats
        per_tpage = self.mappings_per_tpage
        while len(cmt) > self.cmt_capacity:
            victim, dirty = cmt.popitem(last=False)
            if not dirty:
                stats.cmt_evictions_clean += 1
                continue
            stats.cmt_evictions_dirty += 1
            tvpn = victim // per_tpage
            # batched writeback: the new translation page carries every
            # dirty co-resident entry of the same TVPN, so those entries
            # become clean without their own future writeback
            for other, other_dirty in cmt.items():
                if other_dirty and other // per_tpage == tvpn:
                    cmt[other] = False
            self._writeback(tvpn)

    # ------------------------------------------------------------------
    # write path: every mapping change dirties the CMT
    # ------------------------------------------------------------------

    def _bind_host_pages(
        self, chip_id: int, allocation: Allocation, entries: List[BufferEntry]
    ) -> None:
        super()._bind_host_pages(chip_id, allocation, entries)
        latest = self.buffer.latest_version
        for entry in entries:
            if entry.version == latest(entry.lpn):
                self._cmt_note_update(entry.lpn)

    def _bind_gc_pages(
        self,
        chip_id: int,
        allocation: Allocation,
        gc_payload: List[Tuple[int, object, int]],
    ) -> None:
        base_ppn = self.geometry.wl_ppn(
            chip_id,
            allocation.block,
            allocation.address.layer,
            allocation.address.wl,
        )
        for page_index, (lpn, _tag, old_ppn) in enumerate(gc_payload):
            if self.mapper.lookup(lpn) != old_ppn:
                continue  # host rewrote the page during migration
            if self.buffer.contains(lpn):
                self.mapper.invalidate_lpn(lpn)
                # the fresher buffered copy re-enters the CMT (dirty)
                # when it binds; until then the LPN is unmapped
                self._cmt.pop(lpn, None)
                continue
            self.mapper.bind(lpn, base_ppn + page_index)
            self._cmt_note_update(lpn)

    # ------------------------------------------------------------------
    # read path: demand paging
    # ------------------------------------------------------------------

    def _translate_read(self, lpn: int, active) -> None:
        cmt = self._cmt
        stats = self.dftl_stats
        if lpn in cmt:
            stats.cmt_hits += 1
            cmt.move_to_end(lpn)
            self._mapped_read(lpn, active)
            return
        stats.cmt_misses += 1
        tvpn = self._tvpn_of(lpn)
        tppn = self.tmapper.lookup(tvpn)
        if tppn == UNMAPPED:
            # only reachable while this TVPN's first writeback is in
            # flight (lookup completeness): the entry still lives in
            # controller RAM, so resolution is free
            self._cmt_fill(lpn)
            self._mapped_read(lpn, active)
            return
        chip_id, address = self.geometry.ppn_to_address(tppn)

        def on_result(result) -> None:
            if result is None:
                # unrecoverable translation page: rewrite it from the
                # authoritative table rather than serving stale mappings
                self._recover_tpage(tvpn, tppn)
            self._cmt_fill(lpn)
            self._mapped_read(lpn, active)

        self._trans_flash_read(
            chip_id,
            address,
            on_result,
            attempts_left=self.config.read_recovery_attempts,
            use_bus=True,
        )

    def _trans_flash_read(
        self,
        chip_id: int,
        address: PageAddress,
        on_result: Callable[[Optional[object]], None],
        attempts_left: int,
        use_bus: bool,
        conservative: bool = False,
    ) -> None:
        """One translation-page read: die sense (with retries), then the
        channel transfer for demand fetches (GC migrations stay
        on-chip).  Uncorrectable results under a fault campaign get the
        same bounded conservative re-reads as data pages; a page that
        stays unreadable reports ``None`` (the caller rewrites it from
        the authoritative table -- never a silent stale mapping)."""
        stats = self.dftl_stats

        def job():
            params = (
                ReadParams()
                if conservative
                else self.read_params(chip_id, address.block, address.layer)
            )
            result = self.controller.chip(chip_id).read_page(
                address.block, address.layer, address.wl, address.page, params
            )
            return result.t_read_us, result

        def on_done(result) -> None:
            stats.trans_reads += 1
            stats.trans_read_retries += result.num_retry
            if self.faults is not None and not result.correctable:
                if attempts_left > 0:
                    self._trans_flash_read(
                        chip_id, address, on_result,
                        attempts_left - 1, use_bus, conservative=True,
                    )
                else:
                    self._finish_trans_read(chip_id, None, on_result, use_bus)
                return
            self._finish_trans_read(chip_id, result, on_result, use_bus)

        self.controller.chip_resource(chip_id).submit(job, on_done)

    def _finish_trans_read(
        self, chip_id: int, result, on_result, use_bus: bool
    ) -> None:
        if not use_bus:
            on_result(result)
            return
        transfer = self.config.timing.transfer_us(
            self.geometry.block.page_size_bytes
        )
        self.controller.bus_resource(chip_id).submit(
            lambda: (transfer, None), lambda _ignored: on_result(result)
        )

    def _recover_tpage(self, tvpn: int, tppn: int) -> None:
        """A translation page is unreadable: persist a fresh copy from
        the authoritative mapping table."""
        self.dftl_stats.trans_recovered_pages += 1
        if self.tmapper.lookup(tvpn) != tppn:
            return  # a concurrent writeback already replaced it
        self._writeback(tvpn)

    # ------------------------------------------------------------------
    # translation-page writeback
    # ------------------------------------------------------------------

    def _writeback(self, tvpn: int) -> None:
        """Persist a translation page (dirty eviction or recovery).

        The TVPN is marked in flight immediately -- lookup completeness
        holds through allocation deferrals and program-fail retries --
        and unmarked only when a copy lands and binds."""
        self._inflight_trans[tvpn] = self._inflight_trans.get(tvpn, 0) + 1
        self._issue_writeback(self._home_chip(tvpn), tvpn)

    def _unmark_inflight(self, tvpn: int) -> None:
        count = self._inflight_trans[tvpn] - 1
        if count:
            self._inflight_trans[tvpn] = count
        else:
            del self._inflight_trans[tvpn]

    def _issue_writeback(self, chip_id: int, tvpn: int) -> None:
        allocation = self._trans_allocate(chip_id)
        if allocation is None:
            if tvpn in self._deferred_wb:
                # a deferred writeback of this TVPN is already queued;
                # it will persist the (authoritative) latest state
                self._unmark_inflight(tvpn)
            else:
                self._deferred_wb.add(tvpn)

                def retry() -> None:
                    self._deferred_wb.discard(tvpn)
                    self._issue_writeback(chip_id, tvpn)

                self._trans_pending.append(retry)
            self._maybe_gc(chip_id)
            return
        old_ppn = self.tmapper.lookup(tvpn)
        if old_ppn == UNMAPPED:
            self._program_tpage(chip_id, allocation, tvpn)
            return
        # read-modify-write: the page's entries outside the CMT must be
        # carried over, so the old copy is fetched before the program
        old_chip, old_address = self.geometry.ppn_to_address(old_ppn)

        def after_read(_result) -> None:
            self._program_tpage(chip_id, allocation, tvpn)

        self._trans_flash_read(
            old_chip, old_address, after_read,
            attempts_left=0, use_bus=True,
        )

    def _program_tpage(
        self, chip_id: int, allocation: Allocation, tvpn: int
    ) -> None:
        """Program one translation page (page 0 of a WL, padded) and
        bind it in the GTD when it lands."""
        pages_per_wl = self.geometry.block.pages_per_wl
        self._trans_seq += 1
        seq = self._trans_seq
        data: List[Optional[object]] = [("tpage", tvpn, seq)]
        data += [None] * (pages_per_wl - 1)
        oob = None
        if self._store_oob:
            oob = [(-(tvpn + 1), seq)]
            oob += [None] * (pages_per_wl - 1)
        self._inflight_trans_programs += 1

        def job():
            params, _squeeze = self.program_params(chip_id, allocation)
            try:
                result = self.controller.chip(chip_id).program_wl(
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                    params=params,
                    data=data,
                    oob=oob,
                )
            except ProgramFailError as fail:
                return fail.t_us, None
            return result.t_prog_us, result

        def on_done(result) -> None:
            self._inflight_trans_programs -= 1
            if result is None:
                self.dftl_stats.trans_program_fails += 1
                self.note_program_fail(chip_id, allocation.block)
                self._issue_writeback(chip_id, tvpn)
                self._maybe_gc(chip_id)
                return
            if self.blocks.is_failing(chip_id, allocation.block):
                # a sibling program on this block failed while ours was
                # in flight; the block is leaving service
                self._issue_writeback(chip_id, tvpn)
                return
            self.dftl_stats.trans_programs += 1
            ppn = self.geometry.wl_ppn(
                chip_id,
                allocation.block,
                allocation.address.layer,
                allocation.address.wl,
            )
            self.tmapper.bind(tvpn, ppn)
            self._unmark_inflight(tvpn)
            self._maybe_mark_full(chip_id, allocation.block)
            self._maybe_gc(chip_id)

        transfer = self.config.timing.transfer_us(
            self.geometry.block.page_size_bytes
        )
        bus = self.controller.bus_resource(chip_id)
        bus.submit(
            lambda: (transfer, None),
            lambda _ignored: self.controller.chip_resource(chip_id).submit(
                job, on_done
            ),
        )

    def _trans_allocate(
        self, chip_id: int, for_gc: bool = False
    ) -> Optional[Allocation]:
        """A WL in the chip's translation block, or ``None`` when taking
        a block now would drain the pool GC needs (the caller defers).

        Writebacks leave the last free block for GC; a translation-GC
        migration may take it (same rule as data GC: the erase it leads
        to frees a whole block right back) -- unless a data-GC job is
        mid-flight on this chip, in which case that last block is spoken
        for (base ``_gc_allocate`` takes it unconditionally)."""
        cursor = self._trans_cursors[chip_id]
        if cursor is None or cursor.exhausted:
            if for_gc:
                reserve = 1 if self._gc_jobs[chip_id] is not None else 0
            else:
                reserve = 1
            if self.blocks.free_count(chip_id) <= reserve:
                return None
            block = self._take_free_block(chip_id, kind=TRANS_KIND)
            cursor = SequentialCursor(block, self.geometry.block)
            self._trans_cursors[chip_id] = cursor
        return cursor.take()

    def _drain_trans_pending(self) -> None:
        pending, self._trans_pending = self._trans_pending, deque()
        for thunk in pending:
            thunk()

    def discard_block(self, chip_id: int, block: int) -> None:
        super().discard_block(chip_id, block)
        cursor = self._trans_cursors[chip_id]
        if cursor is not None and cursor.block == block:
            self._trans_cursors[chip_id] = None

    def on_block_erased(self, chip_id: int, block: int) -> None:
        super().on_block_erased(chip_id, block)
        self._drain_trans_pending()

    # ------------------------------------------------------------------
    # translation-block garbage collection
    # ------------------------------------------------------------------

    def _maybe_gc(self, chip_id: int) -> None:
        self._maybe_trans_gc(chip_id)
        if self.blocks.free_count(chip_id) == 0:
            # translation GC holds the pool's last block; starting a
            # data-GC job now would have no block to migrate into.  The
            # pending translation erase calls back in here.
            return
        super()._maybe_gc(chip_id)

    def _maybe_trans_gc(self, chip_id: int) -> None:
        if self._trans_gc[chip_id] is not None:
            return
        free = self.blocks.free_count(chip_id)
        failing = self.blocks.failing_of_kind(chip_id, TRANS_KIND)
        if free >= self.config.gc_trigger_blocks and not failing:
            return
        full = self.blocks.full_blocks(chip_id, kind=TRANS_KIND)
        if not full:
            return
        victim = self.blocks.select_victim(chip_id, self.tmapper, kind=TRANS_KIND)
        if not self.blocks.is_failing(chip_id, victim):
            # each migrated translation page consumes a whole WL, so a
            # victim keeping >= wls_per_block live pages reclaims nothing
            valid = self.tmapper.valid_count(chip_id, victim)
            if valid >= self.geometry.block.wls_per_block and free > 1:
                return
        job = _TransGCJob(
            victim, self.tmapper.valid_pages_of_block(chip_id, victim)
        )
        self._trans_gc[chip_id] = job
        self._trans_gc_continue(chip_id)

    def _trans_gc_continue(self, chip_id: int) -> None:
        job = self._trans_gc[chip_id]
        if job is None:
            return
        while job.pending:
            ppn, tvpn = job.pending.pop(0)
            if self.tmapper.lookup(tvpn) != ppn:
                continue  # superseded by a writeback during migration
            _chip, address = self.geometry.ppn_to_address(ppn)

            def on_read(_result, tvpn: int = tvpn, ppn: int = ppn) -> None:
                # content authority is the RAM table; even an
                # uncorrectable copy migrates as a fresh marker page
                self.dftl_stats.trans_gc_reads += 1
                self._migrate_tpage(chip_id, tvpn, ppn)

            # copyback-style: the migration read stays on-chip
            self._trans_flash_read(
                chip_id, address, on_read, attempts_left=0, use_bus=False
            )
            return
        self._trans_gc_erase(chip_id, job)

    def _migrate_tpage(self, chip_id: int, tvpn: int, old_ppn: int) -> None:
        if self.tmapper.lookup(tvpn) != old_ppn:
            self._trans_gc_continue(chip_id)
            return
        allocation = self._trans_allocate(chip_id, for_gc=True)
        if allocation is None:
            self._trans_pending.append(
                lambda: self._migrate_tpage(chip_id, tvpn, old_ppn)
            )
            super()._maybe_gc(chip_id)
            return
        pages_per_wl = self.geometry.block.pages_per_wl
        self._trans_seq += 1
        seq = self._trans_seq
        data: List[Optional[object]] = [("tpage", tvpn, seq)]
        data += [None] * (pages_per_wl - 1)
        oob = None
        if self._store_oob:
            oob = [(-(tvpn + 1), seq)]
            oob += [None] * (pages_per_wl - 1)
        self._inflight_trans_programs += 1

        def job():
            params, _squeeze = self.program_params(chip_id, allocation)
            try:
                result = self.controller.chip(chip_id).program_wl(
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                    params=params,
                    data=data,
                    oob=oob,
                )
            except ProgramFailError as fail:
                return fail.t_us, None
            return result.t_prog_us, result

        def on_done(result) -> None:
            self._inflight_trans_programs -= 1
            if result is None:
                self.dftl_stats.trans_program_fails += 1
                self.note_program_fail(chip_id, allocation.block)
                self._migrate_tpage(chip_id, tvpn, old_ppn)
                self._maybe_gc(chip_id)
                return
            if self.blocks.is_failing(chip_id, allocation.block):
                self._migrate_tpage(chip_id, tvpn, old_ppn)
                return
            self.dftl_stats.trans_gc_programs += 1
            if self.tmapper.lookup(tvpn) == old_ppn:
                ppn = self.geometry.wl_ppn(
                    chip_id,
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                )
                self.tmapper.bind(tvpn, ppn)
            self._maybe_mark_full(chip_id, allocation.block)
            self._trans_gc_continue(chip_id)

        # migrations stay on-chip (copyback style), like data GC
        self.controller.chip_resource(chip_id).submit(job, on_done)

    def _trans_gc_erase(self, chip_id: int, job: _TransGCJob) -> None:
        victim = job.victim
        failing = self.blocks.is_failing(chip_id, victim)

        def erase_job():
            if failing:
                return 0.0, ("program_fail", 0.0)
            try:
                t_erase = self.controller.chip(chip_id).erase_block(victim)
                return t_erase, ("erased", t_erase)
            except WearOutError:
                return 0.0, ("wear", 0.0)
            except EraseFailError as fail:
                return fail.t_us, ("erase_fail", fail.t_us)

        def on_done(payload) -> None:
            outcome, _t_us = payload
            self.tmapper.clear_block(chip_id, victim)
            if outcome == "erased":
                self.counters.erases += 1
                self.dftl_stats.trans_gc_erases += 1
                self.blocks.mark_free(chip_id, victim)
            else:
                if outcome == "erase_fail":
                    self.recovery.erase_fails += 1
                if outcome != "wear":
                    self.recovery.blocks_retired += 1
                self.counters.retired_blocks += 1
                self.blocks.retire(chip_id, victim, reason=outcome)
            self.on_block_erased(chip_id, victim)
            self._trans_gc[chip_id] = None
            self._maybe_gc(chip_id)
            self._drain_pending_writes()
            self._maybe_flush()

        self.controller.chip_resource(chip_id).submit(erase_job, on_done)

    # ------------------------------------------------------------------
    # prefill
    # ------------------------------------------------------------------

    def after_prefill(self, n_pages: int) -> None:
        """Persist translation pages for the prefilled range (untimed,
        like the prefill itself).  The CMT starts cold: the first timed
        accesses pay real translation reads."""
        if n_pages == 0:
            return
        for tvpn in range((n_pages - 1) // self.mappings_per_tpage + 1):
            self._program_tpage_untimed(tvpn)

    def _program_tpage_untimed(self, tvpn: int) -> None:
        """Synchronous, zero-time translation-page program (prefill and
        SPOR rebuild); retries program failures on fresh WLs."""
        geometry = self.geometry
        pages_per_wl = geometry.block.pages_per_wl
        n_chips = geometry.n_chips
        home = self._home_chip(tvpn)
        while True:
            allocation = None
            chip_id = home
            for offset in range(n_chips):
                chip_id = (home + offset) % n_chips
                allocation = self._trans_allocate(chip_id)
                if allocation is not None:
                    break
            if allocation is None:
                raise OutOfSpaceError(
                    f"no free WL for translation page {tvpn}"
                )
            self._trans_seq += 1
            seq = self._trans_seq
            data: List[Optional[object]] = [("tpage", tvpn, seq)]
            data += [None] * (pages_per_wl - 1)
            oob = None
            if self._store_oob:
                oob = [(-(tvpn + 1), seq)]
                oob += [None] * (pages_per_wl - 1)
            params, _squeeze = self.program_params(chip_id, allocation)
            try:
                self.controller.chip(chip_id).program_wl(
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                    params=params,
                    data=data,
                    oob=oob,
                )
            except ProgramFailError:
                self.note_program_fail(chip_id, allocation.block)
                continue
            self.tmapper.bind(
                tvpn,
                geometry.wl_ppn(
                    chip_id,
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                ),
            )
            self._maybe_mark_full(chip_id, allocation.block)
            return

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def variant_state_dict(self) -> dict:
        if self._inflight_trans_programs or self._inflight_trans:
            raise RuntimeError(
                "DFTL not quiescent: translation writebacks in flight"
            )
        if self._trans_pending:
            raise RuntimeError(
                "DFTL not quiescent: deferred translation work pending"
            )
        active = sorted(
            chip for chip, job in self._trans_gc.items() if job is not None
        )
        if active:
            raise RuntimeError(
                f"DFTL not quiescent: translation GC active on chips {active}"
            )
        state = super().variant_state_dict()
        state["dftl"] = {
            "cmt": [[lpn, dirty] for lpn, dirty in self._cmt.items()],
            "tmapper": self.tmapper.state_dict(),
            "trans_cursors": {
                chip: (cursor.state_dict() if cursor is not None else None)
                for chip, cursor in self._trans_cursors.items()
            },
            "trans_seq": self._trans_seq,
            "stats": asdict(self.dftl_stats),
        }
        return state

    def load_variant_state(self, state: dict) -> None:
        super().load_variant_state(state)
        dftl = state["dftl"]
        self._cmt = OrderedDict(
            (int(lpn), bool(dirty)) for lpn, dirty in dftl["cmt"]
        )
        self.tmapper.load_state_dict(dftl["tmapper"])
        self._trans_cursors = {
            chip: (
                SequentialCursor.from_state(cursor_state, self.geometry.block)
                if cursor_state is not None
                else None
            )
            for chip, cursor_state in dftl["trans_cursors"].items()
        }
        self._trans_seq = dftl["trans_seq"]
        self.dftl_stats = DftlStats(**dftl["stats"])
        self._inflight_trans = {}
        self._inflight_trans_programs = 0
        self._trans_pending = deque()
        self._trans_gc = {
            chip: None for chip in range(self.geometry.n_chips)
        }

    # ------------------------------------------------------------------
    # SPOR recovery
    # ------------------------------------------------------------------

    def _post_spor_reset(self) -> None:
        super()._post_spor_reset()
        self._cmt = OrderedDict()
        self._trans_cursors = {
            chip: None for chip in range(self.geometry.n_chips)
        }
        self._trans_gc = {
            chip: None for chip in range(self.geometry.n_chips)
        }
        self._inflight_trans = {}
        self._inflight_trans_programs = 0
        self._trans_pending = deque()

    def spor_recover(self) -> dict:
        """Rebuild both translation tables from per-page OOB records.

        Data pages carry ``(lpn, seq)`` with ``lpn >= 0`` and rebuild
        the L2P exactly as in :meth:`BaseFTL.spor_recover`; translation
        pages carry ``(-(tvpn+1), tseq)`` and rebuild the GTD the same
        way (highest sequence wins, lowest PPN on ties).  Block kinds
        are rediscovered from the records each block holds.  Finally,
        any TVPN whose mapped LPNs survived but whose translation page
        did not (e.g. writes acknowledged with dirty CMT entries at the
        cut) gets a fresh translation page written during recovery, so
        lookup completeness holds with the CMT starting empty.
        """
        if not self._store_oob:
            raise RuntimeError("SPOR recovery requires store_oob=True")
        if self.mapper.mapped_lpn_count() or self.tmapper.mapped_lpn_count():
            raise RuntimeError("spor_recover requires a freshly built FTL")
        from repro.ftl.blockmgr import BlockState

        geometry = self.geometry
        winners: Dict[int, Tuple[int, int]] = {}
        twinners: Dict[int, Tuple[int, int]] = {}
        kind_of_block: Dict[Tuple[int, int], str] = {}
        records = 0
        trans_records = 0
        max_seq = 0
        max_tseq = 0
        for chip_id in range(geometry.n_chips):
            chip = self.controller.chip(chip_id)
            for (block, wl_index, page), (lpn, seq) in chip.iter_oob():
                records += 1
                address = geometry.block.wl_from_index(wl_index)
                ppn = geometry.ppn(
                    chip_id,
                    PageAddress(block, address.layer, address.wl, page),
                )
                if lpn < 0:
                    tvpn = -lpn - 1
                    trans_records += 1
                    kind_of_block[(chip_id, block)] = TRANS_KIND
                    if seq > max_tseq:
                        max_tseq = seq
                    best = twinners.get(tvpn)
                    if best is None or (seq, -ppn) > (best[0], -best[1]):
                        twinners[tvpn] = (seq, ppn)
                else:
                    kind_of_block[(chip_id, block)] = DATA_KIND
                    if seq > max_seq:
                        max_seq = seq
                    best = winners.get(lpn)
                    if best is None or (seq, -ppn) > (best[0], -best[1]):
                        winners[lpn] = (seq, ppn)
        for lpn in sorted(winners):
            self.mapper.bind(lpn, winners[lpn][1])
        for tvpn in sorted(twinners):
            self.tmapper.bind(tvpn, twinners[tvpn][1])
        free: Dict[int, List[int]] = {}
        states: Dict[int, List[str]] = {}
        kinds: Dict[int, List[str]] = {}
        full_blocks = 0
        for chip_id in range(geometry.n_chips):
            chip = self.controller.chip(chip_id)
            chip_states: List[str] = []
            chip_free: List[int] = []
            chip_kinds: List[str] = []
            for block in range(geometry.blocks_per_chip):
                if chip.programmed_wl_count(block) > 0:
                    chip_states.append(BlockState.FULL.value)
                    chip_kinds.append(
                        kind_of_block.get((chip_id, block), DATA_KIND)
                    )
                    full_blocks += 1
                else:
                    chip_states.append(BlockState.FREE.value)
                    chip_kinds.append(DATA_KIND)
                    chip_free.append(block)
            states[chip_id] = chip_states
            free[chip_id] = chip_free
            kinds[chip_id] = chip_kinds
        self.blocks.load_state_dict(
            {
                "free": free,
                "state": states,
                "failing": {chip: [] for chip in free},
                "retired_reasons": {chip: {} for chip in free},
                "kind": kinds,
            }
        )
        self._post_spor_reset()
        self._write_seq = max_seq
        self._trans_seq = max_tseq
        per_tpage = self.mappings_per_tpage
        synthesized = 0
        for tvpn in sorted(
            set(int(lpn) // per_tpage for lpn in self.mapper.mapped_lpns())
        ):
            if self.tmapper.lookup(tvpn) == UNMAPPED:
                self._program_tpage_untimed(tvpn)
                synthesized += 1
        # GC is normally (re)armed by program/erase completions, but a
        # recovered device can come up with every chip flush-ineligible
        # (one free block, no active cursor) -- on a RAM-table FTL that
        # slack block is enough, here the translation blocks consumed
        # it.  Kick GC now so the first replayed write has somewhere to
        # go; on a healthy pool this is a no-op.
        for chip_id in range(geometry.n_chips):
            self._maybe_gc(chip_id)
        return {
            "oob_records": records,
            "mapped_lpns": len(winners),
            "full_blocks": full_blocks,
            "max_seq": max_seq,
            "trans_records": trans_records,
            "trans_pages": len(twinners),
            "synthesized_tpages": synthesized,
            "max_trans_seq": max_tseq,
        }
