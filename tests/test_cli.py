"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCharacterize:
    def test_runs_and_prints_metrics(self, capsys):
        exit_code = main(["characterize", "--chips", "1", "--blocks", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Delta-H" in out
        assert "Delta-V" in out


class TestSimulate:
    def test_small_simulation(self, capsys):
        exit_code = main([
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "300", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "cubeFTL" in out
        assert "IOPS" in out
        assert "tPROG" in out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "bogus"])

    def test_bad_ftl_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--ftl", "bogus"])

    def test_telemetry_and_profile_flags(self, capsys):
        exit_code = main([
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "200", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8", "--telemetry", "--profile",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "die busy time" in out
        assert "subsystem" in out  # the profiler table header

    def test_telemetry_embedded_in_json(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "out.json")
        exit_code = main([
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "200", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8", "--telemetry", "--json", path,
        ])
        assert exit_code == 0
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == 2
        assert "chip_busy_us" in payload["telemetry"]

    def test_json_without_telemetry_has_no_extra_key(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "out.json")
        main([
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "200", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8", "--json", path,
        ])
        with open(path) as handle:
            assert "telemetry" not in json.load(handle)

    def test_fault_report_routed_through_structured_log(self, capsys):
        exit_code = main([
            "--log-level", "info",
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "400", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8", "--faults", "heavy",
        ])
        assert exit_code == 0
        captured = capsys.readouterr()
        # the old ad-hoc multi-line report ("recovery: N program fails,
        # ...") is gone from stdout; the one-line stats summary remains
        assert "program fails" not in captured.out
        from repro.obs.log import parse_line

        events = [
            parsed
            for parsed in map(parse_line, captured.err.splitlines())
            if parsed is not None
        ]
        assert any(parsed["event"] == "fault_recovery" for parsed in events)

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "chatty", "simulate"])


class TestCompare:
    def test_three_ftl_comparison(self, capsys):
        exit_code = main([
            "compare", "--workload", "Mail",
            "--requests", "300", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        for name in ("pageFTL", "vertFTL", "cubeFTL", "dftl"):
            assert name in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
