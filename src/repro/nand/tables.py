"""Precomputed per-h-layer reliability/timing lookup tables (fast path).

The paper's central observation is that NAND behaviour is a function of a
*small discrete state*: h-layer group, aging epoch (P/E cycles plus
retention), and the per-WL RTN term drawn from a fixed per-location hash.
The scalar device model in :mod:`repro.nand.reliability` therefore
recomputes values drawn from a tiny domain once per page operation --
millions of times per run.  This module materializes that domain into
numpy lookup tables once per (block, erase epoch):

- ``wl_ber[layer, wl]`` -- raw retention BER under the block's effective
  aging (the read path and the E<->P1 health base);
- ``wl_ber_fresh[layer, wl]`` -- BER under the zero-retention,
  current-P/E state (the immediate post-program read-back);
- ``ep1[layer, wl]`` -- the E<->P1 health indicator under block aging;
- ``stable_opt[layer]`` -- the stable optimal read-offset level shared
  by every WL of the h-layer.

Tables are built lazily on first access, one live entry per block.  An
erase (which moves the block to the next aging epoch) drops that
block's entry; baseline-aging changes and checkpoint restores clear the
whole cache.

Bitwise identity with the scalar model is a hard contract: the hash is a
vectorized transliteration of :func:`repro.nand.reliability.hash_unit`
over ``uint64`` lanes, and every floating-point expression preserves the
scalar evaluation order, so table reads reproduce the scalar results
bit for bit (asserted exhaustively by the metamorphic test suite).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nand.reliability import _splitmix64

_MASK = 0xFFFFFFFFFFFFFFFF
_ADD = np.uint64(0x9E3779B97F4A7C15)
_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MUL2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_TWO64 = 2.0**64


def _mix(x: np.ndarray) -> np.ndarray:
    """One splitmix64 round over uint64 lanes (wrapping arithmetic)."""
    x = x + _ADD
    x = (x ^ (x >> _S30)) * _MUL1
    x = (x ^ (x >> _S27)) * _MUL2
    return x ^ (x >> _S31)


def hash_unit_array(seed: int, *keys) -> np.ndarray:
    """Vectorized :func:`repro.nand.reliability.hash_unit`.

    ``keys`` are non-negative ints or uint64 arrays (broadcast
    together).  uint64 array arithmetic wraps exactly like the masked
    Python-int arithmetic of the scalar version, and the final
    ``h / 2**64`` performs the same float64 rounding, so every lane is
    bitwise identical to the scalar hash of the same keys.  The prefix
    of scalar keys is mixed with Python ints: numpy emits overflow
    warnings for *scalar* uint64 arithmetic (arrays wrap silently), and
    the scalar mixer is the ground truth anyway.
    """
    h = _splitmix64(seed & _MASK)
    split = len(keys)
    for index, key in enumerate(keys):
        if isinstance(key, np.ndarray):
            split = index
            break
        h = _splitmix64(h ^ (int(key) & _MASK))
    if split == len(keys):
        return np.float64(h / 2.0**64)
    hv = np.uint64(h)
    for key in keys[split:]:
        if isinstance(key, np.ndarray):
            hv = _mix(hv ^ key.astype(np.uint64, copy=False))
        else:
            hv = _mix(hv ^ np.uint64(int(key) & _MASK))
    return hv / _TWO64


class BlockTables:
    """One block's precomputed surfaces for one erase epoch.

    The surfaces are built vectorized but stored as nested Python lists
    (``[layer][wl]``): the consumers read single scalars, where list
    indexing returns a ready Python float several times faster than
    numpy scalar extraction.  ``ndarray.tolist`` preserves every float64
    bit pattern, so the identity contract is unaffected.
    """

    __slots__ = ("wl_ber", "wl_ber_fresh", "ep1", "stable_opt")

    def __init__(
        self,
        wl_ber: List[List[float]],
        wl_ber_fresh: List[List[float]],
        ep1: List[List[float]],
        stable_opt: List[int],
    ) -> None:
        self.wl_ber = wl_ber
        self.wl_ber_fresh = wl_ber_fresh
        self.ep1 = ep1
        self.stable_opt = stable_opt


class FastPathTables:
    """Lazily built per-(block, erase-epoch) lookup tables of one chip.

    Holds a back-reference to the owning chip and derives everything
    from its reliability / retry models, so a table read is exactly the
    scalar model evaluated once and memoized in array form.
    """

    __slots__ = ("_chip", "_layer_keys", "_wl_keys", "_cache")

    def __init__(self, chip) -> None:
        self._chip = chip
        geometry = chip.geometry
        self._layer_keys = np.arange(geometry.n_layers, dtype=np.uint64)[:, None]
        self._wl_keys = np.arange(geometry.wls_per_layer, dtype=np.uint64)[None, :]
        #: block -> tables for the block's current erase epoch
        self._cache: Dict[int, BlockTables] = {}

    def invalidate(self) -> None:
        """Drop every table (baseline-aging change, checkpoint restore)."""
        self._cache.clear()

    def invalidate_block(self, block: int) -> None:
        """Drop one block's tables (called by the chip on erase)."""
        self._cache.pop(block, None)

    def block(self, block: int) -> BlockTables:
        """Tables of ``block`` for its current erase epoch."""
        tables = self._cache.get(block)
        if tables is None:
            tables = self._build(block)
            self._cache[block] = tables
        return tables

    # ------------------------------------------------------------------

    def _rtn_factors(self, block: int, aging) -> np.ndarray:
        """Per-WL RTN factors of the whole block, one vectorized hash."""
        rel = self._chip.reliability
        pe_bucket = aging.pe_cycles // 100
        ret_bucket = int(aging.retention_months * 10)
        u = hash_unit_array(
            rel.seed, 0x57A7, self._chip.chip_id, block,
            self._layer_keys, self._wl_keys, pe_bucket, ret_bucket,
        )
        return 1.0 + rel.rtn_noise * (2.0 * u - 1.0)

    def _wl_ber(self, block: int, aging) -> np.ndarray:
        """``reliability.wl_ber`` over every (layer, wl) of the block.

        The per-layer BER comes from the scalar (cached) model; only the
        per-WL RTN hash is vectorized, and the final product keeps the
        scalar's ``layer_ber * rtn_factor`` order.
        """
        chip = self._chip
        rel = chip.reliability
        layer_ber = np.array(
            [
                rel.layer_ber(chip.chip_id, block, layer, aging)
                for layer in range(chip.geometry.n_layers)
            ],
            dtype=np.float64,
        )
        return layer_ber[:, None] * self._rtn_factors(block, aging)

    def _build(self, block: int) -> BlockTables:
        chip = self._chip
        rel = chip.reliability
        aging = chip.block_aging(block)
        fresh = chip._fresh_aging(chip.block_pe(block))
        wl_ber = self._wl_ber(block, aging)
        wl_ber_fresh = self._wl_ber(block, fresh)
        # E<->P1 measurement noise is aging-independent by construction
        u = hash_unit_array(
            rel.seed, 0xE1B1, chip.chip_id, block,
            self._layer_keys, self._wl_keys,
        )
        noise = 1.0 + 0.05 * (2.0 * u - 1.0)
        ep1 = rel.ep1_fraction * wl_ber * noise
        stable_opt = [
            chip.retry_model.stable_optimal(chip.chip_id, block, layer, aging)
            for layer in range(chip.geometry.n_layers)
        ]
        return BlockTables(
            wl_ber.tolist(), wl_ber_fresh.tolist(), ep1.tolist(), stable_opt
        )
