"""Translation-layer corruption: a corrupted or unreadable translation
page must surface as an invariant violation or as a recovered read --
never as a silently served stale mapping.

Three injections against the demand-paged FTL:

- an unreadable translation page (every sense reports uncorrectable):
  the demand fetch must fall back to the authoritative table, serve the
  read correctly, and persist a *fresh* translation page;
- a duplicate GTD entry (two TVPNs, one physical translation page):
  the checker's deep scan must flag the translation mapper's bijection;
- a lost GTD entry for an LPN that is not cached: the lookup-
  completeness variant invariant must flag it (the mapping would be
  unreachable after a power cycle).
"""

import dataclasses

import pytest

from repro.check import InvariantChecker, parse_check_level
from repro.check.errors import InvariantViolation
from repro.check.fuzz import random_trace
from repro.faults.campaign import FaultCampaign
from repro.ftl.mapping import UNMAPPED
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.base import IORequest, Trace


def _checked_sim(faults=None, cmt_capacity=4):
    config = dataclasses.replace(
        SSDConfig.small(logical_fraction=0.4), store_tags=True
    )
    if faults is not None:
        config = config.with_faults(faults)
    checker = InvariantChecker(parse_check_level("strict"))
    sim = SSDSimulation(
        config, ftl="dftl", checker=checker, cmt_capacity=cmt_capacity
    )
    return sim, checker


def _run_some(sim, n_requests=300, seed=11):
    sim.prefill(0.4)
    trace = random_trace(sim.config.logical_pages, n_requests, seed)
    sim.run(trace, queue_depth=8)


def _uncached_mapped_lpn(sim):
    """An LPN whose next read must fetch its translation page from
    flash: mapped, not buffered, not in the CMT, TVPN on media."""
    ftl = sim.ftl
    for lpn in range(sim.config.logical_pages):
        if ftl.mapper.lookup(lpn) == UNMAPPED:
            continue
        if ftl.buffer.contains(lpn) or lpn in ftl._cmt:
            continue
        tvpn = ftl._tvpn_of(lpn)
        if tvpn in ftl._inflight_trans:
            continue
        if ftl.tmapper.lookup(tvpn) != UNMAPPED:
            return lpn, tvpn
    raise AssertionError("no CMT-miss candidate found; grow the run")


class TestUnreadableTranslationPage:
    def test_demand_fetch_recovers_instead_of_serving_stale(self):
        # all-zero campaign: fault machinery armed, no random faults
        sim, checker = _checked_sim(faults=FaultCampaign(name="inert"))
        _run_some(sim)
        lpn, tvpn = _uncached_mapped_lpn(sim)
        old_tppn = sim.ftl.tmapper.lookup(tvpn)
        chip_id, address = sim.ftl.geometry.ppn_to_address(old_tppn)
        chip = sim.controller.chips[chip_id]
        target = (address.block, address.layer, address.wl, address.page)
        original_read = chip.read_page

        def unreadable(block, layer, wl, page, params):
            result = original_read(block, layer, wl, page, params)
            if (block, layer, wl, page) == target:
                result = dataclasses.replace(result, correctable=False)
            return result

        chip.read_page = unreadable
        before = sim.ftl.dftl_stats.trans_recovered_pages
        reads = Trace(
            "readback", sim.config.logical_pages, [IORequest("R", lpn)]
        )
        # the strict oracle verifies the returned tag: a stale mapping
        # served from the dead page would raise data_integrity here
        sim.run(reads, queue_depth=1)
        assert sim.ftl.dftl_stats.trans_recovered_pages == before + 1
        # the unreadable page was replaced, not left as the GTD target
        assert sim.ftl.tmapper.lookup(tvpn) != old_tppn
        assert checker.finalize()["violations"] == 0

    def test_read_still_returns_current_data(self):
        sim, checker = _checked_sim(faults=FaultCampaign(name="inert"))
        _run_some(sim)
        lpn, tvpn = _uncached_mapped_lpn(sim)
        old_tppn = sim.ftl.tmapper.lookup(tvpn)
        chip_id, address = sim.ftl.geometry.ppn_to_address(old_tppn)
        chip = sim.controller.chips[chip_id]
        target = (address.block, address.layer, address.wl, address.page)
        original_read = chip.read_page
        chip.read_page = lambda b, l, w, p, params: (
            dataclasses.replace(
                original_read(b, l, w, p, params), correctable=False
            )
            if (b, l, w, p) == target
            else original_read(b, l, w, p, params)
        )
        # overwrite then read back through the translation miss path:
        # the answer must be the *new* content
        sim.run(
            Trace(
                "rmw", sim.config.logical_pages,
                [IORequest("W", lpn), IORequest("R", lpn)],
            ),
            queue_depth=1,
        )
        assert checker.finalize()["violations"] == 0


class TestCorruptedGtd:
    def test_duplicate_translation_ppn_is_caught(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        tmapper = sim.ftl.tmapper
        mapped = [
            tvpn for tvpn in range(sim.ftl.n_tpages)
            if tmapper.lookup(tvpn) != UNMAPPED
        ]
        assert len(mapped) >= 2
        victim, source = mapped[0], mapped[1]
        tmapper._l2p[victim] = tmapper._l2p[source]
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        assert caught.value.invariant == "mapping_bijection"
        assert "translation" in caught.value.message

    def test_lost_gtd_entry_breaks_lookup_completeness(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        lpn, tvpn = _uncached_mapped_lpn(sim)
        # the FTL "forgets" the translation page: with the entry in
        # neither the CMT nor the GTD the mapping is unreachable after
        # a power cycle -- the variant invariant must say so
        sim.ftl.tmapper.invalidate_lpn(tvpn)
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        assert caught.value.invariant == "variant_invariant"
