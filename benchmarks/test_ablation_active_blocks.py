"""Ablation: active blocks per chip (the Section 5.2 trade-off).

The paper: *"we use two active blocks per chip where more than two active
blocks per chip could be better.  However, the more active blocks per
chip, the more memory overhead for the OPM"*.  This bench sweeps the
active-block count under the bursty OLTP workload and reports both the
IOPS and the OPM memory footprint, quantifying the trade-off the authors
settled by hand.
"""

import dataclasses

import pytest

from benchmarks.conftest import BENCH_QUEUE_DEPTH, emit
from repro.analysis.tables import format_table
from repro.ssd.controller import SSDSimulation
from repro.workloads import make_workload

COUNTS = (1, 2, 4)
N_REQUESTS = 6000
WARMUP = 2000


@pytest.fixture(scope="module")
def active_block_sweep(bench_ssd_config):
    results = {}
    for count in COUNTS:
        config = dataclasses.replace(
            bench_ssd_config, active_blocks_per_chip=count
        )
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(0.9)
        trace = make_workload("OLTP", config.logical_pages, N_REQUESTS, seed=7)
        stats = sim.run(
            trace, queue_depth=BENCH_QUEUE_DEPTH, warmup_requests=WARMUP
        )
        results[count] = (stats, sim.ftl.opm.memory_bytes())
    return results


def test_active_blocks_tradeoff(benchmark, active_block_sweep):
    results = benchmark.pedantic(
        lambda: active_block_sweep, rounds=1, iterations=1
    )
    rows = []
    for count, (stats, memory) in results.items():
        counters = stats.counters
        total = max(1, counters.flash_programs + counters.gc_programs)
        rows.append([
            count,
            f"{stats.iops:.0f}",
            f"{100 * counters.follower_programs / total:.0f} %",
            f"{stats.write_latency.percentile(90):.0f}",
            memory,
        ])
    emit(
        "ablation_active_blocks",
        "Active blocks per chip (OLTP, fresh):\n"
        + format_table(
            ["active blocks", "IOPS", "followers", "write p90 us",
             "OPM memory (B)"],
            rows,
        ),
    )
    # two active blocks already capture most of the benefit over one ...
    assert results[2][0].iops >= results[1][0].iops * 0.98
    # ... while memory grows with the active-block count
    assert results[4][1] >= results[2][1] >= results[1][1]
    # every configuration sustains the workload
    for count, (stats, _memory) in results.items():
        assert stats.completed_requests == N_REQUESTS - WARMUP
