"""Deterministic per-shard seed derivation.

Parallel experiment runs must be reproducible independently of how the
work is sharded: the seed a case runs with may depend only on the base
seed and the case's *identity*, never on worker count, scheduling order,
or process ids.  :func:`derive_seed` is that rule, fixed here as part of
the repo's compatibility surface:

    shard_seed = SHA-256("repro.parallel/1:<base_seed>:<name>") mod 2^63

The ``repro.parallel/1`` prefix versions the rule; a changed derivation
must bump it (and regenerate any committed expectation files), because
every sweep result downstream embeds seeds derived through it.
"""

from __future__ import annotations

import hashlib

#: derivation-rule version tag baked into the hash input
_RULE = "repro.parallel/1"


def derive_seed(base_seed: int, name: str) -> int:
    """The seed a named shard runs with (stable across hosts and runs).

    ``name`` is the shard's identity string (e.g. ``"cube-OLTP-pe2000"``);
    two shards with different names get statistically independent seeds,
    and the same (base_seed, name) pair always derives the same seed --
    on any platform, with any worker count, in any completion order.
    """
    digest = hashlib.sha256(
        f"{_RULE}:{base_seed}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % (1 << 63)
