#!/usr/bin/env python
"""Regenerate the golden tenant-scenario snapshot after an *intentional*
model or schema change::

    PYTHONPATH=src python tests/integration/golden/regen_tenants.py

Keep the scenario in lockstep with
``tests/integration/test_tenant_scenario.py``.
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.dirname(HERE))))

from tests.integration.test_tenant_scenario import _scenario_spec  # noqa: E402

from repro.api import run_tenant_scenario  # noqa: E402

if __name__ == "__main__":
    path = os.path.join(HERE, "tenant_scenario.json")
    result = run_tenant_scenario(_scenario_spec())
    with open(path, "w") as handle:
        json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {path}")
