"""Tests for the fault-campaign configuration."""

import pytest

from repro.faults import CAMPAIGNS, FaultCampaign, get_campaign


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "program_fail_prob",
            "erase_fail_prob",
            "ber_spike_prob",
            "ort_skew_prob",
            "stuck_die_prob",
        ],
    )
    def test_probabilities_bounded(self, field):
        FaultCampaign(**{field: 0.0})
        FaultCampaign(**{field: 1.0})
        with pytest.raises(ValueError):
            FaultCampaign(**{field: -0.01})
        with pytest.raises(ValueError):
            FaultCampaign(**{field: 1.01})

    def test_grown_bad_count_non_negative(self):
        with pytest.raises(ValueError):
            FaultCampaign(grown_bad_per_chip=-1)

    def test_grown_bad_onset_at_least_one(self):
        with pytest.raises(ValueError):
            FaultCampaign(grown_bad_onset_erases=0)

    def test_spike_factor_at_least_one(self):
        with pytest.raises(ValueError):
            FaultCampaign(ber_spike_factor=0.5)

    def test_skew_steps_at_least_one(self):
        with pytest.raises(ValueError):
            FaultCampaign(ort_skew_steps=0)

    def test_skew_phase_reads_at_least_one(self):
        with pytest.raises(ValueError):
            FaultCampaign(ort_skew_phase_reads=0)

    def test_stuck_factor_at_least_one(self):
        with pytest.raises(ValueError):
            FaultCampaign(stuck_latency_factor=0.9)


class TestQuiet:
    def test_default_construction_is_quiet(self):
        assert FaultCampaign().quiet

    @pytest.mark.parametrize(
        "overrides",
        [
            {"program_fail_prob": 0.01},
            {"erase_fail_prob": 0.01},
            {"grown_bad_per_chip": 1},
            {"ber_spike_prob": 0.01},
            {"ort_skew_prob": 0.01},
            {"stuck_die_prob": 0.01},
        ],
    )
    def test_any_rate_defeats_quiet(self, overrides):
        assert not FaultCampaign(**overrides).quiet


class TestRegistry:
    def test_none_maps_to_no_campaign(self):
        assert CAMPAIGNS["none"] is None
        assert get_campaign("none") is None

    def test_named_campaigns_are_live(self):
        for name, campaign in CAMPAIGNS.items():
            if campaign is None:
                continue
            assert campaign.name == name
            assert not campaign.quiet

    def test_default_meets_acceptance_floor(self):
        """The acceptance campaign: >= 0.1 % program fails, >= 2 grown
        bad blocks per chip, periodic BER spikes."""
        default = CAMPAIGNS["default"]
        assert default.program_fail_prob >= 0.001
        assert default.grown_bad_per_chip >= 2
        assert default.ber_spike_prob > 0.0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown fault campaign"):
            get_campaign("nonesuch")

    def test_campaigns_are_hashable_and_frozen(self):
        default = CAMPAIGNS["default"]
        hash(default)
        with pytest.raises(Exception):
            default.program_fail_prob = 0.5
