"""Host replay models: closed-loop, NCQ open-loop, unbounded open-loop.

This module owns *how the host issues a trace* -- previously an ad-hoc
split between ``SSDSimulation.run`` (closed loop) and
``SSDSimulation.run_open_loop`` (unbounded open loop).  Three modes,
selected by :func:`replay`'s ``mode`` (the string
:attr:`repro.specs.HostSpec.mode` computes):

``"closed"``
    ``queue_depth`` requests outstanding at all times; each completion
    immediately issues the next request.  Arrival timestamps, if any,
    are ignored.  Latency is measured from issue to completion.

``"ncq"``
    An explicit NCQ model: requests *arrive* at their trace timestamps
    into a queue of ``queue_depth`` slots.  An arrival finding a free
    slot issues immediately; an arrival finding all slots busy waits in
    FIFO order for a completion to free one (backpressure).  Latency is
    measured from **arrival** to completion, so queue-full wait time is
    part of the reported latency -- the host-visible number.

``"unbounded"``
    Every request issues exactly at its arrival timestamp regardless of
    completions (infinite queue; the legacy open-loop model).  Under
    overload the backlog grows without bound and latencies reflect pure
    queueing delay.

All three modes account per-tenant statistics
(:class:`~repro.ssd.stats.TenantStats`) whenever the trace carries
tenant tags; untagged traces produce byte-identical output to the
pre-host-model code paths.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.ssd.stats import SimulationStats, TenantStats
from repro.workloads.base import IORequest, Trace

#: replay modes :func:`replay` accepts
REPLAY_MODES = ("closed", "ncq", "unbounded")


def _new_stats(sim, trace: Trace) -> SimulationStats:
    stats = SimulationStats(ftl_name=sim.ftl.name, workload=trace.name)
    if trace.tenants:
        stats.tenants = {name: TenantStats() for name in trace.tenants}
    return stats


def _note_tenant(stats: SimulationStats, request: IORequest, latency: float) -> None:
    """Mirror one measured completion into its tenant's slice."""
    if stats.tenants is None or request.tenant is None:
        return
    tenant = stats.tenants[request.tenant]
    tenant.completed_requests += 1
    if request.is_read:
        tenant.read_latency.add(latency)
    else:
        tenant.write_latency.add(latency)


def _require_arrivals(trace: Trace, mode: str) -> None:
    if not trace.has_arrivals:
        raise ValueError(
            f"{mode} replay needs arrival times on every request; "
            "stamp the trace with workloads.base.with_arrivals (or load "
            "a recorded trace that carries timestamps)"
        )


def _finish_or_stall(sim, state, pending, waiting=None, max_events=None) -> None:
    """Raise the stall diagnostic when the event queue drained early."""
    from repro.ssd.controller import SimulationStalledError, _stall_message

    stalled = dict(pending)
    if waiting:
        stalled.update({id(request): request for request in waiting})
    if stalled and max_events is None:
        sim._log_stall(state["completed"], stalled)
        raise SimulationStalledError(_stall_message(state["completed"], stalled))


def replay(
    sim,
    trace: Trace,
    *,
    mode: str = "closed",
    queue_depth: Optional[int] = 32,
    warmup_requests: int = 0,
    max_events: Optional[int] = None,
    metrics_interval_us: Optional[float] = None,
) -> SimulationStats:
    """Replay a trace through a simulation under one host model."""
    if mode not in REPLAY_MODES:
        raise ValueError(f"mode must be one of {REPLAY_MODES}")
    if trace.logical_pages > sim.config.logical_pages:
        raise ValueError("trace logical space exceeds the SSD's")
    if mode == "unbounded":
        return replay_unbounded(
            sim,
            trace,
            max_events=max_events,
            metrics_interval_us=metrics_interval_us,
        )
    if queue_depth is None or queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    if not 0 <= warmup_requests < len(trace):
        raise ValueError("warmup_requests must be < len(trace)")
    if mode == "ncq":
        return replay_ncq(
            sim,
            trace,
            queue_depth=queue_depth,
            warmup_requests=warmup_requests,
            max_events=max_events,
            metrics_interval_us=metrics_interval_us,
        )
    return replay_closed(
        sim,
        trace,
        queue_depth=queue_depth,
        warmup_requests=warmup_requests,
        max_events=max_events,
        metrics_interval_us=metrics_interval_us,
    )


# ---------------------------------------------------------------------------
# closed loop
# ---------------------------------------------------------------------------


def replay_closed(
    sim,
    trace: Trace,
    *,
    queue_depth: int = 32,
    warmup_requests: int = 0,
    max_events: Optional[int] = None,
    metrics_interval_us: Optional[float] = None,
) -> SimulationStats:
    """Fixed-queue-depth replay: a completion issues the next request.

    The first ``warmup_requests`` completions are simulated but excluded
    from IOPS and latency statistics -- they bring the WAM's active
    blocks, the OPM's monitored parameters, and the ORT into steady
    state (the paper's platform measures long steady-state runs).
    """
    engine = sim.controller.engine
    stats = _new_stats(sim, trace)
    iterator = iter(trace.requests)
    state = {"outstanding": 0, "completed": 0, "measure_start": None}
    pending: Dict[int, IORequest] = {}
    n_requests = len(trace)
    sampler = sim._make_sampler(metrics_interval_us, lambda: state["completed"])
    recorder = getattr(sim, "timeseries", None)
    progress = getattr(sim, "progress", None)

    def on_complete(active, now_us: float) -> None:
        pending.pop(id(active.spec), None)
        state["outstanding"] -= 1
        state["completed"] += 1
        if progress is not None:
            progress(state["completed"], n_requests, now_us)
        if state["completed"] == warmup_requests:
            state["measure_start"] = now_us
        elif state["completed"] > warmup_requests:
            latency = now_us - active.issued_us
            if active.spec.is_read:
                stats.read_latency.add(latency)
            else:
                stats.write_latency.add(latency)
            _note_tenant(stats, active.spec, latency)
        if state["completed"] == n_requests:
            # stop re-arming so sampling never advances the clock past
            # the last host completion (it would distort IOPS)
            if sampler is not None:
                sampler.stop()
            if recorder is not None:
                recorder.stop()
        issue_next()

    def issue_next() -> None:
        request = next(iterator, None)
        if request is None:
            return
        state["outstanding"] += 1
        pending[id(request)] = request
        sim.ftl.submit(request, on_complete)

    start_us = engine.now
    if warmup_requests == 0:
        state["measure_start"] = start_us
    if sampler is not None:
        sampler.start()
    if recorder is not None:
        recorder.start()
    for _ in range(queue_depth):
        issue_next()
    engine.run(max_events=max_events, profiler=sim.profiler)
    if state["outstanding"] > 0:
        _finish_or_stall(sim, state, pending, max_events=max_events)
    measure_start = state["measure_start"]
    if measure_start is None:
        measure_start = start_us
    stats.duration_us = engine.now - measure_start
    stats.completed_requests = state["completed"] - warmup_requests
    stats.counters = sim.ftl.counters
    stats.recovery = sim.ftl.recovery
    if sampler is not None:
        stats.metrics = sampler.finalize()
    if recorder is not None:
        recorder.finalize()
    return stats


# ---------------------------------------------------------------------------
# NCQ open loop
# ---------------------------------------------------------------------------


def replay_ncq(
    sim,
    trace: Trace,
    *,
    queue_depth: int = 32,
    warmup_requests: int = 0,
    max_events: Optional[int] = None,
    metrics_interval_us: Optional[float] = None,
) -> SimulationStats:
    """Arrival-driven replay through an N-slot queue with backpressure.

    Requests arrive at their trace timestamps.  An arrival finding a
    free slot issues immediately; otherwise it joins a FIFO wait list
    and issues when a completion frees a slot.  Latency is measured from
    the *arrival* timestamp, so time spent waiting for a slot counts --
    this is the host-visible latency an application would observe
    through a depth-N NCQ.
    """
    _require_arrivals(trace, "NCQ")
    engine = sim.controller.engine
    stats = _new_stats(sim, trace)
    state = {"outstanding": 0, "completed": 0, "measure_start": None}
    pending: Dict[int, IORequest] = {}
    waiting: "deque[IORequest]" = deque()
    arrival_of: Dict[int, float] = {}
    n_requests = len(trace)
    start_us = engine.now
    sampler = sim._make_sampler(metrics_interval_us, lambda: state["completed"])
    recorder = getattr(sim, "timeseries", None)
    progress = getattr(sim, "progress", None)

    def issue(request: IORequest) -> None:
        state["outstanding"] += 1
        pending[id(request)] = request
        sim.ftl.submit(request, on_complete)

    def on_complete(active, now_us: float) -> None:
        request = active.spec
        pending.pop(id(request), None)
        state["outstanding"] -= 1
        state["completed"] += 1
        if progress is not None:
            progress(state["completed"], n_requests, now_us)
        if state["completed"] == warmup_requests:
            state["measure_start"] = now_us
        elif state["completed"] > warmup_requests:
            latency = now_us - arrival_of.pop(id(request))
            if request.is_read:
                stats.read_latency.add(latency)
            else:
                stats.write_latency.add(latency)
            _note_tenant(stats, request, latency)
        if state["completed"] == n_requests:
            if sampler is not None:
                sampler.stop()
            if recorder is not None:
                recorder.stop()
        if waiting and state["outstanding"] < queue_depth:
            issue(waiting.popleft())

    for request in trace:
        arrival_us = start_us + request.arrival_us
        arrival_of[id(request)] = arrival_us

        def arrive(request=request) -> None:
            if state["outstanding"] < queue_depth:
                issue(request)
            else:
                waiting.append(request)

        engine.schedule_at(arrival_us, arrive)
    if warmup_requests == 0:
        state["measure_start"] = start_us
    if sampler is not None:
        sampler.start()
    if recorder is not None:
        recorder.start()
    engine.run(max_events=max_events, profiler=sim.profiler)
    if state["outstanding"] > 0 or waiting:
        _finish_or_stall(sim, state, pending, waiting, max_events=max_events)
    measure_start = state["measure_start"]
    if measure_start is None:
        measure_start = start_us
    stats.duration_us = engine.now - measure_start
    stats.completed_requests = state["completed"] - warmup_requests
    stats.counters = sim.ftl.counters
    stats.recovery = sim.ftl.recovery
    if sampler is not None:
        stats.metrics = sampler.finalize()
    if recorder is not None:
        recorder.finalize()
    return stats


# ---------------------------------------------------------------------------
# unbounded open loop
# ---------------------------------------------------------------------------


def replay_unbounded(
    sim,
    trace: Trace,
    *,
    max_events: Optional[int] = None,
    metrics_interval_us: Optional[float] = None,
) -> SimulationStats:
    """Replay a trace open-loop with an infinite queue: requests issue
    at their arrival times regardless of completions.

    Under overload the backlog grows and latencies reflect queueing --
    the regime where the WAM's burst absorption shows directly.
    """
    _require_arrivals(trace, "open-loop")
    engine = sim.controller.engine
    stats = _new_stats(sim, trace)
    state = {"outstanding": 0, "completed": 0}
    pending: Dict[int, IORequest] = {}
    start_us = engine.now
    n_requests = len(trace)
    sampler = sim._make_sampler(metrics_interval_us, lambda: state["completed"])
    recorder = getattr(sim, "timeseries", None)
    progress = getattr(sim, "progress", None)

    def on_complete(active, now_us: float) -> None:
        pending.pop(id(active.spec), None)
        latency = now_us - active.issued_us
        if active.spec.is_read:
            stats.read_latency.add(latency)
        else:
            stats.write_latency.add(latency)
        _note_tenant(stats, active.spec, latency)
        state["outstanding"] -= 1
        state["completed"] += 1
        if progress is not None:
            progress(state["completed"], n_requests, now_us)
        if state["completed"] == n_requests:
            if sampler is not None:
                sampler.stop()
            if recorder is not None:
                recorder.stop()

    if sampler is not None:
        sampler.start()
    if recorder is not None:
        recorder.start()
    for request in trace:

        def issue(request=request) -> None:
            state["outstanding"] += 1
            pending[id(request)] = request
            sim.ftl.submit(request, on_complete)

        engine.schedule_at(start_us + request.arrival_us, issue)
    engine.run(max_events=max_events, profiler=sim.profiler)
    if state["outstanding"] > 0:
        _finish_or_stall(sim, state, pending, max_events=max_events)
    stats.duration_us = engine.now - start_us
    stats.completed_requests = state["completed"]
    stats.counters = sim.ftl.counters
    stats.recovery = sim.ftl.recovery
    if sampler is not None:
        stats.metrics = sampler.finalize()
    if recorder is not None:
        recorder.finalize()
    return stats


__all__ = [
    "REPLAY_MODES",
    "replay",
    "replay_closed",
    "replay_ncq",
    "replay_unbounded",
]
