"""Extension bench -- open-loop burst absorption.

The closed-loop Fig. 17/18 runs saturate the device, which understates
the WAM's value: its whole point is to bank slow leaders for calm periods
and spend fast followers on bursts, and calm periods only exist in
open-loop arrival processes.  This bench replays a bursty arrival-timed
write stream (on/off bursts at ~60 % average utilization) and compares
tail write latency across FTLs.

Expected shape: the PS-aware FTLs cut the burst tail sharply; cubeFTL
(WAM) is at least as good as cubeFTL- and clearly better than pageFTL.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.ssd.controller import SSDSimulation
from repro.workloads.base import with_arrivals
from repro.workloads.synthetic import uniform_random_trace

FTLS = ["page", "vert", "cube", "cube-"]
N_REQUESTS = 6000
RATE_IOPS = 18_000
BURSTINESS = 6.0


@pytest.fixture(scope="module")
def open_loop(bench_ssd_config):
    results = {}
    for ftl in FTLS:
        sim = SSDSimulation(bench_ssd_config, ftl=ftl)
        sim.prefill(0.9)
        trace = uniform_random_trace(
            sim.config.logical_pages, N_REQUESTS, read_fraction=0.2, seed=11
        )
        stamped = with_arrivals(
            trace, rate_iops=RATE_IOPS, burstiness=BURSTINESS, seed=12
        )
        results[ftl] = sim.run_open_loop(stamped)
    return results


def test_open_loop_burst_absorption(benchmark, open_loop):
    results = benchmark.pedantic(lambda: open_loop, rounds=1, iterations=1)
    rows = []
    for ftl, stats in results.items():
        w = stats.write_latency
        rows.append([
            stats.ftl_name,
            round(w.percentile(50)),
            round(w.percentile(90)),
            round(w.percentile(99)),
            round(stats.read_latency.percentile(90)),
        ])
    emit(
        "ext_open_loop",
        f"Open-loop bursty writes ({RATE_IOPS} IOPS avg, burstiness "
        f"{BURSTINESS}):\n"
        + format_table(
            ["FTL", "write p50 us", "write p90 us", "write p99 us",
             "read p90 us"],
            rows,
        ),
    )
    page = results["page"].write_latency
    cube = results["cube"].write_latency
    cube_minus = results["cube-"].write_latency
    # the PS-aware FTL cuts the burst tail over the baseline
    assert cube.percentile(90) < page.percentile(90)
    assert cube.percentile(99) < page.percentile(99)
    # and the WAM keeps cubeFTL at least on par with cubeFTL-
    assert cube.percentile(90) <= cube_minus.percentile(90) * 1.05
    for ftl in FTLS:
        assert results[ftl].completed_requests == N_REQUESTS
