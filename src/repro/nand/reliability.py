"""Process-variability and aging model of the 3D NAND chip.

This module encodes, as a deterministic parametric surface, the empirical
findings of the paper's Section 3 characterization study:

**Intra-layer similarity (Sec. 3.2).**  WLs on the same h-layer of a block
are *virtually equivalent*: their retention-BER ratio :math:`\\Delta H` is
1 up to RTN-scale noise (< 3 %, footnote 2 of the paper), for every aging
condition.  The model realizes this by computing all per-WL quantities from
the (block, h-layer) pair and adding only a small deterministic
pseudo-random RTN term per WL.

**Inter-layer variability (Sec. 3.3).**  Layer-to-layer BER differences are
large and grow nonlinearly with aging: :math:`\\Delta V` is about 1.6 for a
fresh block and about 2.3 after 2 K P/E cycles and 1 year of retention,
with the less reliable layers (the block edges ``alpha``/``omega`` and the
near-bottom worst layer ``kappa``) degrading *faster* than the most
reliable layer ``beta``.  Per-block differences add a further ~18 % spread
in :math:`\\Delta V` (Fig. 6(d)).

The absolute BER scale is arbitrary (the paper normalizes all BER plots);
it is calibrated so that end-of-life worst-case raw BER stays within reach
of a typical LDPC/BCH correction strength (see :mod:`repro.nand.ecc`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.nand.geometry import BlockGeometry

#: rated endurance used to normalize P/E cycles (the paper's "end of
#: lifetime" condition is 2 K P/E cycles).
RATED_PE_CYCLES = 2000

#: rated retention window in months (the paper sweeps 0..12 months).
RATED_RETENTION_MONTHS = 12.0


@dataclass(frozen=True)
class AgingState:
    """NAND aging condition: accumulated P/E cycles and retention time."""

    pe_cycles: int = 0
    retention_months: float = 0.0

    def __post_init__(self) -> None:
        if self.pe_cycles < 0:
            raise ValueError("pe_cycles must be >= 0")
        if self.retention_months < 0:
            raise ValueError("retention_months must be >= 0")

    @property
    def pe_frac(self) -> float:
        """P/E cycles as a fraction of rated endurance."""
        return self.pe_cycles / RATED_PE_CYCLES

    @property
    def ret_frac(self) -> float:
        """Retention time as a fraction of the rated window."""
        return self.retention_months / RATED_RETENTION_MONTHS


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixing function (deterministic hash)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def hash_unit(seed: int, *keys: int) -> float:
    """Deterministic hash of integer keys to a float in ``[0, 1)``.

    Used everywhere the device model needs "random-looking" but perfectly
    reproducible per-location variation (block factors, RTN noise, read
    jitter).  The :func:`_splitmix64` rounds are inlined: this is the
    hottest scalar on the device-model path and the per-key call
    overhead dominated its cost.
    """
    x = ((seed & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    h = x ^ (x >> 31)
    for key in keys:
        x = ((h ^ (key & 0xFFFFFFFFFFFFFFFF)) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        h = x ^ (x >> 31)
    return h / 2.0**64


def hash_state(seed: int, *keys: int) -> int:
    """Premixed :func:`hash_unit` chain state after folding ``keys``.

    ``hash_unit_tail(hash_state(seed, *p), *q)`` is bitwise identical to
    ``hash_unit(seed, *p, *q)`` -- callers with a constant key prefix
    (e.g. a chip's ``(tag, chip_id)``) premix it once instead of
    re-folding it on every operation.
    """
    h = _splitmix64(seed & 0xFFFFFFFFFFFFFFFF)
    for key in keys:
        h = _splitmix64(h ^ (key & 0xFFFFFFFFFFFFFFFF))
    return h


def hash_unit_tail(state: int, *keys: int) -> float:
    """Continue a premixed :func:`hash_state` chain to a unit float."""
    h = state
    for key in keys:
        x = ((h ^ (key & 0xFFFFFFFFFFFFFFFF)) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        h = x ^ (x >> 31)
    return h / 2.0**64


@dataclass(frozen=True)
class BlockFactor:
    """Per-block process factors (die-location effects, Fig. 6(d)).

    ``scale`` multiplies the whole BER surface of the block; ``spread``
    exponentiates the layer profile, widening or narrowing the block's
    inter-layer variability (so two blocks can differ in
    :math:`\\Delta V` by ~18 % as in the paper).
    """

    scale: float
    spread: float


class ReliabilityModel:
    """Deterministic BER surface over (block, h-layer, WL, aging).

    Parameters
    ----------
    geometry:
        Block shape (number of h-layers and WLs per layer).
    seed:
        Chip-level seed; two model instances with the same seed are
        identical, different seeds give different (but statistically
        equivalent) chips.
    ber_fresh_best:
        Absolute raw BER of the most reliable h-layer of a nominal block
        in the fresh state.
    delta_v_fresh / delta_v_aged:
        Calibration targets for the inter-layer variability ratio
        :math:`\\Delta V` in the fresh state and at rated end of life
        (2 K P/E + 12 months).  Paper values: 1.6 and 2.3.
    rtn_noise:
        Half-width of the multiplicative RTN-scale noise applied per WL.
        The paper bounds intra-layer differences by < 3 %, i.e. the
        max/min ratio stays below ``(1 + rtn) / (1 - rtn)``.
    block_scale_sigma / block_spread_halfwidth:
        Magnitude of per-block factors.
    """

    def __init__(
        self,
        geometry: BlockGeometry = BlockGeometry(),
        seed: int = 0,
        ber_fresh_best: float = 2.0e-5,
        delta_v_fresh: float = 1.6,
        delta_v_aged: float = 2.3,
        rtn_noise: float = 0.012,
        pe_growth: float = 8.0,
        retention_growth: float = 20.0,
        block_scale_sigma: float = 0.05,
        block_spread_halfwidth: float = 0.22,
        ep1_fraction: float = 0.30,
    ) -> None:
        if delta_v_fresh <= 1.0:
            raise ValueError("delta_v_fresh must exceed 1")
        if delta_v_aged < delta_v_fresh:
            raise ValueError("delta_v_aged must be >= delta_v_fresh")
        if not 0 <= rtn_noise < 0.03:
            raise ValueError("rtn_noise must be in [0, 0.03)")
        self.geometry = geometry
        self.seed = seed
        self.ber_fresh_best = ber_fresh_best
        self.delta_v_fresh = delta_v_fresh
        self.delta_v_aged = delta_v_aged
        self.rtn_noise = rtn_noise
        self.pe_growth = pe_growth
        self.retention_growth = retention_growth
        self.block_scale_sigma = block_scale_sigma
        self.block_spread_halfwidth = block_spread_halfwidth
        self.ep1_fraction = ep1_fraction
        # Extra end-of-life acceleration of the *worst* layer needed to move
        # Delta-V from its fresh value to its aged value.
        self._aging_coupling = delta_v_aged / delta_v_fresh - 1.0
        self._profile = self._build_layer_profile(geometry.n_layers)
        self._severity = (self._profile - self._profile.min()) / (
            self._profile.max() - self._profile.min()
        )
        # hot-path memoization (all keys are deterministic)
        self._block_cache: dict = {}
        self._layer_mult_cache: dict = {}
        self._aging_cache: dict = {}
        self._slowdown_cache: dict = {}
        self._layer_ber_cache: dict = {}

    # ------------------------------------------------------------------
    # layer profile
    # ------------------------------------------------------------------

    def _build_layer_profile(self, n_layers: int) -> np.ndarray:
        """Fresh per-layer BER multipliers, normalized to [1, delta_v_fresh].

        The shape follows the etching physics described in Section 2.1 and
        the measurements of Fig. 6(a):

        - the channel-hole diameter shrinks toward the bottom of the stack
          (high aspect-ratio etching), degrading lower layers;
        - both block edges (the topmost layer ``alpha`` and the bottom
          layer ``omega``) are additionally degraded by edge effects;
        - the worst interior layer ``kappa`` sits near (but not at) the
          bottom; the best layer ``beta`` sits in the upper-middle region.
        """
        idx = np.arange(n_layers, dtype=float)
        frac = idx / max(n_layers - 1, 1)
        # degradation toward the bottom of the stack (narrowing channel
        # hole); the very last layers relax slightly toward the substrate,
        # so the worst interior layer (kappa) sits *near* the bottom
        bottom = 1.6 * frac**2.2 * (1.0 - 0.6 * np.exp(-(n_layers - 1 - idx) / 2.5))
        # edge elevation at the very top and very bottom of the block
        edge = 0.9 * np.exp(-idx / 1.2) + 0.35 * np.exp(-(n_layers - 1 - idx) / 1.2)
        # mild mid-stack ripple from etchant fluid dynamics
        ripple = 0.06 * np.sin(frac * math.pi * 3.0)
        raw = 1.0 + bottom + edge + ripple
        # normalize so min -> 1 and max -> delta_v_fresh
        raw = (raw - raw.min()) / (raw.max() - raw.min())
        return 1.0 + raw * (self.delta_v_fresh - 1.0)

    @property
    def layer_profile(self) -> np.ndarray:
        """Fresh BER multiplier per h-layer (copy)."""
        return self._profile.copy()

    @property
    def layer_severity(self) -> np.ndarray:
        """Severity in [0, 1] per h-layer (0 = best layer, 1 = worst)."""
        return self._severity.copy()

    # Representative layers used throughout the paper's figures.
    @property
    def layer_alpha(self) -> int:
        """Top-edge layer (h-layer_alpha of Fig. 6(a))."""
        return 0

    @property
    def layer_omega(self) -> int:
        """Bottom-edge layer (h-layer_omega)."""
        return self.geometry.n_layers - 1

    @property
    def layer_beta(self) -> int:
        """Most reliable layer (h-layer_beta)."""
        return int(np.argmin(self._profile))

    @property
    def layer_kappa(self) -> int:
        """Worst layer (h-layer_kappa)."""
        return int(np.argmax(self._profile))

    # ------------------------------------------------------------------
    # per-block factors
    # ------------------------------------------------------------------

    def block_factor(self, chip_id: int, block: int) -> BlockFactor:
        """Deterministic per-block process factor for a die location."""
        key = (chip_id, block)
        cached = self._block_cache.get(key)
        if cached is not None:
            return cached
        u_scale = hash_unit(self.seed, 0xB10C, chip_id, block, 1)
        u_spread = hash_unit(self.seed, 0xB10C, chip_id, block, 2)
        # triangular-ish symmetric noise around 1.0 for the scale
        scale = math.exp(self.block_scale_sigma * (2.0 * u_scale - 1.0))
        spread = 1.0 + self.block_spread_halfwidth * (2.0 * u_spread - 1.0)
        factor = BlockFactor(scale=scale, spread=spread)
        self._block_cache[key] = factor
        return factor

    def _layer_multipliers(self, chip_id: int, block: int) -> np.ndarray:
        """Per-layer fresh BER multipliers of one block (cached)."""
        key = (chip_id, block)
        cached = self._layer_mult_cache.get(key)
        if cached is None:
            factor = self.block_factor(chip_id, block)
            cached = factor.scale * self._profile**factor.spread
            self._layer_mult_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # aging dynamics
    # ------------------------------------------------------------------

    def _aging_growth(self, aging: AgingState) -> float:
        """Layer-independent BER growth with P/E cycling and retention."""
        key = (aging.pe_cycles, aging.retention_months)
        cached = self._aging_cache.get(key)
        if cached is not None:
            return cached
        pe = aging.pe_frac
        ret = aging.ret_frac
        cycling = self.pe_growth * pe**1.3
        # retention loss accelerates with wear (charge-trap early loss is
        # steeper on cycled cells)
        retention = self.retention_growth * math.sqrt(ret) * (0.3 + pe)
        growth = 1.0 + cycling + retention
        self._aging_cache[key] = growth
        return growth

    def _layer_aging_accel(self, severity: float, aging: AgingState) -> float:
        """Extra growth applied to bad layers as the block ages.

        This produces the *nonlinear dynamic behaviour* of Fig. 6(c): near
        end of life with long retention, kappa/alpha/omega pull away from
        beta, raising Delta-V from 1.6 to about 2.3.
        """
        stress = aging.pe_frac * math.sqrt(aging.ret_frac)
        return 1.0 + self._aging_coupling * severity * min(stress, 1.0)

    # ------------------------------------------------------------------
    # BER queries
    # ------------------------------------------------------------------

    def layer_ber(self, chip_id: int, block: int, layer: int, aging: AgingState) -> float:
        """Raw retention BER of h-layer ``layer`` (leading-WL value)."""
        key = (chip_id, block, layer, aging.pe_cycles, aging.retention_months)
        cached = self._layer_ber_cache.get(key)
        if cached is not None:
            return cached
        self.geometry.check_wl(layer, 0)
        severity = self._severity[layer]
        ber = (
            self.ber_fresh_best
            * float(self._layer_multipliers(chip_id, block)[layer])
            * self._aging_growth(aging)
            * self._layer_aging_accel(severity, aging)
        )
        self._layer_ber_cache[key] = ber
        return ber

    def rtn_factor(self, chip_id: int, block: int, layer: int, wl: int, aging: AgingState) -> float:
        """Multiplicative RTN-scale noise term for one WL (close to 1)."""
        pe_bucket = aging.pe_cycles // 100
        ret_bucket = int(aging.retention_months * 10)
        u = hash_unit(self.seed, 0x57A7, chip_id, block, layer, wl, pe_bucket, ret_bucket)
        return 1.0 + self.rtn_noise * (2.0 * u - 1.0)

    def wl_ber(
        self, chip_id: int, block: int, layer: int, wl: int, aging: AgingState
    ) -> float:
        """Raw retention BER of one WL.

        By construction this equals :meth:`layer_ber` up to the RTN term,
        realizing the paper's intra-layer similarity finding.
        """
        self.geometry.check_wl(layer, wl)
        return self.layer_ber(chip_id, block, layer, aging) * self.rtn_factor(
            chip_id, block, layer, wl, aging
        )

    def n_ret(
        self, chip_id: int, block: int, layer: int, wl: int, aging: AgingState
    ) -> int:
        """Number of retention bit errors on a WL: N_ret(w_ij, x, t).

        This is the reliability measure of Section 3.1 -- the expected
        number of raw bit errors across the WL's cells after the given
        aging condition.
        """
        bits = self.geometry.pages_per_wl * self.geometry.page_size_bytes * 8
        return int(round(self.wl_ber(chip_id, block, layer, wl, aging) * bits))

    def ber_ep1(
        self, chip_id: int, block: int, layer: int, wl: int, aging: AgingState
    ) -> float:
        """BER component between the erase state and the P1 state.

        The paper (Section 4.1.2, footnote 1) uses the E<->P1 error count as
        an accurate predictor of overall NAND health; here it is a fixed
        fraction of the WL BER plus a small measurement-noise term.
        """
        base = self.wl_ber(chip_id, block, layer, wl, aging)
        u = hash_unit(self.seed, 0xE1B1, chip_id, block, layer, wl)
        noise = 1.0 + 0.05 * (2.0 * u - 1.0)
        return self.ep1_fraction * base * noise

    # ------------------------------------------------------------------
    # derived per-layer quantities used by other device-model components
    # ------------------------------------------------------------------

    def program_slowdown(self, chip_id: int, block: int, layer: int) -> float:
        """Relative cell program-speed handicap of an h-layer in [0, 1].

        Worse (higher-severity) layers have slower cells, so their states
        need extra ISPP loops; the ISPP engine converts this to integer
        loop offsets.  Identical for all WLs of the h-layer.
        """
        key = (chip_id, block, layer)
        cached = self._slowdown_cache.get(key)
        if cached is not None:
            return cached
        factor = self.block_factor(chip_id, block)
        severity = float(self._severity[layer])
        jitter = hash_unit(self.seed, 0x510, chip_id, block, layer)
        slowdown = min(1.0, severity * (0.8 + 0.4 * jitter) * factor.spread)
        self._slowdown_cache[key] = slowdown
        return slowdown

    def spare_margin(
        self, chip_id: int, block: int, layer: int, wl: int, aging: AgingState,
        ber_ep1_max: float,
    ) -> float:
        """Spare BER margin S_M = BER_EP1^Max - BER_EP1 (Section 4.1.2),
        normalized by BER_EP1^Max so it lies in (-inf, 1]."""
        measured = self.ber_ep1(chip_id, block, layer, wl, aging)
        return (ber_ep1_max - measured) / ber_ep1_max
