"""Differential harness: every FTL must compute the same logical state.

The same seeded random workload is replayed through all four FTL
variants (page, vert, cube, oracle) with the invariant checker in
strict mode.  Each run must finish with zero violations, and all runs
must agree on the final logical state digest -- fresh, pre-aged to
2K P/E + 1 year retention, and under a seeded fault campaign.
"""

import pytest

from repro.check import CheckConfig
from repro.check.fuzz import DEFAULT_FTLS, run_fuzz, random_trace
from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig
from tests.helpers.determinism import assert_snapshots_identical

SEEDS = (3, 11, 42)
OPS = 160


def _assert_agreement(report):
    assert report.ok, report.summary()
    assert set(report.digests) == set(report.ftls)
    assert len(set(report.digests.values())) == 1, report.summary()
    for ftl in report.ftls:
        assert report.reports[ftl]["violations"] == 0
        assert report.reports[ftl]["deep_scans"] >= 1


class TestFreshDevice:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_ftls_agree(self, seed):
        _assert_agreement(run_fuzz(seed=seed, ops=OPS))

    def test_reads_actually_verified(self):
        report = run_fuzz(seed=SEEDS[0], ops=OPS)
        for ftl in report.ftls:
            oracle = report.reports[ftl]["oracle"]
            verified = (
                oracle["reads_verified"] + oracle["buffer_reads_verified"]
            )
            assert verified > 0, f"{ftl}: no reads were verified"


class TestAgedDevice:
    def test_all_ftls_agree_at_2k_pe_one_year(self):
        config = SSDConfig.small(logical_fraction=0.4).with_aging(
            AgingState(pe_cycles=2000, retention_months=12.0)
        )
        _assert_agreement(run_fuzz(seed=SEEDS[1], ops=OPS, config=config))


class TestFaultyDevice:
    def test_all_ftls_agree_under_fault_campaign(self):
        _assert_agreement(run_fuzz(seed=SEEDS[2], ops=OPS, faults="default"))

    def test_all_ftls_agree_aged_and_faulty(self):
        config = SSDConfig.small(logical_fraction=0.4).with_aging(
            AgingState(pe_cycles=2000, retention_months=12.0)
        )
        _assert_agreement(
            run_fuzz(seed=SEEDS[0], ops=OPS, config=config, faults="default")
        )


class TestLogicalViewDiff:
    def test_full_views_identical_not_just_digests(self):
        """Belt and braces for the digest: capture the complete LPN ->
        tag views of two FTLs and diff them line by line."""
        from repro.api import run_simulation

        config = SSDConfig.small(logical_fraction=0.4)
        trace = random_trace(config.logical_pages, OPS, seed=SEEDS[0])
        views = {}
        for ftl in ("page", "cube"):
            result = run_simulation(
                config, trace, ftl=ftl, queue_depth=8, prefill=0.4,
                seed=SEEDS[0],
                check=CheckConfig.strict(capture_state=True),
            )
            views[ftl] = result.check["logical_view"]
        assert_snapshots_identical(
            views["page"], views["cube"], "page vs cube logical view"
        )


class TestRandomTrace:
    def test_same_seed_same_trace(self):
        first = random_trace(512, 64, seed=9)
        second = random_trace(512, 64, seed=9)
        assert [
            (r.op, r.lpn, r.n_pages) for r in first.requests
        ] == [(r.op, r.lpn, r.n_pages) for r in second.requests]
        assert first.name == "fuzz-s9"

    def test_different_seed_different_trace(self):
        first = random_trace(512, 64, seed=9)
        second = random_trace(512, 64, seed=10)
        assert [
            (r.op, r.lpn, r.n_pages) for r in first.requests
        ] != [(r.op, r.lpn, r.n_pages) for r in second.requests]

    def test_requests_stay_in_bounds(self):
        trace = random_trace(128, 200, seed=1, max_pages=16)
        for request in trace.requests:
            assert 0 <= request.lpn < 128
            assert request.lpn + request.n_pages <= 128
            assert request.n_pages >= 1

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            random_trace(0, 10, seed=1)
        with pytest.raises(ValueError):
            random_trace(10, 0, seed=1)


def test_default_ftls_cover_all_variants():
    assert DEFAULT_FTLS == ("page", "vert", "cube", "oracle", "dftl")
