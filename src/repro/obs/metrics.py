"""Time-sliced metrics sampling driven by the event engine.

A :class:`MetricsSampler` snapshots the simulated SSD every
``interval_us`` of *simulated* time: completed requests (for interval
IOPS), write-buffer utilization (the WAM's mu signal), free-block
counts, GC and erase activity, the leader/follower WL mix, VFY-skip
savings and the ORT hit rate.  Samples are cumulative where the
underlying counters are cumulative; :func:`repro.obs.analyze.metrics_timeline`
differentiates them into per-interval rates.

The sampler rides on :meth:`repro.sim.engine.Engine.every`, so with no
sampler attached the event sequence is bit-for-bit the run without
metrics; with one attached, its events only *read* state, and it is
stopped at the last host completion so the engine clock (and therefore
IOPS / latency statistics) is never advanced past the real workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class MetricsSample:
    """One snapshot of the simulated SSD.

    Counter-like fields are cumulative since the start of the measured
    run; gauge-like fields (buffer occupancy, free blocks) are
    instantaneous.
    """

    #: absolute engine time of the snapshot (us)
    t_us: float
    #: host requests completed so far (includes warmup completions)
    completed_requests: int
    #: write-buffer utilization mu (occupied slots / capacity)
    buffer_utilization: float
    #: staged + in-flight pages occupying buffer slots
    buffer_occupancy: int
    #: free blocks summed over all chips
    free_blocks: int
    #: host pages read / written so far
    host_read_pages: int
    host_write_pages: int
    #: flash operation counters (cumulative)
    flash_reads: int
    flash_programs: int
    gc_reads: int
    gc_programs: int
    erases: int
    #: program mix (cumulative)
    leader_programs: int
    follower_programs: int
    reprograms: int
    #: verify operations skipped thanks to monitored parameters
    vfy_skipped: int
    #: read-retry counters (cumulative)
    read_retries: int
    retried_reads: int
    #: accumulated die service time (us, cumulative)
    program_time_us: float
    read_time_us: float
    #: ORT statistics (zero for PS-unaware FTLs without a table)
    ort_entries: int
    ort_hits: int
    ort_misses: int

    @property
    def ort_hit_rate(self) -> float:
        total = self.ort_hits + self.ort_misses
        return self.ort_hits / total if total else 0.0

    @property
    def follower_fraction(self) -> float:
        total = self.leader_programs + self.follower_programs
        return self.follower_programs / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "t_us": self.t_us,
            "completed_requests": self.completed_requests,
            "buffer_utilization": self.buffer_utilization,
            "buffer_occupancy": self.buffer_occupancy,
            "free_blocks": self.free_blocks,
            "host_read_pages": self.host_read_pages,
            "host_write_pages": self.host_write_pages,
            "flash_reads": self.flash_reads,
            "flash_programs": self.flash_programs,
            "gc_reads": self.gc_reads,
            "gc_programs": self.gc_programs,
            "erases": self.erases,
            "leader_programs": self.leader_programs,
            "follower_programs": self.follower_programs,
            "follower_fraction": self.follower_fraction,
            "reprograms": self.reprograms,
            "vfy_skipped": self.vfy_skipped,
            "read_retries": self.read_retries,
            "retried_reads": self.retried_reads,
            "program_time_us": self.program_time_us,
            "read_time_us": self.read_time_us,
            "ort_entries": self.ort_entries,
            "ort_hits": self.ort_hits,
            "ort_misses": self.ort_misses,
            "ort_hit_rate": self.ort_hit_rate,
        }


class MetricsSampler:
    """Periodic snapshots of an FTL-attached SSD simulation.

    Parameters
    ----------
    ftl:
        The running FTL (gives access to counters, buffer, block
        manager, and -- via ``ftl.opm`` when present -- the ORT).
    interval_us:
        Simulated time between snapshots.
    completed_fn:
        Callable returning the number of host requests completed so
        far; supplied by the run loop.
    """

    def __init__(
        self,
        ftl,
        interval_us: float,
        completed_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("interval_us must be > 0")
        self.ftl = ftl
        self.interval_us = interval_us
        self.samples: List[MetricsSample] = []
        self._completed_fn = completed_fn
        self._recurring = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Take the t=start snapshot and begin periodic sampling."""
        engine = self.ftl.controller.engine
        self._take()
        self._recurring = engine.every(self.interval_us, self._take)

    def stop(self) -> None:
        """Cancel the pending sampling event (the engine clock will not
        advance to it)."""
        if self._recurring is not None:
            self._recurring.stop()
            self._recurring = None

    def finalize(self) -> List[MetricsSample]:
        """Stop sampling and record the end-of-run snapshot, replacing
        a periodic sample that happens to share its timestamp so the
        final sample always aligns with the final statistics."""
        self.stop()
        now = self.ftl.controller.engine.now
        if self.samples and self.samples[-1].t_us == now:
            self.samples.pop()
        self._take()
        return self.samples

    # ------------------------------------------------------------------

    def _take(self) -> None:
        ftl = self.ftl
        controller = ftl.controller
        counters = ftl.counters
        blocks = ftl.blocks
        buffer = ftl.buffer
        opm = getattr(ftl, "opm", None)
        ort = opm.ort if opm is not None else None
        free_blocks = sum(
            blocks.free_count(chip) for chip in range(ftl.geometry.n_chips)
        )
        self.samples.append(
            MetricsSample(
                t_us=controller.engine.now,
                completed_requests=(
                    self._completed_fn() if self._completed_fn is not None else 0
                ),
                buffer_utilization=buffer.utilization,
                buffer_occupancy=buffer.occupancy,
                free_blocks=free_blocks,
                host_read_pages=counters.host_read_pages,
                host_write_pages=counters.host_write_pages,
                flash_reads=counters.flash_reads,
                flash_programs=counters.flash_programs,
                gc_reads=counters.gc_reads,
                gc_programs=counters.gc_programs,
                erases=counters.erases,
                leader_programs=counters.leader_programs,
                follower_programs=counters.follower_programs,
                reprograms=counters.reprograms,
                vfy_skipped=counters.vfy_skipped,
                read_retries=counters.read_retries,
                retried_reads=counters.retried_reads,
                program_time_us=counters.program_time_us,
                read_time_us=counters.read_time_us,
                ort_entries=len(ort) if ort is not None else 0,
                ort_hits=ort.hits if ort is not None else 0,
                ort_misses=ort.misses if ort is not None else 0,
            )
        )
