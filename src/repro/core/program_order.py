"""Program sequences for 3D NAND blocks (Section 4.1.3, Fig. 12).

The program-latency optimizations split a block's WLs into *leader* WLs
(programmed with default parameters, monitored) and *follower* WLs
(programmed fast by reusing the leader's parameters).  How WLs are ordered
therefore shapes how many fast followers are available at any time:

- **horizontal-first** (conventional): h-layer by h-layer; every fourth
  WL is a slow leader, capping the peak write bandwidth;
- **vertical-first**: v-layer by v-layer; the whole first v-layer is
  leaders, after which everything is a follower;
- **mixed order (MOS)**: the paper's proposal -- leaders (the first
  v-layer) may run ahead of followers independently, giving the WAM the
  freedom to pick a slow or fast WL per request.  As a static sequence it
  programs each h-layer's leader first and then drains followers.

Because WLs of an h-layer are isolated by SL transistors, all three
orders are reliability-equivalent (Fig. 13); tests assert this against
the device model.
"""

from __future__ import annotations

import enum
from typing import List

from repro.nand.geometry import BlockGeometry, WLAddress


class ProgramOrder(enum.Enum):
    """The three evaluated program sequences."""

    HORIZONTAL_FIRST = "horizontal-first"
    VERTICAL_FIRST = "vertical-first"
    MIXED = "mixed"


def horizontal_first(geometry: BlockGeometry) -> List[WLAddress]:
    """Conventional order: finish each h-layer before the next
    (Fig. 12(a))."""
    return [
        WLAddress(layer, wl)
        for layer in range(geometry.n_layers)
        for wl in range(geometry.wls_per_layer)
    ]


def vertical_first(geometry: BlockGeometry) -> List[WLAddress]:
    """Program each v-layer top-to-bottom before the next (Fig. 12(b))."""
    return [
        WLAddress(layer, wl)
        for wl in range(geometry.wls_per_layer)
        for layer in range(geometry.n_layers)
    ]


def mixed_order(geometry: BlockGeometry) -> List[WLAddress]:
    """The mixed order scheme (MOS) as a static sequence (Fig. 12(c)).

    Each h-layer's leader is programmed first, immediately followed by
    the *previous* h-layer's followers; after the last leader, the final
    h-layer's followers drain.  This keeps the leader pointer one h-layer
    ahead of the follower pointer -- the smallest lead the WAM's dynamic
    two-pointer scheme maintains -- while every follower still programs
    after its own layer's leader.
    """
    sequence: List[WLAddress] = []
    for layer in range(geometry.n_layers):
        sequence.append(WLAddress(layer, 0))
        if layer > 0:
            sequence.extend(
                WLAddress(layer - 1, wl) for wl in range(1, geometry.wls_per_layer)
            )
    last = geometry.n_layers - 1
    sequence.extend(WLAddress(last, wl) for wl in range(1, geometry.wls_per_layer))
    return sequence


def program_sequence(geometry: BlockGeometry, order: ProgramOrder) -> List[WLAddress]:
    """Dispatch on :class:`ProgramOrder`."""
    if order is ProgramOrder.HORIZONTAL_FIRST:
        return horizontal_first(geometry)
    if order is ProgramOrder.VERTICAL_FIRST:
        return vertical_first(geometry)
    if order is ProgramOrder.MIXED:
        return mixed_order(geometry)
    raise ValueError(f"unknown program order {order!r}")


def follower_flags(geometry: BlockGeometry, order: ProgramOrder) -> List[bool]:
    """Per program step, whether the WL is a follower (its h-layer's
    leader was programmed earlier in the sequence)."""
    flags: List[bool] = []
    seen_leader = set()
    for address in program_sequence(geometry, order):
        if address.layer in seen_leader:
            flags.append(True)
        else:
            seen_leader.add(address.layer)
            flags.append(False)
    return flags


def max_follower_run(geometry: BlockGeometry, order: ProgramOrder) -> int:
    """Longest stretch of consecutive fast follower programs.

    This is the quantity that bounds the peak sequential-write bandwidth
    (Section 4.1.3): horizontal-first inserts a slow leader every
    ``wls_per_layer`` writes, while vertical-first and MOS can sustain
    long follower runs.
    """
    best = 0
    run = 0
    for is_follower in follower_flags(geometry, order):
        run = run + 1 if is_follower else 0
        best = max(best, run)
    return best


def available_followers_after(
    geometry: BlockGeometry, order: ProgramOrder, step: int
) -> int:
    """Followers still programmable after ``step`` WLs, were the block
    programmed dynamically with leaders allowed to run ahead.

    Used to compare how quickly each order builds up its follower pool
    (the paper's argument for MOS, Fig. 12).
    """
    if not 0 <= step <= geometry.wls_per_block:
        raise ValueError("step out of range")
    sequence = program_sequence(geometry, order)
    programmed = sequence[:step]
    led = {address.layer for address in programmed if address.wl == 0}
    used = {address.as_tuple() for address in programmed}
    count = 0
    for layer in led:
        for wl in range(1, geometry.wls_per_layer):
            if (layer, wl) not in used:
                count += 1
    return count
