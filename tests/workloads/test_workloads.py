"""Tests for trace primitives and the six workload generators."""

import numpy as np
import pytest

from repro.workloads import WORKLOAD_GENERATORS, make_workload
from repro.workloads.base import READ, WRITE, IORequest, Trace, trace_summary
from repro.workloads.synthetic import (
    ZipfSampler,
    mixed_trace,
    sequential_trace,
    uniform_random_trace,
    zipf_trace,
)

LOGICAL_PAGES = 20_000


class TestIORequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            IORequest("X", 0, 1)
        with pytest.raises(ValueError):
            IORequest(READ, -1, 1)
        with pytest.raises(ValueError):
            IORequest(READ, 0, 0)

    def test_flags_and_end(self):
        request = IORequest(WRITE, 10, 4)
        assert request.is_write and not request.is_read
        assert request.end_lpn == 14


class TestTrace:
    def test_append_checks_bounds(self):
        trace = Trace("t", 100)
        trace.append(IORequest(READ, 96, 4))
        with pytest.raises(ValueError):
            trace.append(IORequest(READ, 97, 4))

    def test_constructor_checks_bounds(self):
        with pytest.raises(ValueError):
            Trace("t", 10, [IORequest(READ, 20, 1)])

    def test_sequence_protocol(self):
        trace = Trace("t", 100, [IORequest(READ, 0, 1), IORequest(WRITE, 1, 1)])
        assert len(trace) == 2
        assert trace[0].is_read
        assert [r.op for r in trace] == [READ, WRITE]

    def test_summary(self):
        trace = Trace("t", 100, [IORequest(READ, 0, 2), IORequest(WRITE, 5, 1)])
        summary = trace_summary(trace)
        assert summary["requests"] == 2
        assert summary["read_fraction"] == 0.5
        assert summary["read_page_fraction"] == pytest.approx(2 / 3)
        assert summary["mean_read_pages"] == 2.0


class TestZipfSampler:
    def test_samples_in_range(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(1000, theta=0.99, rng=rng)
        samples = sampler.sample(rng, 5000)
        assert samples.min() >= 0 and samples.max() < 1000

    def test_skew(self):
        """The hottest item appears far more often than the median item."""
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(1000, theta=0.99, rng=rng)
        samples = sampler.sample(rng, 20000)
        counts = np.bincount(samples, minlength=1000)
        assert counts.max() > 20 * np.median(counts[counts > 0])

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.99, rng)
        with pytest.raises(ValueError):
            ZipfSampler(10, 0.0, rng)


class TestSyntheticGenerators:
    def test_uniform_mix(self):
        trace = uniform_random_trace(LOGICAL_PAGES, 2000, read_fraction=0.7, seed=3)
        summary = trace_summary(trace)
        assert 0.65 <= summary["read_fraction"] <= 0.75

    def test_sequential_wraps(self):
        trace = sequential_trace(100, 60, n_pages=4)
        assert all(r.end_lpn <= 100 for r in trace)
        assert trace[0].lpn == 0
        assert trace[1].lpn == 4

    def test_zipf_trace_bounds(self):
        trace = zipf_trace(LOGICAL_PAGES, 1000, seed=1)
        assert all(0 <= r.lpn < LOGICAL_PAGES for r in trace)

    def test_mixed_preserves_all_requests(self):
        a = sequential_trace(1000, 50, name="a")
        b = uniform_random_trace(1000, 70, name="b", seed=2)
        mixed = mixed_trace([a, b], [1.0, 1.0], seed=3)
        assert len(mixed) == 120

    def test_mixed_validation(self):
        a = sequential_trace(1000, 5)
        b = sequential_trace(2000, 5)
        with pytest.raises(ValueError):
            mixed_trace([a, b], [1, 1])
        with pytest.raises(ValueError):
            mixed_trace([a], [1, 2])


class TestPaperWorkloads:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_GENERATORS))
    def test_generators_produce_valid_traces(self, name):
        trace = make_workload(name, LOGICAL_PAGES, 1500, seed=5)
        assert trace.name == name
        assert len(trace) >= 1500 * 0.95
        assert all(0 <= r.lpn and r.end_lpn <= LOGICAL_PAGES for r in trace)

    @pytest.mark.parametrize("name", sorted(WORKLOAD_GENERATORS))
    def test_generators_deterministic(self, name):
        a = make_workload(name, LOGICAL_PAGES, 300, seed=9)
        b = make_workload(name, LOGICAL_PAGES, 300, seed=9)
        assert list(a) == list(b)

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            make_workload("nope", LOGICAL_PAGES, 10)

    def test_read_write_mixes_match_personalities(self):
        """The documented mix of each personality (Section 6.1)."""
        mixes = {}
        for name in WORKLOAD_GENERATORS:
            trace = make_workload(name, LOGICAL_PAGES, 4000, seed=11)
            mixes[name] = trace_summary(trace)["read_fraction"]
        assert mixes["Web"] > 0.85            # read-dominant
        assert 0.6 <= mixes["Proxy"] <= 0.85  # read-mostly
        assert mixes["OLTP"] < 0.4            # write-intensive
        assert 0.35 <= mixes["Mail"] <= 0.55
        # YCSB-A is a 50/50 op mix; Rocks adds compaction write requests
        assert 0.3 <= mixes["Rocks"] <= 0.55
        assert 0.35 <= mixes["Mongo"] <= 0.55

    def test_oltp_is_most_write_intensive(self):
        from repro.workloads import PAPER_WORKLOADS

        fractions = {
            name: trace_summary(make_workload(name, LOGICAL_PAGES, 4000, seed=2))[
                "read_fraction"
            ]
            for name in PAPER_WORKLOADS
        }
        assert min(fractions, key=fractions.get) == "OLTP"

    def test_oltp_writes_arrive_in_bursts(self):
        trace = make_workload("OLTP", LOGICAL_PAGES, 4000, seed=2)
        ops = [r.is_write for r in trace]
        runs = []
        current = 0
        for is_write in ops:
            if is_write:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert max(runs) >= 8

    def test_rocks_has_compaction_bursts(self):
        trace = make_workload("Rocks", LOGICAL_PAGES, 4000, seed=2)
        large_writes = [r for r in trace if r.is_write and r.n_pages >= 8]
        assert large_writes

    def test_proxy_reads_whole_objects(self):
        trace = make_workload("Proxy", LOGICAL_PAGES, 4000, seed=2)
        summary = trace_summary(trace)
        assert summary["mean_read_pages"] >= 3.0
