"""The paper's Section 3 process-characterization study, in simulation.

The original study used 160 real 3D TLC chips on an in-house test board
(P/E cycling plus temperature-accelerated retention bakes).  Here the
same *protocol* runs against the device model: select blocks spread over
chips, cycle them, bake them, and count retention errors per WL --
producing the ``N_ret(w_ij, x, t)`` surfaces behind Figs. 5 and 6 and the
derived metrics Delta-V and Delta-H.
"""

from repro.characterization.metrics import delta_h, delta_v, normalize_over_best
from repro.characterization.harness import CharacterizationStudy, StudyConfig
from repro.characterization import experiments

__all__ = [
    "delta_h",
    "delta_v",
    "normalize_over_best",
    "CharacterizationStudy",
    "StudyConfig",
    "experiments",
]
