"""Reproduce the paper's Section 3 characterization study (Figs. 5/6).

Runs the N_ret measurement protocol over a grid of (P/E, retention)
conditions on a batch of simulated chips and prints:

- the intra-layer similarity result (Delta-H ~= 1 everywhere),
- the inter-layer variability result (Delta-V 1.6 -> 2.3 with aging),
- the per-block Delta-V spread.

Run:  python examples/characterize_chip.py [n_chips] [blocks_per_chip]
"""

import sys

from repro.analysis.tables import format_table
from repro.characterization import experiments as exp
from repro.characterization.harness import CharacterizationStudy, StudyConfig
from repro.nand.reliability import AgingState


def main(n_chips: int = 4, blocks_per_chip: int = 8) -> None:
    config = StudyConfig(n_chips=n_chips, blocks_per_chip=blocks_per_chip)
    print(f"characterizing {config.total_blocks} blocks "
          f"({config.total_wls} WLs, {config.total_pages} pages) ...\n")
    study = CharacterizationStudy(config)

    print("== intra-layer similarity (Fig. 5) ==")
    data = exp.fig5_intra_layer_ber(study, AgingState(2000, 12.0))
    rows = [
        [name, stats["layer"]]
        + [f"{value:.3f}" for value in stats["normalized_ber"]]
        + [f"{stats['delta_h']:.4f}"]
        for name, stats in data.items()
    ]
    print(format_table(
        ["h-layer", "index", "WL1", "WL2", "WL3", "WL4", "Delta-H"], rows
    ))

    print("\n== inter-layer variability (Fig. 6) ==")
    agings = [AgingState(0, 0), AgingState(2000, 1.0), AgingState(2000, 12.0)]
    inter = exp.fig6_inter_layer_ber(study, agings)
    rows = [
        [f"{pe} P/E + {ret} mo", f"{stats['delta_v']:.2f}"]
        for (pe, ret), stats in inter.items()
    ]
    print(format_table(["condition", "Delta-V"], rows))

    spread = exp.fig6d_per_block_delta_v(study, AgingState(2000, 1.0))
    print(f"\nper-block Delta-V spread (Fig. 6(d)): "
          f"{spread['delta_v_block_i']:.2f} vs {spread['delta_v_block_ii']:.2f} "
          f"({100 * (spread['spread_ratio'] - 1):.0f} % apart; paper: ~18 %)")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
