"""Plain-text table formatting for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render a fixed-width text table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row([str(h) for h in headers])]
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def normalized_iops_table(
    results: Dict[str, Dict[str, float]],
    baseline: str = "pageFTL",
) -> str:
    """Fig. 17-style table: rows = workloads, columns = FTLs, values
    normalized over the baseline FTL."""
    workloads = sorted(results)
    ftls: List[str] = []
    for per_workload in results.values():
        for ftl in per_workload:
            if ftl not in ftls:
                ftls.append(ftl)
    if baseline not in ftls:
        raise ValueError(f"baseline {baseline!r} missing from results")
    rows = []
    for workload in workloads:
        per_workload = results[workload]
        base = per_workload[baseline]
        rows.append(
            [workload] + [per_workload.get(ftl, float("nan")) / base for ftl in ftls]
        )
    return format_table(["workload"] + ftls, rows)
