"""Additional write-buffer edge cases."""

import pytest

from repro.ssd.write_buffer import WriteBuffer


class TestPopGroupEdges:
    def test_pop_from_empty_buffer(self):
        buffer = WriteBuffer(4)
        assert buffer.pop_group(3) == []

    def test_pop_more_than_staged(self):
        buffer = WriteBuffer(4)
        buffer.admit(1, None, None)
        group = buffer.pop_group(3)
        assert len(group) == 1

    def test_pop_respects_limit(self):
        buffer = WriteBuffer(8)
        for lpn in range(5):
            buffer.admit(lpn, None, None)
        assert len(buffer.pop_group(3)) == 3
        assert buffer.staged_pages == 2


class TestCoalesceAfterPop:
    def test_same_lpn_twice_in_flight(self):
        """Two copies of the same LPN can be in flight at once; each
        completion is accounted against its own entry."""
        buffer = WriteBuffer(4)
        buffer.admit(1, "v1", None)
        first = buffer.pop_group(1)
        buffer.admit(1, "v2", None)
        second = buffer.pop_group(1)
        assert buffer.inflight_pages == 2
        buffer.complete(first)
        assert buffer.inflight_pages == 1
        assert buffer.contains(1)
        buffer.complete(second)
        assert not buffer.contains(1)

    def test_version_ordering_across_generations(self):
        buffer = WriteBuffer(4)
        buffer.admit(1, "v1", None)
        first = buffer.pop_group(1)
        buffer.admit(1, "v2", None)
        second = buffer.pop_group(1)
        assert first[0].version < second[0].version
        assert buffer.latest_version(1) == second[0].version


class TestUtilizationSignal:
    def test_mu_counts_inflight(self):
        """The WAM's mu must include dispatched-but-not-durable pages --
        otherwise pressure vanishes the moment a flush is issued."""
        buffer = WriteBuffer(4)
        for lpn in range(4):
            buffer.admit(lpn, None, None)
        assert buffer.utilization == 1.0
        group = buffer.pop_group(3)
        assert buffer.utilization == 1.0  # still fully occupied
        buffer.complete(group)
        assert buffer.utilization == pytest.approx(0.25)
