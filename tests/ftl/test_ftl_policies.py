"""Unit tests of the per-FTL policies (allocation, parameters, reads)."""

import pytest

from repro.ftl import CubeFTL, PageFTL, VertFTL, make_ftl
from repro.nand.ispp import V_FINAL_DEFAULT_MV, V_START_DEFAULT_MV
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDController


@pytest.fixture
def config():
    return SSDConfig.small()


@pytest.fixture
def controller(config):
    return SSDController(config)


class TestMakeFTL:
    def test_aliases(self, config, controller):
        assert isinstance(make_ftl("pageftl", config, controller), PageFTL)
        assert isinstance(make_ftl("VERT", config, controller), VertFTL)
        assert isinstance(make_ftl("cubeFTL", config, controller), CubeFTL)

    def test_cube_minus(self, config, controller):
        ftl = make_ftl("cube-", config, controller)
        assert isinstance(ftl, CubeFTL)
        assert not ftl.wam_enabled
        assert ftl.name == "cubeFTL-"

    def test_unknown(self, config, controller):
        with pytest.raises(ValueError):
            make_ftl("nope", config, controller)


class TestPageFTLPolicy:
    def test_horizontal_first_allocation(self, config, controller):
        ftl = PageFTL(config, controller)
        ftl.install_block(0, 3)
        addresses = [ftl.allocate_wl(0).address for _ in range(5)]
        assert [(a.layer, a.wl) for a in addresses] == [
            (0, 0), (0, 1), (0, 2), (0, 3), (1, 0),
        ]

    def test_default_params_everywhere(self, config, controller):
        ftl = PageFTL(config, controller)
        ftl.install_block(0, 3)
        allocation = ftl.allocate_wl(0)
        params, squeeze = ftl.program_params(0, allocation)
        assert squeeze == 0.0
        assert params.v_start_mv == V_START_DEFAULT_MV
        assert params.v_final_mv == V_FINAL_DEFAULT_MV
        assert all(s == 1 for s in params.verify_plan.start_loops)

    def test_default_read_params(self, config, controller):
        ftl = PageFTL(config, controller)
        assert ftl.read_params(0, 0, 0).offset_hint == 0

    def test_exhausted_cursor_dropped(self, config, controller):
        ftl = PageFTL(config, controller)
        ftl.install_block(0, 3)
        for _ in range(config.geometry.block.wls_per_block):
            ftl.allocate_wl(0)
        assert ftl.cursor_count(0) == 0
        with pytest.raises(LookupError):
            ftl.allocate_wl(0)


class TestVertFTLPolicy:
    def test_static_v_final_only(self, config, controller):
        ftl = VertFTL(config, controller)
        ftl.install_block(0, 3)
        params, squeeze = ftl.program_params(0, ftl.allocate_wl(0))
        assert params.v_start_mv == V_START_DEFAULT_MV  # V_start untouched
        assert params.v_final_mv < V_FINAL_DEFAULT_MV
        assert squeeze == ftl.static_margin_mv
        assert all(s == 1 for s in params.verify_plan.start_loops)  # no skips

    def test_margin_quantized_to_ispp_steps(self, config, controller):
        ftl = VertFTL(config, controller, static_margin_mv=130.0)
        assert ftl.static_margin_mv == 120  # one 120-mV step

    def test_negative_margin_rejected(self, config, controller):
        with pytest.raises(ValueError):
            VertFTL(config, controller, static_margin_mv=-10)


class TestCubeFTLPolicy:
    def test_first_program_on_layer_is_monitoring_leader(self, config, controller):
        ftl = CubeFTL(config, controller)
        ftl.install_block(0, 3)
        allocation = ftl.allocate_wl(0)
        params, squeeze = ftl.program_params(0, allocation)
        assert squeeze == 0.0  # no observation yet -> default parameters

    def test_follower_after_leader_recorded(self, config, controller):
        ftl = CubeFTL(config, controller)
        ftl.install_block(0, 3)
        leader_alloc = ftl.allocate_wl(0)
        params, squeeze = ftl.program_params(0, leader_alloc)
        result = controller.chip(0).program_wl(
            leader_alloc.block,
            leader_alloc.address.layer,
            leader_alloc.address.wl,
            params=params,
        )
        assert ftl.after_program(0, leader_alloc, result, squeeze)
        assert ftl.opm.has_leader(0, leader_alloc.block, leader_alloc.address.layer)
        # now a follower on the same layer gets accelerated parameters
        from repro.core.wam import Allocation
        from repro.nand.geometry import WLAddress

        follower_alloc = Allocation(
            leader_alloc.block,
            WLAddress(leader_alloc.address.layer, 1),
            is_leader=False,
        )
        params2, squeeze2 = ftl.program_params(0, follower_alloc)
        assert squeeze2 > 0
        assert any(s > 1 for s in params2.verify_plan.start_loops)

    def test_read_side_uses_ort(self, config, controller):
        ftl = CubeFTL(config, controller)
        ftl.opm.ort.update(0, 2, 1, 4)
        assert ftl.read_params(0, 2, 1).offset_hint == 4
        assert ftl.read_params(0, 2, 2).offset_hint == 0

    def test_erase_invalidates_opm_state(self, config, controller):
        ftl = CubeFTL(config, controller)
        ftl.opm.ort.update(0, 2, 1, 4)
        ftl.on_block_erased(0, 2)
        assert ftl.read_params(0, 2, 1).offset_hint == 0

    def test_wam_disabled_uses_sequential_cursors(self, config, controller):
        ftl = CubeFTL(config, controller, wam_enabled=False)
        ftl.install_block(0, 3)
        addresses = [ftl.allocate_wl(0).address for _ in range(4)]
        assert [(a.layer, a.wl) for a in addresses] == [
            (0, 0), (0, 1), (0, 2), (0, 3),
        ]

    def test_wam_enabled_low_utilization_walks_leaders(self, config, controller):
        ftl = CubeFTL(config, controller)
        ftl.install_block(0, 3)
        # empty buffer -> utilization 0 -> leaders first
        first = ftl.allocate_wl(0)
        second = ftl.allocate_wl(0)
        assert first.is_leader and second.is_leader
        assert (first.address.layer, second.address.layer) == (0, 1)
