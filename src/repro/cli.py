"""Command-line interface.

Three subcommands cover the common flows::

    repro-ssd characterize --chips 4 --blocks 8
        run the Section 3 study and print Delta-H / Delta-V summaries

    repro-ssd simulate --ftl cube --workload OLTP --pe 2000 --retention 12
        replay one workload against one FTL and print the stats

    repro-ssd compare --workload Proxy --pe 2000 --retention 12
        replay one workload against pageFTL / vertFTL / cubeFTL and print
        the normalized comparison (one Fig. 17 slice)

    repro-ssd sweep --ftls page,cube --workloads OLTP,Proxy \\
            --aging 0:0 2000:12 --jobs 4
        run the cross product of FTLs x workloads x aging states (x fault
        campaigns), sharded over worker processes; each cell's seed is
        derived only from the base seed and the cell's name, so the sweep
        output is identical for any --jobs value

    repro-ssd fuzz --seed 7 --ops 400 --check=strict
        replay one seeded random workload through several FTLs under the
        runtime invariant checker and diff their final logical state

    repro-ssd tenants --rate 20000 --json scenario.json
        run a multi-tenant scenario (shared device plus per-tenant solo
        baselines) and print the interference matrix

    repro-ssd contract --workload trace:msr.csv
        score a workload or recorded trace against the unwritten flash
        contract (alignment, sequentiality, locality, death-time grouping)

    repro-ssd report runs/<run_id>
        render the ASCII dashboard of a run artifact written with
        --artifacts (latency CDF, telemetry sparklines, tail exemplars)

    repro-ssd diff runs/<a> runs/<b>
        compare two run artifacts metric by metric with tolerance
        verdicts (exit 1 on regression, 2 on schema mismatch)

``simulate`` and ``compare`` accept ``--check[=strict]`` to attach the
runtime invariant checker to normal runs.  ``simulate``, ``sweep``, and
``tenants`` accept ``--spec FILE`` with a JSON/TOML
:class:`~repro.specs.SimulationSpec`; everywhere a workload name is
accepted, a ``trace:<path>`` reference replays a recorded block trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.api import run_simulation
from repro.faults import CAMPAIGNS, get_campaign
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.nand.reliability import AgingState
from repro.obs.log import LEVELS, configure_logging, get_logger, log_event
from repro.ssd.config import SSDConfig
from repro.workloads import WORKLOAD_GENERATORS, is_trace_path

# fixed name so `python -m repro.cli` and the installed entry point
# emit identical logger= fields
logger = get_logger("repro.cli")


def _workload_arg(value: str) -> str:
    """Accept a registry workload name or a ``trace:<path>`` reference."""
    if is_trace_path(value) or value in WORKLOAD_GENERATORS:
        return value
    raise argparse.ArgumentTypeError(
        f"unknown workload {value!r}; choose from "
        f"{sorted(WORKLOAD_GENERATORS)} or a trace:<path> reference"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ssd",
        description="cubeFTL reproduction: characterization and SSD simulation",
    )
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        default="warning",
        dest="log_level",
        help="threshold for structured 'REPRO key=value' diagnostics on "
        "stderr (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    characterize = sub.add_parser(
        "characterize", help="run the Section 3 process-characterization study"
    )
    characterize.add_argument("--chips", type=int, default=4)
    characterize.add_argument("--blocks", type=int, default=8)
    characterize.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a full markdown characterization report to PATH",
    )

    def add_sim_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workload",
            type=_workload_arg,
            default="OLTP",
            metavar="NAME",
            help="workload name "
            f"({', '.join(sorted(WORKLOAD_GENERATORS))}) or a "
            "trace:<path> reference to a recorded block trace "
            "(default: OLTP)",
        )
        p.add_argument("--pe", type=int, default=0, help="pre-cycled P/E count")
        p.add_argument(
            "--retention", type=float, default=0.0, help="retention months"
        )
        p.add_argument("--requests", type=int, default=8000)
        p.add_argument("--warmup", type=int, default=2500)
        p.add_argument("--queue-depth", type=int, default=32)
        p.add_argument("--blocks-per-chip", type=int, default=48)
        p.add_argument("--prefill", type=float, default=0.9)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--faults",
            choices=sorted(CAMPAIGNS),
            default="none",
            help="fault-injection campaign (default: none)",
        )
        p.add_argument(
            "--check",
            nargs="?",
            const="on",
            choices=["on", "strict"],
            default=None,
            help="attach the runtime invariant checker (bare --check: "
            "per-event invariants + data-integrity oracle + one deep "
            "audit at the end; --check=strict: also deep-audit after "
            "every erase and periodically); any violation aborts with "
            "the offending LPN/PPN/block and timestamp",
        )

    simulate = sub.add_parser("simulate", help="replay a workload on one FTL")
    simulate.add_argument(
        "--ftl",
        choices=["page", "vert", "cube", "cube-", "oracle", "dftl"],
        default="cube",
    )
    simulate.add_argument(
        "--cmt-capacity",
        type=int,
        default=None,
        dest="cmt_capacity",
        metavar="ENTRIES",
        help="dftl only: cached-mapping-table capacity in L2P entries "
        "(default: the FTL's built-in 64)",
    )
    simulate.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="run a SimulationSpec from a JSON/TOML file instead of the "
        "flat flags (see docs/WORKLOADS.md); only --json / --log-level "
        "compose with it",
    )
    simulate.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full stats as JSON to PATH (result schema v2)",
    )
    simulate.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="stream a request-lifecycle span trace (JSONL) to PATH and "
        "print the per-stage latency breakdown",
    )
    simulate.add_argument(
        "--metrics-interval",
        metavar="US",
        type=float,
        default=None,
        dest="metrics_interval",
        help="sample time-sliced metrics every US simulated microseconds "
        "and print the timeline",
    )
    simulate.add_argument(
        "--telemetry",
        action="store_true",
        help="record device telemetry (per-die busy time, queue depths, "
        "per-h-layer retries / tPROG, ORT hits) and print the heatmaps; "
        "the snapshot is embedded in --json output when both are given",
    )
    simulate.add_argument(
        "--profile",
        action="store_true",
        help="attribute host wall-clock time to subsystems (FTL, NAND "
        "model, event queue, tracing) and print the table",
    )
    simulate.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="write a resumable checkpoint into DIR every "
        "--checkpoint-every completed requests (see docs/PERSISTENCE.md)",
    )
    simulate.add_argument(
        "--checkpoint-every",
        metavar="N",
        type=int,
        default=1000,
        dest="checkpoint_every",
        help="checkpoint cadence in completed host requests "
        "(default: 1000; only with --checkpoint)",
    )
    simulate.add_argument(
        "--resume",
        metavar="CKPT",
        default=None,
        help="resume from a checkpoint directory (ckpt_NNNNNNNN); the "
        "continued run is byte-identical to the uninterrupted one",
    )
    simulate.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write a self-contained run artifact (spec, result, "
        "latency grids, telemetry time-series, tail exemplars, typed "
        "manifest) under DIR/<run_id>/; inspect it with "
        "'repro-ssd report' and 'repro-ssd diff'",
    )
    simulate.add_argument(
        "--artifact-every",
        metavar="US",
        type=float,
        default=None,
        dest="artifact_every",
        help="telemetry time-series window in simulated microseconds "
        "for the artifact (default: 1000)",
    )
    add_sim_args(simulate)

    compare = sub.add_parser(
        "compare", help="replay a workload on the three FTLs of the paper"
    )
    add_sim_args(compare)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzz: replay one seeded random workload "
        "through several FTLs under the invariant checker and diff the "
        "final logical state",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=7,
        help="trace + device seed; a failing report is replayed by "
        "rerunning with the same seed (default: 7)",
    )
    fuzz.add_argument(
        "--ops",
        type=int,
        default=400,
        help="host requests in the generated trace (default: 400)",
    )
    fuzz.add_argument(
        "--ftls",
        default="page,vert,cube,oracle,dftl",
        help="comma-separated FTL variants to diff "
        "(default: page,vert,cube,oracle,dftl)",
    )
    fuzz.add_argument(
        "--check",
        nargs="?",
        const="strict",
        choices=["on", "strict"],
        default="strict",
        help="checker level (default: strict)",
    )
    fuzz.add_argument(
        "--faults",
        choices=sorted(CAMPAIGNS),
        default="none",
        help="run the fuzz under a fault campaign (default: none)",
    )
    fuzz.add_argument("--queue-depth", type=int, default=8)
    fuzz.add_argument("--prefill", type=float, default=0.4)

    sweep = sub.add_parser(
        "sweep",
        help="run an FTL x workload x aging (x faults) cross product "
        "across worker processes",
    )
    sweep.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="use a SimulationSpec file as the base cell; the sweep "
        "crosses it with --ftls x --aging x --faults (its workload, "
        "host model, and geometry replace the flat flags)",
    )
    sweep.add_argument(
        "--ftls",
        default="page,vert,cube",
        help="comma-separated FTL variants, any of "
        "page/vert/cube/cube-/oracle/dftl (default: page,vert,cube)",
    )
    sweep.add_argument(
        "--workloads",
        default="OLTP",
        help="comma-separated workload names (default: OLTP)",
    )
    sweep.add_argument(
        "--aging",
        nargs="+",
        default=["0:0"],
        metavar="PE:MONTHS",
        help="aging states as PE:MONTHS pairs, e.g. --aging 0:0 2000:12 "
        "(default: fresh only)",
    )
    sweep.add_argument(
        "--faults",
        nargs="+",
        choices=sorted(CAMPAIGNS),
        default=["none"],
        help="fault campaigns to sweep over (default: none)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to shard the sweep across (default 1: "
        "inline; results are identical for any value)",
    )
    sweep.add_argument("--requests", type=int, default=2000)
    sweep.add_argument("--warmup", type=int, default=500)
    sweep.add_argument("--queue-depth", type=int, default=32)
    sweep.add_argument("--blocks-per-chip", type=int, default=16)
    sweep.add_argument("--prefill", type=float, default=0.5)
    sweep.add_argument(
        "--seed",
        type=int,
        default=7,
        help="base seed; each cell runs with derive_seed(seed, cell_name)",
    )
    sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="record device telemetry per cell and include the merged "
        "snapshot in --json output",
    )
    sweep.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full sweep results (per-cell schema-v2 stats, "
        "derived seeds, errors) as JSON to PATH",
    )
    sweep.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        dest="checkpoint_dir",
        help="save per-cell results into DIR as they complete; an "
        "interrupted sweep rerun with the same DIR (and the same cells "
        "and seed) reruns only the unfinished cells",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        help="relaunch a cell whose worker hard-died (segfault, OOM "
        "kill) up to N times with the same derived seed (default: 0)",
    )
    sweep.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write one run artifact per cell under DIR plus a "
        "sweep.json index; inspect cells with 'repro-ssd report' and "
        "compare them with 'repro-ssd diff'",
    )

    tenants = sub.add_parser(
        "tenants",
        help="run a multi-tenant scenario (shared device + per-tenant "
        "solo baselines) and print the interference matrix",
    )
    tenants.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="SimulationSpec file with host.tenants; without it, a "
        "built-in 4-tenant mixed scenario (OLTP/Mail/Web/Proxy, one "
        "LPN-space quarter each) runs",
    )
    tenants.add_argument(
        "--requests-per-tenant",
        type=int,
        default=2000,
        dest="requests_per_tenant",
        help="requests per tenant stream in the built-in scenario "
        "(default: 2000)",
    )
    tenants.add_argument(
        "--rate",
        type=float,
        default=20000.0,
        help="per-tenant arrival rate in IOPS for the built-in "
        "scenario (default: 20000)",
    )
    tenants.add_argument(
        "--ftl",
        choices=["page", "vert", "cube", "cube-", "oracle", "dftl"],
        default="cube",
        help="FTL for the built-in scenario (a --spec file carries its "
        "own ftl field)",
    )
    tenants.add_argument("--queue-depth", type=int, default=32)
    tenants.add_argument("--blocks-per-chip", type=int, default=48)
    tenants.add_argument("--prefill", type=float, default=0.9)
    tenants.add_argument("--seed", type=int, default=7)
    tenants.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the shared + solo runs (default 1; "
        "results are identical for any value)",
    )
    tenants.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the scenario result (per-tenant stats + "
        "interference matrix) as JSON to PATH",
    )
    tenants.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write one run artifact per scenario run (shared + each "
        "solo baseline) under DIR",
    )

    report = sub.add_parser(
        "report",
        help="render the ASCII dashboard of one run-artifact directory "
        "(latency CDF, telemetry sparklines, slowest-span exemplars, "
        "telemetry deltas)",
    )
    report.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="artifact directory written by --artifacts (runs/<run_id>)",
    )
    report.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write the dashboard as a single self-contained HTML "
        "page to PATH",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two run artifacts metric by metric with tolerance "
        "verdicts (exit 0 clean, 1 regression, 2 schema mismatch)",
    )
    diff.add_argument("run_a", metavar="RUN_A", help="baseline artifact directory")
    diff.add_argument("run_b", metavar="RUN_B", help="candidate artifact directory")
    diff.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative change beyond which a worse gated metric is a "
        "regression (default: 0.10)",
    )

    contract = sub.add_parser(
        "contract",
        help="score a workload or trace against the unwritten flash "
        "contract (alignment, sequentiality, locality, death-time "
        "grouping)",
    )
    contract.add_argument(
        "--workload",
        type=_workload_arg,
        default="OLTP",
        metavar="NAME",
        help="workload name or trace:<path> reference (default: OLTP)",
    )
    contract.add_argument("--requests", type=int, default=8000)
    contract.add_argument("--blocks-per-chip", type=int, default=48)
    contract.add_argument("--seed", type=int, default=7)
    contract.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the contract scores as JSON to PATH",
    )

    spor = sub.add_parser(
        "spor",
        help="sudden-power-off drill: run a workload, cut power "
        "mid-run, recover the FTL from per-page OOB metadata, and "
        "verify the recovered device against the shadow-store oracle",
    )
    spor.add_argument(
        "--ftl", choices=["page", "vert", "cube", "cube-", "oracle", "dftl"],
        default="cube",
    )
    spor.add_argument(
        "--spor-at",
        metavar="US",
        type=float,
        default=None,
        dest="spor_at",
        help="simulated microsecond of the power cut (default: the "
        "'spor' campaign's instant)",
    )
    spor.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the SPOR report as JSON to PATH",
    )
    add_sim_args(spor)
    return parser


def _config(args: argparse.Namespace) -> SSDConfig:
    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=4,
        blocks_per_chip=args.blocks_per_chip,
        block=BlockGeometry(),
    )
    return (
        SSDConfig(geometry=geometry)
        .with_aging(AgingState(args.pe, args.retention))
        .with_faults(get_campaign(args.faults))
    )


def _run(args: argparse.Namespace, ftl: str):
    config = _config(args)
    checkpoint_dir = getattr(args, "checkpoint", None)
    ftl_kwargs = {}
    cmt_capacity = getattr(args, "cmt_capacity", None)
    if cmt_capacity is not None:
        if ftl != "dftl":
            raise SystemExit("--cmt-capacity only applies to --ftl dftl")
        ftl_kwargs["cmt_capacity"] = cmt_capacity
    return run_simulation(
        config,
        args.workload,
        ftl=ftl,
        queue_depth=args.queue_depth,
        warmup_requests=args.warmup,
        prefill=args.prefill,
        n_requests=args.requests,
        seed=args.seed,
        trace=getattr(args, "trace", None),
        metrics_interval=getattr(args, "metrics_interval", None),
        telemetry=getattr(args, "telemetry", False),
        profile=getattr(args, "profile", False),
        check=getattr(args, "check", None),
        checkpoint_every=(
            args.checkpoint_every if checkpoint_dir is not None else None
        ),
        checkpoint_dir=checkpoint_dir,
        resume_from=getattr(args, "resume", None),
        artifact_dir=getattr(args, "artifacts", None),
        artifact_every=getattr(args, "artifact_every", None),
        **ftl_kwargs,
    )


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.characterization import experiments as exp
    from repro.characterization.harness import CharacterizationStudy, StudyConfig

    study = CharacterizationStudy(
        StudyConfig(n_chips=args.chips, blocks_per_chip=args.blocks)
    )
    print(f"blocks: {study.config.total_blocks}, WLs: {study.config.total_wls}")
    intra = exp.fig5_intra_layer_ber(study, AgingState(2000, 12.0))
    rows = [
        [name, stats["layer"], f"{stats['delta_h']:.4f}"]
        for name, stats in intra.items()
    ]
    print("\nintra-layer similarity (2K P/E + 1 yr):")
    print(format_table(["h-layer", "index", "Delta-H"], rows))
    inter = exp.fig6_inter_layer_ber(
        study, [AgingState(0, 0), AgingState(2000, 12.0)]
    )
    print("\ninter-layer variability:")
    rows = [
        [f"{pe} P/E + {ret} mo", f"{stats['delta_v']:.2f}"]
        for (pe, ret), stats in inter.items()
    ]
    print(format_table(["condition", "Delta-V"], rows))
    if args.report:
        from repro.characterization.report import build_report

        with open(args.report, "w") as handle:
            handle.write(build_report(study))
        print(f"\nfull report written to {args.report}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.spec:
        from repro.specs import load_spec_file

        spec = load_spec_file(args.spec)
        if args.artifacts:
            spec = spec.with_options(
                artifact_dir=args.artifacts,
                artifact_every=args.artifact_every,
            )
        result = run_simulation(spec)
    else:
        result = _run(args, args.ftl)
    stats = result.stats
    print(stats.summary())
    if stats.tenants:
        rows = [
            [
                name,
                str(tenant.completed_requests),
                f"{tenant.iops(stats.duration_us):.0f}",
                f"{tenant.p99_us:.0f}",
            ]
            for name, tenant in sorted(stats.tenants.items())
        ]
        print(format_table(["tenant", "requests", "IOPS", "p99 us"], rows))
    counters = stats.counters
    print(
        f"programs: {counters.flash_programs} host + {counters.gc_programs} GC "
        f"(followers {counters.follower_programs}, reprograms {counters.reprograms}); "
        f"mean tPROG {counters.mean_t_prog_us:.0f} us; "
        f"retries/read {counters.mean_num_retry:.2f}; erases {counters.erases}"
    )
    recovery = stats.recovery
    if recovery is not None and recovery.any():
        log_event(
            logger,
            "warning",
            "fault_recovery",
            program_fails=recovery.program_fails,
            erase_fails=recovery.erase_fails,
            blocks_retired=recovery.blocks_retired,
            scrubs=recovery.scrubs,
            ort_invalidations=recovery.ort_invalidations,
            recovered_reads=recovery.recovered_reads,
            uncorrectable=recovery.uncorrectable_after_recovery,
        )
    if result.artifact is not None:
        print(f"artifact written to {result.artifact}")
    if args.resume:
        print(f"resumed from {args.resume}")
    if args.checkpoint:
        print(
            f"checkpoints in {args.checkpoint} "
            f"(every {args.checkpoint_every} requests)"
        )
    if args.trace:
        from repro.obs.analyze import breakdown_report, load_trace

        print(f"\ntrace written to {args.trace}")
        print(breakdown_report(load_trace(args.trace)))
    if args.metrics_interval is not None and result.metrics:
        from repro.obs.analyze import metrics_report

        print()
        print(metrics_report(result.metrics))
    if args.telemetry:
        print()
        print(result.telemetry_report())
    if args.profile:
        from repro.obs.profile import profile_report

        print()
        print(profile_report(result.profile))
    if args.check is not None and result.check is not None:
        oracle = result.check["oracle"]
        print(
            f"check[{result.check['level']}]: 0 violations; "
            f"{oracle['reads_verified'] + oracle['buffer_reads_verified']} "
            f"reads verified, {result.check['deep_scans']} deep audits, "
            f"digest {result.check['state_digest'][:16]}"
        )
    if args.json:
        import json

        payload = stats.to_dict()
        if args.telemetry:
            payload["telemetry"] = result.telemetry
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"stats written to {args.json}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    base = None
    for ftl in ("page", "vert", "cube", "dftl"):
        stats = _run(args, ftl).stats
        if base is None:
            base = stats.iops
        rows.append(
            [
                stats.ftl_name,
                f"{stats.iops:.0f}",
                f"{stats.iops / base:.2f}",
                f"{stats.counters.mean_t_prog_us:.0f}",
                f"{stats.counters.mean_num_retry:.2f}",
                f"{stats.write_latency.percentile(90):.0f}",
                f"{stats.read_latency.percentile(90):.0f}",
            ]
        )
    print(
        format_table(
            ["FTL", "IOPS", "norm", "tPROG us", "retries/read",
             "write p90 us", "read p90 us"],
            rows,
        )
    )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.check.fuzz import run_fuzz

    ftls = [f for f in args.ftls.split(",") if f]
    if not ftls:
        raise SystemExit("fuzz needs at least one FTL")
    report = run_fuzz(
        seed=args.seed,
        ops=args.ops,
        ftls=ftls,
        level=args.check,
        faults=get_campaign(args.faults),
        queue_depth=args.queue_depth,
        prefill=args.prefill,
    )
    print(report.summary())
    if not report.ok:
        print(
            f"reproduce with: repro-ssd fuzz --seed {args.seed} "
            f"--ops {args.ops} --ftls {args.ftls} --check={args.check}",
            file=sys.stderr,
        )
        return 1
    return 0


def _sweep_specs(args: argparse.Namespace):
    """RunSpecs for the sweep's cross product, in deterministic order.

    Each cell's name encodes every swept dimension, and the name is all
    the seed derivation sees -- so a cell keeps its seed (and its
    results) when other cells are added to or removed from the sweep.
    """
    from repro.parallel import RunSpec

    ftls = [f for f in args.ftls.split(",") if f]
    workloads = [w for w in args.workloads.split(",") if w]
    agings = []
    for pair in args.aging:
        try:
            pe_text, months_text = pair.split(":", 1)
            agings.append(AgingState(int(pe_text), float(months_text)))
        except ValueError:
            raise SystemExit(
                f"bad --aging value {pair!r} (expected PE:MONTHS, e.g. 2000:12)"
            )
    if getattr(args, "spec", None):
        import dataclasses

        from repro.specs import load_spec_file

        base_spec = load_spec_file(args.spec)
        specs = []
        for ftl in ftls:
            for aging in agings:
                for fault in args.faults:
                    name = (
                        f"{ftl}-{base_spec.workload_name}"
                        f"-pe{aging.pe_cycles}-ret{aging.retention_months:g}"
                    )
                    if fault != "none":
                        name += f"-{fault}"
                    cell = dataclasses.replace(
                        base_spec,
                        ftl=ftl,
                        config=base_spec.config.with_aging(aging).with_faults(
                            get_campaign(fault)
                        ),
                    )
                    specs.append(
                        RunSpec(
                            name=name,
                            workload=base_spec.workload_name,
                            ftl=ftl,
                            telemetry=args.telemetry,
                            spec=cell,
                            artifact_dir=getattr(args, "artifacts", None),
                        )
                    )
        return specs
    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=4,
        blocks_per_chip=args.blocks_per_chip,
        block=BlockGeometry(),
    )
    base_config = SSDConfig(geometry=geometry)
    specs = []
    for ftl in ftls:
        for workload in workloads:
            for aging in agings:
                for fault in args.faults:
                    name = f"{ftl}-{workload}-pe{aging.pe_cycles}-ret{aging.retention_months:g}"
                    if fault != "none":
                        name += f"-{fault}"
                    config = base_config.with_aging(aging).with_faults(
                        get_campaign(fault)
                    )
                    specs.append(
                        RunSpec(
                            name=name,
                            config=config,
                            workload=workload,
                            ftl=ftl,
                            queue_depth=args.queue_depth,
                            warmup_requests=args.warmup,
                            prefill=args.prefill,
                            n_requests=args.requests,
                            telemetry=args.telemetry,
                            artifact_dir=getattr(args, "artifacts", None),
                        )
                    )
    return specs


def _heartbeat_printer(n_runs: int):
    """A live single-line progress display for batched runs.

    Returns ``(heartbeat, clear)``: ``heartbeat(name, payload)`` feeds a
    shard's latest ``completed``/``total``/``sim_us`` watermark and
    redraws an aggregate status line on stderr (``\\r``-rewritten on a
    tty, plain lines otherwise); ``clear()`` ends the line so normal
    output continues cleanly.  Display only -- the wall-clock ETA never
    feeds back into any simulation.
    """
    import time

    state: dict = {}
    started = time.monotonic()
    is_tty = sys.stderr.isatty()

    def heartbeat(name: str, payload: dict) -> None:
        state[name] = payload
        done = sum(p.get("completed", 0) for p in state.values())
        total = sum(p.get("total", 0) for p in state.values())
        watermark = max(
            (p.get("sim_us", 0.0) for p in state.values()), default=0.0
        )
        eta = ""
        elapsed = time.monotonic() - started
        if 0 < done < total and elapsed > 0:
            eta = f", ETA {elapsed * (total - done) / done:.0f}s"
        line = (
            f"[{len(state)}/{n_runs} shards] {done}/{total} requests, "
            f"sim t={watermark:.0f}us{eta}"
        )
        if is_tty:
            print(f"\r{line}\x1b[K", end="", file=sys.stderr, flush=True)
        else:
            print(line, file=sys.stderr, flush=True)

    def clear() -> None:
        if is_tty and state:
            print(file=sys.stderr)
            state.clear()

    return heartbeat, clear


def _partial_sweep_payload(specs, outcomes, base_seed):
    """Sweep JSON for an interrupted run: whatever completed, flagged
    ``"incomplete": true`` so downstream tooling never mistakes it for
    a full sweep."""
    from repro.parallel import resolve_seed

    by_name = {outcome.name: outcome for outcome in outcomes}
    runs = []
    for spec in specs:
        outcome = by_name.get(spec.name)
        runs.append(
            {
                "name": spec.name,
                "seed": resolve_seed(spec, base_seed),
                "ftl": spec.ftl,
                "workload": spec.workload,
                "stats": (
                    outcome.result.stats.to_dict()
                    if outcome is not None and outcome.ok
                    else None
                ),
                "error": outcome.error if outcome is not None else None,
            }
        )
    return {"base_seed": base_seed, "incomplete": True, "runs": runs}


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import run_many
    from repro.parallel import ShardsInterrupted, resolve_seed

    specs = _sweep_specs(args)
    if not specs:
        raise SystemExit("sweep is empty: no FTLs or workloads selected")
    print(f"sweep: {len(specs)} cell(s), {args.jobs} job(s)")
    heartbeat, clear_heartbeat = _heartbeat_printer(len(specs))

    def progress(name: str, ok: bool) -> None:
        clear_heartbeat()
        print(f"  {name}: {'done' if ok else 'FAILED'}", flush=True)

    try:
        batch = run_many(
            specs,
            jobs=args.jobs,
            base_seed=args.seed,
            on_progress=progress,
            retries=args.retries,
            checkpoint_dir=args.checkpoint_dir,
            on_heartbeat=heartbeat,
        )
    except ShardsInterrupted as interrupt:
        clear_heartbeat()
        done = len(interrupt.outcomes)
        print(
            f"\ninterrupted: {done}/{len(specs)} cell(s) complete",
            file=sys.stderr,
        )
        if args.json:
            import json

            payload = _partial_sweep_payload(
                specs, interrupt.outcomes, args.seed
            )
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(
                f"partial sweep results written to {args.json}",
                file=sys.stderr,
            )
        if args.checkpoint_dir:
            print(
                f"rerun with --checkpoint-dir {args.checkpoint_dir} to "
                "finish the remaining cells",
                file=sys.stderr,
            )
        return 130
    clear_heartbeat()
    if args.artifacts:
        from repro.obs.artifact import write_sweep_manifest

        cells = {
            spec.name: (result.artifact if result is not None else None)
            for spec, result in zip(specs, batch.results)
        }
        index = write_sweep_manifest(args.artifacts, cells, args.seed)
        print(f"sweep artifact index written to {index}")
    rows = []
    for spec, result in zip(specs, batch.results):
        if result is None:
            rows.append([spec.name, str(resolve_seed(spec, args.seed)),
                         "FAILED", "-", "-", "-"])
            continue
        stats = result.stats
        rows.append(
            [
                spec.name,
                str(resolve_seed(spec, args.seed)),
                f"{stats.iops:.0f}",
                f"{stats.read_latency.percentile(99):.0f}",
                f"{stats.write_latency.percentile(99):.0f}",
                f"{stats.counters.mean_num_retry:.2f}",
            ]
        )
    print(
        format_table(
            ["cell", "seed", "IOPS", "read p99 us", "write p99 us",
             "retries/read"],
            rows,
        )
    )
    if args.json:
        import json

        payload = {
            "base_seed": args.seed,
            "runs": [
                {
                    "name": spec.name,
                    "seed": resolve_seed(spec, args.seed),
                    "ftl": spec.ftl,
                    "workload": spec.workload,
                    "stats": result.stats.to_dict() if result else None,
                    "error": batch.errors.get(spec.name),
                    "retried": spec.name in batch.retried,
                    "cached": spec.name in batch.cached,
                }
                for spec, result in zip(specs, batch.results)
            ],
        }
        if batch.telemetry is not None:
            payload["telemetry"] = batch.telemetry
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"sweep results written to {args.json}")
    if batch.errors:
        for name, error in batch.errors.items():
            print(f"FAILED cell {name}:\n{error}", file=sys.stderr)
        return 1
    return 0


def _default_tenant_spec(args: argparse.Namespace):
    """The built-in 4-tenant mixed scenario: OLTP, Mail, Web, and Proxy
    streams at the same arrival rate, each confined to one quarter of the
    logical space."""
    from repro.specs import HostSpec, SimulationSpec, TenantSpec, WorkloadSpec

    names = ("OLTP", "Mail", "Web", "Proxy")
    tenants = tuple(
        TenantSpec(
            name=name.lower(),
            workload=WorkloadSpec(name, n_requests=args.requests_per_tenant),
            rate_iops=args.rate,
            partition=(index * 0.25, (index + 1) * 0.25),
        )
        for index, name in enumerate(names)
    )
    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=4,
        blocks_per_chip=args.blocks_per_chip,
        block=BlockGeometry(),
    )
    return SimulationSpec(
        config=SSDConfig(geometry=geometry),
        ftl=getattr(args, "ftl", "cube"),
        host=HostSpec(queue_depth=args.queue_depth, tenants=tenants),
        prefill=args.prefill,
        seed=args.seed,
    )


def _cmd_tenants(args: argparse.Namespace) -> int:
    from repro.api import run_tenant_scenario
    from repro.specs import load_spec_file

    if args.spec:
        spec = load_spec_file(args.spec)
        if not spec.host.tenants:
            raise SystemExit(
                f"spec {args.spec} has no host.tenants; the tenants "
                "command needs a multi-tenant spec"
            )
    else:
        spec = _default_tenant_spec(args)
    if args.artifacts:
        spec = spec.with_options(artifact_dir=args.artifacts)
    print(
        f"scenario: {', '.join(t.name for t in spec.host.tenants)} "
        f"(ftl={spec.ftl}, queue depth {spec.host.queue_depth}, "
        f"seed {spec.seed})"
    )
    heartbeat, clear_heartbeat = _heartbeat_printer(
        1 + len(spec.host.tenants)
    )
    result = run_tenant_scenario(spec, jobs=args.jobs, on_heartbeat=heartbeat)
    clear_heartbeat()
    if args.artifacts:
        written = [result.shared] + [
            result.solo[t.name] for t in spec.host.tenants
        ]
        paths = [r.artifact for r in written if r.artifact is not None]
        print(f"{len(paths)} run artifact(s) written under {args.artifacts}")
    shared = result.shared.stats
    print(shared.summary())
    matrix = result.interference_matrix()
    rows = [
        [
            name,
            f"{row['solo_iops']:.0f}",
            f"{row['shared_iops']:.0f}",
            f"{row['solo_p99_us']:.0f}",
            f"{row['shared_p99_us']:.0f}",
            f"{row['p99_slowdown']:.2f}x",
        ]
        for name, row in sorted(matrix.items())
    ]
    print("\ninterference vs solo baselines:")
    print(
        format_table(
            ["tenant", "solo IOPS", "shared IOPS", "solo p99 us",
             "shared p99 us", "p99 slowdown"],
            rows,
        )
    )
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        print(f"scenario results written to {args.json}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.artifact import load_artifact, validate_artifact
    from repro.obs.report import render_html, render_report

    problems = validate_artifact(args.run_dir)
    if problems:
        for problem in problems:
            print(f"invalid artifact: {problem}", file=sys.stderr)
        return 2
    artifact = load_artifact(args.run_dir)
    text = render_report(artifact)
    print(text)
    if args.html:
        with open(args.html, "w") as handle:
            handle.write(render_html(artifact, report=text))
        print(f"\nHTML report written to {args.html}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diffing import (
        SchemaDriftError,
        compare_artifacts,
        format_artifact_diff,
    )

    try:
        report = compare_artifacts(
            args.run_a, args.run_b, tolerance=args.tolerance
        )
    except (SchemaDriftError, FileNotFoundError, ValueError) as error:
        print(f"diff failed: {error}", file=sys.stderr)
        return 2
    print("\n".join(format_artifact_diff(report)))
    return 1 if report["problems"] else 0


def _cmd_contract(args: argparse.Namespace) -> int:
    from repro.obs.contract import analyze_contract, contract_report
    from repro.specs import WorkloadSpec

    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=4,
        blocks_per_chip=args.blocks_per_chip,
        block=BlockGeometry(),
    )
    config = SSDConfig(geometry=geometry)
    trace = WorkloadSpec(
        args.workload, n_requests=args.requests, seed=args.seed
    ).build(config)
    scores = analyze_contract(trace)
    print(contract_report(scores))
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(scores, handle, indent=2, sort_keys=True)
        print(f"contract scores written to {args.json}")
    return 0


def _cmd_spor(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.persist import run_spor_campaign

    campaign = get_campaign("spor" if args.faults == "none" else args.faults)
    spor_at = args.spor_at
    if spor_at is None:
        spor_at = campaign.spor_at_us
    if spor_at is None:
        raise SystemExit(
            f"campaign {campaign.name!r} has no SPOR instant; pass --spor-at"
        )
    campaign = dataclasses.replace(campaign, spor_at_us=spor_at)
    config = _config(args)
    config = config.with_faults(campaign)
    report = run_spor_campaign(
        config,
        args.workload,
        ftl=args.ftl,
        queue_depth=args.queue_depth,
        prefill=args.prefill,
        n_requests=args.requests,
        seed=args.seed,
        check=args.check or "on",
    )
    print(
        f"SPOR at {report.spor_at_us:.0f} us: "
        f"{report.completed_before}/{report.issued_before} issued requests "
        f"acked before the cut; lost window {report.lost_writes} write(s), "
        f"{report.dropped_reads} read(s) dropped"
    )
    recovery = report.recovery
    print(
        f"recovery: {recovery['mapped_lpns']} LPNs rebuilt from "
        f"{recovery['oob_records']} OOB records, "
        f"{recovery['full_blocks']} block(s) sealed FULL, "
        f"max seq {recovery['max_seq']}"
    )
    oracle = report.check["oracle"]
    verdict = "CLEAN" if report.clean else "VIOLATIONS"
    print(
        f"verification: {verdict}; "
        f"{oracle['reads_verified'] + oracle['buffer_reads_verified']} reads "
        f"verified post-recovery, {report.check['violations']} violation(s), "
        f"mapper audit {'clean' if report.audit is None else report.audit}"
    )
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"SPOR report written to {args.json}")
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(args.log_level)
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "tenants":
        return _cmd_tenants(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "contract":
        return _cmd_contract(args)
    if args.command == "spor":
        return _cmd_spor(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
