"""SSD controller and the trace-driven simulation front end.

:class:`SSDController` instantiates the hardware: one
:class:`~repro.nand.chip.NandChip` per die, one FIFO resource per die and
per channel, all sharing a single device model (reliability surface, ISPP
engine, retry model, ECC) so that every FTL sees the *same* silicon.

:class:`SSDSimulation` wires a controller to an FTL, optionally prefills
the drive (untimed), and replays traces closed-loop at a configurable
queue depth, producing :class:`~repro.ssd.stats.SimulationStats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.injector import FaultInjector
from repro.nand.chip import NandChip
from repro.nand.ecc import EccEngine
from repro.nand.errors import ProgramFailError
from repro.nand.ispp import IsppEngine
from repro.nand.read_retry import ReadRetryModel
from repro.nand.reliability import ReliabilityModel
from repro.obs.log import get_logger, log_event
from repro.sim.engine import Engine
from repro.sim.resources import FifoResource
from repro.ssd.config import SSDConfig
from repro.ssd.stats import SimulationStats
from repro.workloads.base import IORequest, Trace

logger = get_logger(__name__)


class SimulationStalledError(RuntimeError):
    """The event queue drained while host requests were still pending."""


#: pending requests listed in a stall message before eliding the rest
_STALL_DETAIL_LIMIT = 8


def _stall_message(completed: int, pending: Dict[int, IORequest]) -> str:
    """Describe a stalled run: how many host requests never completed,
    and which (kind, LPN, length) they were -- the starting point of any
    deadlock diagnosis."""
    requests = sorted(pending.values(), key=lambda r: (r.lpn, r.n_pages))
    details = ", ".join(
        f"{'read' if request.is_read else 'write'}"
        f"(lpn={request.lpn}, n_pages={request.n_pages})"
        for request in requests[:_STALL_DETAIL_LIMIT]
    )
    if len(requests) > _STALL_DETAIL_LIMIT:
        details += f", ... {len(requests) - _STALL_DETAIL_LIMIT} more"
    return (
        f"{len(pending)} host requests never completed "
        f"({completed} done): {details}"
    )


class SSDController:
    """The hardware side: chips, dies, channels, and the clock."""

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        self.engine = Engine()
        #: request-lifecycle tracer (:class:`repro.obs.Tracer`); installed
        #: by :class:`SSDSimulation` before the FTL is built, None when
        #: tracing is disabled
        self.tracer = None
        #: runtime invariant checker
        #: (:class:`repro.check.InvariantChecker`); installed by
        #: :class:`SSDSimulation` before the FTL is built, None when
        #: checking is disabled
        self.checker = None
        geometry = config.geometry
        self.reliability = ReliabilityModel(geometry.block, seed=config.seed)
        self.ispp = IsppEngine(config.timing)
        self.retry_model = ReadRetryModel(self.reliability)
        self.ecc = EccEngine()
        # one injector shared by all chips and the FTL; None on
        # fault-free runs so no recovery path can activate
        self.faults: Optional[FaultInjector] = (
            FaultInjector(config.faults) if config.faults is not None else None
        )
        self.chips: List[NandChip] = []
        for chip_id in range(geometry.n_chips):
            chip = NandChip(
                chip_id=chip_id,
                n_blocks=geometry.blocks_per_chip,
                geometry=geometry.block,
                reliability=self.reliability,
                timing=config.timing,
                ispp=self.ispp,
                retry_model=self.retry_model,
                ecc=self.ecc,
                env_shift_prob=config.env_shift_prob,
                store_tags=config.store_tags,
                fault_injector=self.faults,
                store_oob=config.store_oob,
            )
            chip.set_baseline_aging(config.aging)
            self.chips.append(chip)
        self._chip_resources = [
            FifoResource(self.engine, name=f"chip{chip_id}")
            for chip_id in range(geometry.n_chips)
        ]
        self._bus_resources = [
            FifoResource(self.engine, name=f"bus{channel}")
            for channel in range(geometry.n_channels)
        ]

    @property
    def now(self) -> float:
        return self.engine.now

    def chip(self, chip_id: int) -> NandChip:
        return self.chips[chip_id]

    def chip_resource(self, chip_id: int) -> FifoResource:
        return self._chip_resources[chip_id]

    def bus_resource(self, chip_id: int) -> FifoResource:
        """The channel resource a chip is attached to."""
        channel = self.config.geometry.channel_of_chip(chip_id)
        return self._bus_resources[channel]


class SSDSimulation:
    """Front end: build an SSD, prefill it, replay traces."""

    def __init__(
        self,
        config: SSDConfig,
        ftl: str = "page",
        *,
        tracer=None,
        telemetry=None,
        profiler=None,
        checker=None,
        **ftl_kwargs,
    ) -> None:
        # local import: repro.ftl imports repro.ssd.config, so importing
        # it at module scope would be circular
        from repro.ftl import make_ftl

        self.config = config
        self.controller = SSDController(config)
        # must be installed before the FTL is built: BaseFTL snapshots
        # controller.tracer and controller.checker at construction time
        self.controller.tracer = tracer
        self.controller.checker = checker
        self.ftl = make_ftl(ftl, config, self.controller, **ftl_kwargs)
        #: optional :class:`~repro.obs.registry.TelemetryRegistry`; its
        #: hooks only record, so simulated results are unchanged by it
        self.telemetry = telemetry
        if telemetry is not None:
            from repro.obs.device import attach_device_telemetry

            attach_device_telemetry(telemetry, self.controller, self.ftl)
        #: optional :class:`~repro.obs.profile.WallClockProfiler`; wraps
        #: the checker's hooks too, so it must attach before the checker
        #: hands its (then-wrapped) methods to the engine/block manager
        self.profiler = profiler
        if profiler is not None:
            from repro.obs.profile import attach_profiler

            attach_profiler(
                profiler,
                self.controller,
                tracer,
                checker=checker,
                telemetry=telemetry,
                ftl=self.ftl,
            )
        #: optional :class:`~repro.check.InvariantChecker`; attached
        #: after the FTL exists so it can bind the engine monitor, the
        #: block-lifecycle observer, and the telemetry instruments
        self.checker = checker
        if checker is not None:
            checker.attach(self)
        #: optional :class:`~repro.obs.timeseries.TimeSeriesRecorder`;
        #: the replay loop starts/stops it alongside the metrics sampler
        self.timeseries = None
        #: optional ``hook(completed, total, now_us)`` the replay loop
        #: calls per completion (live progress; never schedules events)
        self.progress = None

    # ------------------------------------------------------------------

    def prefill(self, fraction: float = 0.7) -> int:
        """Untimed sequential fill of the logical space.

        Programs real WLs through the FTL's own allocation policy (so the
        post-prefill cursor state is consistent) but without consuming
        simulated time.  Returns the number of pages written.

        Prefill runs **fault-free** even under a fault campaign: it
        models data that is already on the drive, not simulated activity,
        and injecting program failures into it would erode the
        over-provisioned space before the measured run starts.  Faults
        apply to the timed run only.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        ftl = self.ftl
        suspended = self.controller.faults
        if suspended is not None:
            for chip in self.controller.chips:
                chip.faults = None
        try:
            n_pages = self._prefill_locked(fraction)
            if self.checker is not None:
                self.checker.on_prefill(n_pages)
            return n_pages
        finally:
            if suspended is not None:
                for chip in self.controller.chips:
                    chip.faults = suspended

    def _prefill_locked(self, fraction: float) -> int:
        ftl = self.ftl
        geometry = self.config.geometry
        pages_per_wl = geometry.block.pages_per_wl
        n_pages = int(self.config.logical_pages * fraction)
        lpn = 0
        chip_rr = 0
        while lpn < n_pages:
            group = list(range(lpn, min(lpn + pages_per_wl, n_pages)))
            chip_id = chip_rr % geometry.n_chips
            chip_rr += 1
            ftl._ensure_active_blocks(chip_id)
            allocation = ftl.allocate_wl(chip_id)
            params, squeeze_mv = ftl.program_params(chip_id, allocation)
            data = group + [None] * (pages_per_wl - len(group))
            oob = None
            if self.config.store_oob:
                # prefilled LPN i carries sequence i+1 (stable across a
                # program-fail retry of the same group); the FTL's write
                # sequence resumes above the prefilled range
                oob = [(page_lpn, page_lpn + 1) for page_lpn in group]
                oob += [None] * (pages_per_wl - len(oob))
            try:
                result = self.controller.chip(chip_id).program_wl(
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                    params=params,
                    data=data,
                    oob=oob,
                )
            except ProgramFailError:
                # the group never landed: pull the block out of service
                # and retry the same LPNs on the next chip in the round
                ftl.recovery.program_fails += 1
                ftl.note_program_fail(chip_id, allocation.block)
                continue
            ok = ftl.after_program(chip_id, allocation, result, squeeze_mv)
            if ok:
                base_ppn = geometry.wl_ppn(
                    chip_id,
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                )
                for page_index, page_lpn in enumerate(group):
                    ftl.mapper.bind(page_lpn, base_ppn + page_index)
                lpn = group[-1] + 1
            ftl._maybe_mark_full(chip_id, allocation.block)
        # demand-paged FTLs persist translation metadata for the
        # prefilled range (untimed, still inside the fault-free window)
        ftl.after_prefill(n_pages)
        # prefill must not distort run statistics
        from repro.faults.counters import RecoveryCounters
        from repro.ftl.base import FTLCounters

        ftl.counters = FTLCounters()
        ftl.recovery = RecoveryCounters()
        if self.config.store_oob:
            # host writes must order strictly after every prefilled page
            ftl._write_seq = max(ftl._write_seq, n_pages)
        return n_pages

    # ------------------------------------------------------------------

    @staticmethod
    def _log_stall(completed: int, pending: Dict[int, IORequest]) -> None:
        """Structured diagnostic mirroring the stall exception, so log
        scrapers see the deadlock even when the caller swallows it."""
        sample = sorted(
            pending.values(), key=lambda r: (r.lpn, r.n_pages)
        )[:_STALL_DETAIL_LIMIT]
        log_event(
            logger,
            "error",
            "stall",
            completed=completed,
            pending=len(pending),
            first_pending=";".join(
                f"{'read' if request.is_read else 'write'}"
                f"@lpn{request.lpn}x{request.n_pages}"
                for request in sample
            ),
        )

    def _make_sampler(self, interval_us: Optional[float], completed_fn):
        if interval_us is None:
            return None
        from repro.obs.metrics import MetricsSampler

        return MetricsSampler(self.ftl, interval_us, completed_fn=completed_fn)

    def run(
        self,
        trace: Trace,
        queue_depth: int = 32,
        warmup_requests: int = 0,
        max_events: Optional[int] = None,
        metrics_interval_us: Optional[float] = None,
    ) -> SimulationStats:
        """Replay a trace closed-loop and collect statistics.

        Thin wrapper over :func:`repro.ssd.host.replay_closed`; see
        :mod:`repro.ssd.host` for the full host-model catalogue
        (closed loop, NCQ, unbounded open loop).
        """
        from repro.ssd.host import replay

        return replay(
            self,
            trace,
            mode="closed",
            queue_depth=queue_depth,
            warmup_requests=warmup_requests,
            max_events=max_events,
            metrics_interval_us=metrics_interval_us,
        )

    def run_in_segments(
        self,
        trace: Trace,
        queue_depth: int = 32,
        warmup_requests: int = 0,
        segment_requests: int = 0,
        on_barrier=None,
        resume_accounting: Optional[dict] = None,
    ) -> SimulationStats:
        """Closed-loop replay in quiescent segments (checkpoint support).

        The trace is consumed ``segment_requests`` host requests at a
        time; each segment runs to full event-queue drain before the next
        begins, so between segments the entire stack -- engine, FTL,
        buffer, resources -- is quiescent.  That drained instant is the
        barrier at which :mod:`repro.persist` serializes state:
        ``on_barrier(accounting)`` fires after every drained segment
        except the final one, with ``accounting`` carrying the completed
        count, measurement window, and latency samples a resumed run
        needs to continue seamlessly.

        ``resume_accounting`` (loaded from a checkpoint) pre-seeds that
        bookkeeping; the first ``accounting["completed"]`` requests of
        ``trace`` are skipped because they completed before the
        checkpoint was taken.

        Note the drain barrier itself shapes scheduling: the next segment
        only starts issuing once the previous one fully drained, unlike
        :meth:`run` where the window slides continuously.  Checkpointed
        runs are therefore compared against checkpointed runs (resume
        equivalence), never against un-segmented ones.
        """
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if not 0 <= warmup_requests < len(trace):
            raise ValueError("warmup_requests must be < len(trace)")
        if trace.logical_pages > self.config.logical_pages:
            raise ValueError("trace logical space exceeds the SSD's")
        if segment_requests < 1:
            raise ValueError("segment_requests must be >= 1")
        engine = self.controller.engine
        stats = SimulationStats(ftl_name=self.ftl.name, workload=trace.name)
        requests = list(trace.requests)
        n_requests = len(requests)
        state = {"outstanding": 0, "completed": 0, "measure_start": None}
        start_us = engine.now
        if resume_accounting is not None:
            state["completed"] = resume_accounting["completed"]
            state["measure_start"] = resume_accounting["measure_start"]
            start_us = resume_accounting["start_us"]
            stats.read_latency.extend(resume_accounting["read_latency"])
            stats.write_latency.extend(resume_accounting["write_latency"])
        pending: Dict[int, IORequest] = {}
        holder = {"iterator": iter(())}

        def on_complete(active, now_us: float) -> None:
            pending.pop(id(active.spec), None)
            state["outstanding"] -= 1
            state["completed"] += 1
            if state["completed"] == warmup_requests:
                state["measure_start"] = now_us
            elif state["completed"] > warmup_requests:
                latency = now_us - active.issued_us
                if active.spec.is_read:
                    stats.read_latency.add(latency)
                else:
                    stats.write_latency.add(latency)
            issue_next()

        def issue_next() -> None:
            request = next(holder["iterator"], None)
            if request is None:
                return
            state["outstanding"] += 1
            pending[id(request)] = request
            self.ftl.submit(request, on_complete)

        if warmup_requests == 0 and state["measure_start"] is None:
            state["measure_start"] = start_us
        position = state["completed"]
        while position < n_requests:
            end = min(position + segment_requests, n_requests)
            holder["iterator"] = iter(requests[position:end])
            for _ in range(queue_depth):
                issue_next()
            engine.run(profiler=self.profiler)
            if state["outstanding"] > 0:
                self._log_stall(state["completed"], pending)
                raise SimulationStalledError(
                    _stall_message(state["completed"], pending)
                )
            position = end
            if on_barrier is not None and position < n_requests:
                on_barrier(
                    {
                        "completed": state["completed"],
                        "measure_start": state["measure_start"],
                        "start_us": start_us,
                        "read_latency": stats.read_latency.sample_list(),
                        "write_latency": stats.write_latency.sample_list(),
                    }
                )
        measure_start = state["measure_start"]
        if measure_start is None:
            measure_start = start_us
        stats.duration_us = engine.now - measure_start
        stats.completed_requests = state["completed"] - warmup_requests
        stats.counters = self.ftl.counters
        stats.recovery = self.ftl.recovery
        return stats

    def run_open_loop(
        self,
        trace: Trace,
        max_events: Optional[int] = None,
        metrics_interval_us: Optional[float] = None,
    ) -> SimulationStats:
        """Replay a trace open-loop with an infinite queue: requests
        issue at their arrival times regardless of completions.

        Every request must carry ``arrival_us`` (see
        :func:`repro.workloads.base.with_arrivals`).  Thin wrapper over
        :func:`repro.ssd.host.replay_unbounded`; for arrival-driven
        replay through a *bounded* queue (backpressure), use the NCQ
        mode of :func:`repro.ssd.host.replay`.
        """
        from repro.ssd.host import replay

        return replay(
            self,
            trace,
            mode="unbounded",
            max_events=max_events,
            metrics_interval_us=metrics_interval_us,
        )
