"""Merging per-shard telemetry snapshots into one combined snapshot.

Each shard runs with its own :class:`~repro.obs.registry.TelemetryRegistry`
and returns the registry's :meth:`snapshot` dict.  :func:`merge_snapshots`
folds those dicts into one snapshot with the same shape, so downstream
consumers (JSON dumps, dashboards, tests) need not care whether a run
was sharded.

Merge semantics per instrument kind:

- **counter** -- series values sum; totals across shards add up exactly.
- **histogram** -- ``count``, ``sum`` and every bucket count sum, which
  is the exact distribution of the union of observations (bucket edges
  must match across shards; mismatched edges are schema drift and raise).
- **gauge** -- series values **sum**.  That is exact for gauges that are
  really per-shard totals exported through collectors (the
  ``ftl_counter`` / ``ftl_recovery`` bridges, busy time), which is what
  the simulator's registries predominantly hold.  For ratio-style gauges
  (``buffer_utilization``, ``ort_hit_rate``) a cross-shard sum has no
  physical meaning -- consume those from the per-shard snapshots, which
  :func:`~repro.api.run_many` keeps alongside the merged view.

Determinism: instruments and series stay sorted exactly as
:meth:`TelemetryRegistry.snapshot` emits them, and merging is order-
insensitive (addition commutes), so the merged snapshot is identical for
any shard completion order.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence


def _series_key(row: dict) -> str:
    """Stable identity of one series row: its label set (sorted)."""
    labels = row.get("labels") or {}
    return json.dumps(labels, sort_keys=True)


def _merge_rows(kind: str, name: str, into: dict, row: dict) -> None:
    if kind in ("counter", "gauge"):
        into["value"] = into.get("value", 0.0) + row.get("value", 0.0)
        return
    if kind == "histogram":
        into["count"] = into.get("count", 0) + row.get("count", 0)
        into["sum"] = into.get("sum", 0.0) + row.get("sum", 0.0)
        buckets, incoming = into.setdefault("buckets", {}), row.get("buckets", {})
        if buckets and list(buckets) != list(incoming):
            raise ValueError(
                f"histogram {name!r} has mismatched bucket edges across "
                f"shards ({list(buckets)} vs {list(incoming)})"
            )
        for edge, count in incoming.items():
            buckets[edge] = buckets.get(edge, 0) + count
        return
    raise ValueError(f"instrument {name!r} has unknown kind {kind!r}")


def merge_snapshots(snapshots: Sequence[Optional[dict]]) -> dict:
    """Fold per-shard registry snapshots into one combined snapshot.

    ``None`` entries (shards run without telemetry, or failed shards)
    are skipped.  Instruments appearing in only some shards merge fine;
    the same name appearing with different kinds across shards raises.
    """
    merged_meta: Dict[str, dict] = {}
    merged_series: Dict[str, Dict[str, dict]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, instrument in snapshot.items():
            kind = instrument.get("kind", "?")
            meta = merged_meta.get(name)
            if meta is None:
                merged_meta[name] = {
                    "kind": kind,
                    "help": instrument.get("help", ""),
                    "unit": instrument.get("unit", ""),
                    "labelnames": list(instrument.get("labelnames", [])),
                }
                merged_series[name] = {}
            elif meta["kind"] != kind:
                raise ValueError(
                    f"instrument {name!r} is a {meta['kind']} in one shard "
                    f"and a {kind} in another"
                )
            rows = merged_series[name]
            for row in instrument.get("series", []):
                key = _series_key(row)
                into = rows.get(key)
                if into is None:
                    into = rows[key] = (
                        {"labels": dict(row["labels"])} if "labels" in row else {}
                    )
                _merge_rows(kind, name, into, row)
    result = {}
    for name in sorted(merged_meta):
        meta = dict(merged_meta[name])
        rows = merged_series[name]
        meta["series"] = [rows[key] for key in sorted(rows)]
        result[name] = meta
    return result
