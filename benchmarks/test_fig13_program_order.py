"""Fig. 13 -- normalized BER over different program sequences.

Regenerates the reliability comparison of horizontal-first,
vertical-first, and mixed-order programming of whole blocks.

Paper result: the three sequences are virtually equivalent (maximum
difference below 3 %, attributable to RTN), because SL transistors
isolate the WLs of an h-layer.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.characterization import experiments as exp


def regenerate():
    data = exp.fig13_program_order_ber()
    rows = [
        [name, round(stats["normalized_mean_ber"], 4),
         f"{100 * stats['max_wl_deviation']:.2f} %"]
        for name, stats in data.items()
    ]
    text = "Fig 13 -- normalized BER per program sequence:\n" + format_table(
        ["sequence", "mean BER (norm.)", "max per-WL deviation"], rows
    )
    return text, data


def test_fig13_program_orders_equivalent(benchmark):
    text, data = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("fig13_program_order", text)
    assert set(data) == {"horizontal-first", "vertical-first", "mixed"}
    for stats in data.values():
        assert abs(stats["normalized_mean_ber"] - 1.0) < 0.03
        assert stats["max_wl_deviation"] < 0.03
