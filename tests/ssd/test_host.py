"""Tests for the explicit host replay models (closed / NCQ / unbounded)."""

import pytest

from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.ssd.host import REPLAY_MODES, replay
from repro.workloads.base import with_arrivals
from repro.workloads.synthetic import uniform_random_trace


def _stamped(config, n_requests, *, rate_iops, seed=3, burstiness=1.0):
    trace = uniform_random_trace(
        config.logical_pages, n_requests, read_fraction=0.0, seed=seed
    )
    return with_arrivals(
        trace, rate_iops=rate_iops, burstiness=burstiness, seed=seed + 1
    )


class TestReplayValidation:
    def test_unknown_mode_rejected(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = uniform_random_trace(config.logical_pages, 5, seed=1)
        with pytest.raises(ValueError, match="mode"):
            replay(sim, trace, mode="half-open")

    def test_modes_constant_is_exhaustive(self):
        assert REPLAY_MODES == ("closed", "ncq", "unbounded")

    def test_ncq_requires_arrivals(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = uniform_random_trace(config.logical_pages, 5, seed=1)
        with pytest.raises(ValueError, match="arrival"):
            replay(sim, trace, mode="ncq")

    def test_bad_queue_depth_rejected(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 5, rate_iops=1000)
        with pytest.raises(ValueError, match="queue_depth"):
            replay(sim, trace, mode="ncq", queue_depth=0)

    def test_warmup_must_leave_measured_requests(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 5, rate_iops=1000)
        with pytest.raises(ValueError, match="warmup"):
            replay(sim, trace, mode="ncq", warmup_requests=5)

    def test_oversized_trace_rejected(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = uniform_random_trace(config.logical_pages * 2, 5, seed=1)
        with pytest.raises(ValueError, match="logical space"):
            replay(sim, trace, mode="closed")


class TestNCQ:
    def test_completes_everything_under_backpressure(self):
        """A burst far beyond the queue depth still drains completely --
        arrivals finding the queue full wait and issue later."""
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 120, rate_iops=500_000)  # ~instant burst
        stats = replay(sim, trace, mode="ncq", queue_depth=4)
        assert stats.completed_requests == 120

    def test_queue_wait_counts_toward_latency(self):
        """Under a burst, depth 1 serializes the device: host-visible
        p90 must far exceed the depth-32 p90 because queue-full wait is
        part of NCQ latency."""
        config = SSDConfig.small()
        tails = {}
        for depth in (1, 32):
            sim = SSDSimulation(config, ftl="page")
            trace = _stamped(config, 150, rate_iops=200_000)
            stats = replay(sim, trace, mode="ncq", queue_depth=depth)
            tails[depth] = stats.write_latency.percentile(90)
        assert tails[1] > 2 * tails[32]

    def test_depth_one_is_fifo(self):
        """With one slot the device never sees request N+1 before N
        completed, so completion count equals trace length and the
        measured duration is at least the sum of bare service times'
        lower bound (no overlap)."""
        config = SSDConfig.small()
        sim_deep = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 80, rate_iops=300_000, seed=9)
        deep = replay(sim_deep, trace, mode="ncq", queue_depth=32)
        sim_one = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 80, rate_iops=300_000, seed=9)
        one = replay(sim_one, trace, mode="ncq", queue_depth=1)
        assert one.completed_requests == deep.completed_requests == 80
        # serialized replay cannot finish faster than the parallel one
        assert one.duration_us > deep.duration_us

    def test_huge_depth_matches_unbounded(self):
        """With queue depth >= trace length no arrival ever waits, so
        NCQ reduces exactly to the unbounded open loop (latency is
        measured from arrival in both)."""
        config = SSDConfig.small()
        sim_ncq = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 60, rate_iops=20_000, seed=5)
        ncq = replay(sim_ncq, trace, mode="ncq", queue_depth=60)
        sim_open = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 60, rate_iops=20_000, seed=5)
        unbounded = replay(sim_open, trace, mode="unbounded")
        assert ncq.completed_requests == unbounded.completed_requests
        assert ncq.write_latency.mean_us == pytest.approx(
            unbounded.write_latency.mean_us
        )
        assert ncq.write_latency.percentile(99) == pytest.approx(
            unbounded.write_latency.percentile(99)
        )

    def test_warmup_excludes_early_completions(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 100, rate_iops=50_000)
        stats = replay(sim, trace, mode="ncq", queue_depth=8,
                       warmup_requests=40)
        assert stats.completed_requests == 60
        assert (
            len(stats.read_latency) + len(stats.write_latency) == 60
        )

    def test_light_load_latency_is_service_time(self):
        """At a trickle rate nothing queues: NCQ latency from arrival
        equals the bare service time, same as the closed loop at
        depth 1 would measure from issue."""
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = _stamped(config, 50, rate_iops=200)  # ~5 ms apart
        stats = replay(sim, trace, mode="ncq", queue_depth=8)
        assert stats.write_latency.percentile(50) < 1200


class TestClosedDelegation:
    def test_run_still_closed_loop(self):
        """SSDSimulation.run keeps its historical behavior through the
        host-module delegation."""
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = uniform_random_trace(config.logical_pages, 40, seed=2)
        stats = sim.run(trace, queue_depth=4)
        assert stats.completed_requests == 40

    def test_run_open_loop_still_unbounded(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        stats = sim.run_open_loop(_stamped(config, 30, rate_iops=10_000))
        assert stats.completed_requests == 30
