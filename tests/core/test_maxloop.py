"""Tests for S_M computation and the margin conversion table
(Section 4.1.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.maxloop import (
    DEFAULT_BER_EP1_MAX,
    DEFAULT_MARGIN_TABLE,
    MarginTable,
    margin_for_ber,
    spare_margin,
    vert_ftl_static_margin,
)
from repro.nand.ecc import EccEngine
from repro.nand.ispp import window_squeeze_ber_multiplier
from repro.nand.reliability import AgingState, ReliabilityModel


class TestSpareMargin:
    def test_zero_when_at_limit(self):
        assert spare_margin(DEFAULT_BER_EP1_MAX) == 0.0

    def test_clamped_when_over_limit(self):
        assert spare_margin(2 * DEFAULT_BER_EP1_MAX) == 0.0

    def test_healthy_layer_large_margin(self):
        assert spare_margin(DEFAULT_BER_EP1_MAX / 4) == pytest.approx(3.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            spare_margin(0.0)


class TestMarginTable:
    def test_paper_anchor_point(self):
        """Fig. 11(b): S_M = 1.7 grants a 320 mV total margin."""
        assert DEFAULT_MARGIN_TABLE.margin_mv(1.7) == pytest.approx(320.0)

    def test_clamps_below_and_above(self):
        assert DEFAULT_MARGIN_TABLE.margin_mv(-1.0) == 0.0
        assert DEFAULT_MARGIN_TABLE.margin_mv(100.0) == 420.0

    def test_interpolates_between_breakpoints(self):
        lo = DEFAULT_MARGIN_TABLE.margin_mv(1.2)
        hi = DEFAULT_MARGIN_TABLE.margin_mv(1.7)
        mid = DEFAULT_MARGIN_TABLE.margin_mv(1.45)
        assert lo < mid < hi

    def test_split_fractions(self):
        start, final = DEFAULT_MARGIN_TABLE.split(1.7)
        assert start + final == pytest.approx(320.0)
        assert start == pytest.approx(320.0 * DEFAULT_MARGIN_TABLE.start_fraction)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarginTable(points=((0.0, 0.0),))
        with pytest.raises(ValueError):
            MarginTable(points=((1.0, 0.0), (0.5, 10.0)))
        with pytest.raises(ValueError):
            MarginTable(points=((0.0, 0.0), (1.0, -5.0)))
        with pytest.raises(ValueError):
            MarginTable(points=((0.0, 0.0), (1.0, 5.0)), start_fraction=1.5)

    @given(s_m=st.floats(min_value=0.0, max_value=10.0))
    def test_monotone_property(self, s_m):
        """More spare margin never grants a smaller adjustment."""
        assert DEFAULT_MARGIN_TABLE.margin_mv(s_m + 0.5) >= (
            DEFAULT_MARGIN_TABLE.margin_mv(s_m)
        )


class TestTightButSafe:
    def test_margin_safe_across_full_grid(self):
        """The central safety property of Section 4.1.2: applying the
        granted margin keeps every (layer, aging, block) point within the
        ECC correction capability."""
        reliability = ReliabilityModel()
        ecc = EccEngine()
        agings = [
            AgingState(0, 0),
            AgingState(500, 3.0),
            AgingState(1000, 6.0),
            AgingState(2000, 1.0),
            AgingState(2000, 12.0),
        ]
        for aging in agings:
            for block in range(6):
                for layer in range(0, 48, 3):
                    ber_ep1 = reliability.ber_ep1(0, block, layer, 0, aging)
                    margin = margin_for_ber(ber_ep1)
                    final_ber = reliability.wl_ber(
                        0, block, layer, 0, aging
                    ) * window_squeeze_ber_multiplier(margin)
                    assert final_ber <= ecc.ber_limit, (
                        f"unsafe at layer {layer}, aging {aging}"
                    )

    def test_margin_shrinks_with_aging(self):
        reliability = ReliabilityModel()
        fresh = margin_for_ber(reliability.ber_ep1(0, 0, 20, 0, AgingState(0, 0)))
        aged = margin_for_ber(
            reliability.ber_ep1(0, 0, 20, 0, AgingState(2000, 12.0))
        )
        assert aged < fresh

    def test_worst_layer_gets_less_margin_than_best(self):
        reliability = ReliabilityModel()
        aging = AgingState(2000, 6.0)
        best = margin_for_ber(
            reliability.ber_ep1(0, 0, reliability.layer_beta, 0, aging)
        )
        worst = margin_for_ber(
            reliability.ber_ep1(0, 0, reliability.layer_kappa, 0, aging)
        )
        assert worst < best


class TestVertFTLMargin:
    def test_default_is_paper_value(self):
        """The prior-work baseline gets ~130 mV (one ISPP step)."""
        assert vert_ftl_static_margin() == pytest.approx(130.0)

    def test_average_of_points(self):
        assert vert_ftl_static_margin([(0, 100.0), (1, 200.0)]) == 150.0
