"""Unit and integration tests of the runtime invariant checker.

The core acceptance case lives here: an intentionally injected mapping
corruption must be caught and reported with the offending LPN / PPN /
block and the engine timestamp.
"""

from dataclasses import replace

import pytest

from repro.check import (
    CheckConfig,
    InvariantChecker,
    InvariantViolation,
    parse_check_level,
)
from repro.ftl.blockmgr import BlockState
from repro.obs.registry import TelemetryRegistry
from repro.obs.trace import InMemorySink, Tracer
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads import make_workload
from repro.workloads.base import IORequest, Trace


def _checked_sim(ftl="cube", *, tracer=None, telemetry=None, config=None,
                 level="strict"):
    cfg = config or replace(
        SSDConfig.small(logical_fraction=0.4), store_tags=True
    )
    checker = InvariantChecker(
        CheckConfig.strict() if level == "strict" else CheckConfig()
    )
    sim = SSDSimulation(
        cfg, ftl=ftl, checker=checker, tracer=tracer, telemetry=telemetry
    )
    return sim, checker


def _run_some(sim, n_requests=150, seed=11):
    sim.prefill(0.4)
    trace = make_workload(
        "OLTP", sim.config.logical_pages, n_requests, seed=seed
    )
    sim.run(trace, queue_depth=8)


class TestCheckConfig:
    def test_parse_levels(self):
        assert parse_check_level(None) is None
        assert parse_check_level(False) is None
        assert parse_check_level("off") is None
        assert parse_check_level(True).level == "on"
        assert parse_check_level("on").level == "on"
        strict = parse_check_level("strict")
        assert strict.level == "strict"
        assert strict.deep_every_completions > 0
        assert strict.deep_on_erase
        custom = CheckConfig(level="on", span_tail=3)
        assert parse_check_level(custom) is custom

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_check_level("paranoid")
        with pytest.raises(ValueError):
            CheckConfig(level="paranoid")

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            CheckConfig(deep_every_completions=-1)
        with pytest.raises(ValueError):
            CheckConfig(span_tail=-1)


class TestInjectedCorruption:
    """The acceptance case: deliberate corruption must be caught and
    located."""

    def test_duplicate_ppn_reports_lpn_ppn_block_and_time(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        mapper = sim.ftl.mapper
        mapped = [
            lpn for lpn in range(sim.config.logical_pages)
            if mapper.lookup(lpn) != -1
        ]
        assert len(mapped) >= 2
        victim, source = mapped[0], mapped[1]
        mapper._l2p[victim] = mapper._l2p[source]  # inject: two LPNs, one PPN
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        violation = caught.value
        assert violation.invariant == "mapping_bijection"
        assert violation.lpn is not None
        assert violation.ppn is not None
        assert violation.block is not None
        assert violation.chip is not None
        assert violation.time_us is not None and violation.time_us > 0
        message = str(violation)
        assert "lpn=" in message and "ppn=" in message and "block=" in message
        assert "t=" in message

    def test_valid_count_drift_is_caught(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        sim.ftl.mapper._valid_count[0, 0] += 1
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        assert caught.value.invariant == "mapping_bijection"
        assert caught.value.chip == 0 and caught.value.block == 0

    def test_orphaned_valid_page_is_caught(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        mapper = sim.ftl.mapper
        mapped = [
            lpn for lpn in range(sim.config.logical_pages)
            if mapper.lookup(lpn) != -1
        ]
        # drop the L2P side only: the valid physical page becomes an orphan
        mapper._l2p[mapped[0]] = -1
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        assert caught.value.invariant == "mapping_bijection"

    def test_write_buffer_version_drift_is_caught(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        sim.ftl.buffer._versions[999_999] = 5  # stale entry: bounded-table leak
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        assert caught.value.invariant == "write_buffer_versions"

    def test_free_pool_accounting_drift_is_caught(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        blocks = sim.ftl.blocks
        free_block = next(iter(blocks._free[0]))
        blocks._state[0][free_block] = BlockState.FULL  # state/pool split
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        assert caught.value.invariant == "free_pool_accounting"


class TestBlockLifecycle:
    def test_illegal_transition_is_flagged(self):
        sim, checker = _checked_sim(ftl="page")
        blocks = sim.ftl.blocks
        block = blocks.take_free(0)  # FREE -> ACTIVE: legal
        with pytest.raises(InvariantViolation) as caught:
            blocks.mark_free(0, block)  # ACTIVE -> FREE: never legal
        violation = caught.value
        assert violation.invariant == "block_lifecycle"
        assert violation.chip == 0 and violation.block == block

    def test_retirement_is_terminal(self):
        sim, checker = _checked_sim(ftl="page")
        blocks = sim.ftl.blocks
        free_block = next(iter(blocks._free[0]))
        blocks.retire(0, free_block, reason="wear")  # FREE -> RETIRED: legal
        with pytest.raises(InvariantViolation) as caught:
            checker.on_block_transition(
                0, free_block, BlockState.RETIRED, BlockState.ACTIVE
            )
        assert caught.value.invariant == "block_lifecycle"
        assert "terminal" in caught.value.message

    def test_normal_run_has_legal_lifecycle_only(self):
        sim, checker = _checked_sim()
        _run_some(sim, n_requests=250)
        assert checker.violations == 0


class TestClockMonotonicity:
    def test_backwards_clock_is_flagged(self):
        sim, checker = _checked_sim()
        checker._on_engine_event(10.0)
        with pytest.raises(InvariantViolation) as caught:
            checker._on_engine_event(9.0)
        violation = caught.value
        assert violation.invariant == "clock_monotonicity"
        assert violation.details["previous_us"] == 10.0

    def test_equal_times_are_legal(self):
        sim, checker = _checked_sim()
        checker._on_engine_event(10.0)
        checker._on_engine_event(10.0)
        assert checker.violations == 0


class TestReporting:
    def test_violation_exported_as_telemetry_counter(self):
        registry = TelemetryRegistry()
        sim, checker = _checked_sim(telemetry=registry)
        _run_some(sim)
        assert "check_violations_total" in registry
        sim.ftl.buffer._versions[999_999] = 1
        with pytest.raises(InvariantViolation):
            checker.check_now()
        snapshot = registry.snapshot()
        series = snapshot["check_violations_total"]["series"]
        assert series == [
            {"labels": {"invariant": "write_buffer_versions"}, "value": 1}
        ]
        assert snapshot["check_deep_scans"]["series"][0]["value"] >= 1

    def test_recent_spans_attached_when_tracing(self):
        tracer = Tracer(InMemorySink())
        sim, checker = _checked_sim(tracer=tracer)
        _run_some(sim)
        sim.ftl.buffer._versions[999_999] = 1
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        violation = caught.value
        assert violation.recent_spans
        assert len(violation.recent_spans) <= checker.config.span_tail
        assert "stage" in violation.recent_spans[0]
        assert "trace spans" in str(violation)

    def test_context_embedded_in_message(self):
        sim, checker = _checked_sim()
        checker.context.update(seed=11, ftl="cube")
        _run_some(sim)
        sim.ftl.buffer._versions[999_999] = 1
        with pytest.raises(InvariantViolation) as caught:
            checker.check_now()
        assert "seed=11" in str(caught.value)
        assert caught.value.context["ftl"] == "cube"

    def test_to_dict_is_json_safe(self):
        import json

        violation = InvariantViolation(
            "mapping_bijection", "boom", lpn=1, ppn=2, chip=0, block=3,
            time_us=42.5, context={"seed": 7}, details={"other_lpn": 9},
        )
        rendered = json.loads(json.dumps(violation.to_dict()))
        assert rendered["invariant"] == "mapping_bijection"
        assert rendered["lpn"] == 1 and rendered["time_us"] == 42.5


class TestOracleEndToEnd:
    def test_flipped_flash_tag_is_caught_on_read(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        mapper = sim.ftl.mapper
        geometry = sim.ftl.geometry
        lpn = next(
            lpn for lpn in range(sim.config.logical_pages)
            if mapper.lookup(lpn) != -1 and not sim.ftl.buffer.contains(lpn)
        )
        chip_id, address = geometry.ppn_to_address(mapper.lookup(lpn))
        chip = sim.controller.chips[chip_id]
        wl_index = chip.geometry.wl_index(address.layer, address.wl)
        chip._tags[(address.block, wl_index, address.page)] = "corrupted"
        reads = Trace(
            "readback", sim.config.logical_pages, [IORequest("R", lpn)]
        )
        with pytest.raises(InvariantViolation) as caught:
            sim.run(reads, queue_depth=1)
        violation = caught.value
        assert violation.invariant == "data_integrity"
        assert violation.lpn == lpn
        assert violation.ppn is not None

    def test_lost_mapping_is_caught_on_read(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        mapper = sim.ftl.mapper
        lpn = next(
            lpn for lpn in range(sim.config.logical_pages)
            if mapper.lookup(lpn) != -1 and not sim.ftl.buffer.contains(lpn)
        )
        mapper.invalidate_lpn(lpn)  # the FTL "forgets" written data
        reads = Trace(
            "readback", sim.config.logical_pages, [IORequest("R", lpn)]
        )
        with pytest.raises(InvariantViolation) as caught:
            sim.run(reads, queue_depth=1)
        assert caught.value.invariant == "data_integrity"
        assert "mapping lost" in caught.value.message


class TestDigest:
    def test_state_digest_is_deterministic(self):
        digests = []
        for _ in range(2):
            sim, checker = _checked_sim()
            _run_some(sim)
            digests.append(checker.state_digest())
        assert digests[0] == digests[1]

    def test_state_digest_tracks_content(self):
        sim, checker = _checked_sim()
        _run_some(sim, seed=11)
        other, other_checker = _checked_sim()
        _run_some(other, seed=12)
        assert checker.state_digest() != other_checker.state_digest()

    def test_logical_view_matches_shadow(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        view = checker.logical_view()
        for lpn, tag in checker.oracle.shadow.items():
            assert view[lpn] == tag, f"LPN {lpn}: view {view[lpn]} != {tag}"

    def test_finalize_reports_clean_run(self):
        sim, checker = _checked_sim()
        _run_some(sim)
        report = checker.finalize()
        assert report["violations"] == 0
        assert report["completions"] == 150
        assert report["deep_scans"] >= 1
        assert report["oracle"]["writes_recorded"] > 0
        assert len(report["state_digest"]) == 64
