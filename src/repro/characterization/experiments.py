"""Data generators for every characterization figure of the paper.

Each function regenerates the data behind one figure as plain
dictionaries/arrays; the matching benchmark prints the same rows or
series the paper plots and asserts the qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.characterization.harness import CharacterizationStudy
from repro.characterization.metrics import delta_h, delta_v
from repro.core.maxloop import DEFAULT_MARGIN_TABLE, MarginTable
from repro.core.ort import OptimalReadTable
from repro.core.program_order import ProgramOrder, program_sequence
from repro.core.vfy_skip import n_skip_per_state
from repro.nand.chip import NandChip
from repro.nand.ispp import (
    IsppEngine,
    ProgramParams,
    VerifyPlan,
    window_squeeze_ber_multiplier,
)
from repro.nand.read_retry import ReadParams
from repro.nand.reliability import AgingState, ReliabilityModel
from repro.nand.timing import NandTiming


def representative_layers(reliability: ReliabilityModel) -> Dict[str, int]:
    """The four named h-layers of Figs. 5/6: alpha (top edge), beta
    (best), kappa (worst interior), omega (bottom edge)."""
    return {
        "alpha": reliability.layer_alpha,
        "beta": reliability.layer_beta,
        "kappa": reliability.layer_kappa,
        "omega": reliability.layer_omega,
    }


# ----------------------------------------------------------------------
# Fig. 5 -- horizontal intra-layer similarity
# ----------------------------------------------------------------------

def fig5_intra_layer_ber(
    study: CharacterizationStudy,
    aging: AgingState,
    block_row: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Fig. 5(a)/(b): per-WL normalized BER on the four representative
    h-layers, plus each layer's Delta-H."""
    grid = study.measure(aging).astype(float)
    reliability = study.chips[0].reliability
    layers = representative_layers(reliability)
    block = grid[block_row]
    best = block.min()
    out: Dict[str, Dict[str, object]] = {}
    for name, layer in layers.items():
        errors = block[layer]
        out[name] = {
            "layer": layer,
            "normalized_ber": (errors / best).tolist(),
            "delta_h": delta_h(errors),
        }
    return out


def fig5c_delta_h_over_blocks(
    study: CharacterizationStudy,
    agings: Sequence[AgingState],
) -> Dict[Tuple[int, float], Dict[str, float]]:
    """Fig. 5(c): Delta-H statistics across all sampled blocks under
    varying P/E cycles and retention times."""
    out = {}
    for aging in agings:
        values = study.delta_h_values(aging)
        out[(aging.pe_cycles, aging.retention_months)] = {
            "mean": float(values.mean()),
            "max": float(values.max()),
            "p99": float(np.percentile(values, 99)),
        }
    return out


def fig5d_t_prog_per_wl(study: CharacterizationStudy, block_row: int = 0) -> np.ndarray:
    """Fig. 5(d): tPROG per WL -- identical within each h-layer."""
    return study.t_prog_per_wl(block_row)


# ----------------------------------------------------------------------
# Fig. 6 -- vertical inter-layer variability
# ----------------------------------------------------------------------

def fig6_inter_layer_ber(
    study: CharacterizationStudy,
    agings: Sequence[AgingState],
    block_row: int = 0,
) -> Dict[Tuple[int, float], Dict[str, object]]:
    """Fig. 6(a-c): leading-WL BER per h-layer under each aging state,
    normalized over the best layer of the fresh block, plus Delta-V."""
    fresh = study.measure(AgingState(0, 0)).astype(float)[block_row, :, 0]
    reference = fresh.min()
    out = {}
    for aging in agings:
        grid = study.measure(aging).astype(float)
        leading = grid[block_row, :, 0]
        out[(aging.pe_cycles, aging.retention_months)] = {
            "normalized_ber": (leading / reference).tolist(),
            "delta_v": delta_v(leading),
        }
    return out


def fig6d_per_block_delta_v(
    study: CharacterizationStudy, aging: AgingState
) -> Dict[str, object]:
    """Fig. 6(d): per-block Delta-V spread; the paper contrasts two
    sample blocks whose Delta-V differ by ~18 %."""
    grid = study.measure(aging).astype(float)
    leading = grid[:, :, 0]
    per_block = leading.max(axis=1) / leading.min(axis=1)
    lo, hi = per_block.argmin(), per_block.argmax()
    return {
        "delta_v_per_block": per_block.tolist(),
        "block_i": int(hi),
        "block_ii": int(lo),
        "delta_v_block_i": float(per_block[hi]),
        "delta_v_block_ii": float(per_block[lo]),
        "spread_ratio": float(per_block[hi] / per_block[lo]),
    }


# ----------------------------------------------------------------------
# Fig. 8 -- effect of skipped VFYs
# ----------------------------------------------------------------------

def fig8a_ber_vs_skips(
    timing: NandTiming = NandTiming(),
    max_extra_skips: int = 4,
) -> Dict[int, Dict[str, object]]:
    """Fig. 8(a): per-state BER penalty as verifies are skipped.

    For each program state Pi, skipping up to its safe count
    (``L_min - 1`` verifies) leaves BER unchanged; every further skip
    over-programs fast cells and multiplies the error rate.  Also
    reports the tPROG saved by the full safe-skip plan.
    """
    engine = IsppEngine(timing)
    profile = engine.wl_profile(0.0)
    default = engine.simulate(profile, ProgramParams.default(engine.n_states))
    safe_skips = n_skip_per_state(profile)
    out: Dict[int, Dict[str, object]] = {}
    for state in range(1, engine.n_states + 1):
        penalties = []
        safe = safe_skips[state - 1]
        for extra in range(max_extra_skips + 1):
            starts = [1] * engine.n_states
            starts[state - 1] = 1 + safe + extra
            params = ProgramParams(verify_plan=VerifyPlan(tuple(starts)))
            result = engine.simulate(profile, params)
            penalties.append(result.ber_penalty)
        out[state] = {
            "safe_skips": safe,
            "ber_penalty_by_extra_skip": penalties,
        }
    full_plan = engine.follower_params(profile, window_squeeze_mv=0)
    skipped = engine.simulate(profile, full_plan)
    out["t_prog_reduction"] = {
        "default_us": default.t_prog_us,
        "skipped_us": skipped.t_prog_us,
        "reduction_fraction": 1.0 - skipped.t_prog_us / default.t_prog_us,
        "total_safe_skips": sum(safe_skips),
    }
    return out


def fig8b_skip_distribution(
    reliability: ReliabilityModel = None,
    n_blocks: int = 16,
) -> Dict[int, Dict[str, object]]:
    """Fig. 8(b): distribution of N_skip per program state across
    h-layers/blocks (driven by the [L_min, L_max] intervals)."""
    reliability = reliability or ReliabilityModel()
    engine = IsppEngine()
    counts: Dict[int, List[int]] = {s: [] for s in range(1, engine.n_states + 1)}
    for block in range(n_blocks):
        for layer in range(reliability.geometry.n_layers):
            slowdown = reliability.program_slowdown(0, block, layer)
            profile = engine.wl_profile(slowdown)
            for state, skips in enumerate(n_skip_per_state(profile), start=1):
                counts[state].append(skips)
    return {
        state: {
            "mean": float(np.mean(values)),
            "min": int(np.min(values)),
            "max": int(np.max(values)),
        }
        for state, values in counts.items()
    }


# ----------------------------------------------------------------------
# Figs. 10/11 -- window adjustment margins
# ----------------------------------------------------------------------

def fig10_adjustment_margins(
    reliability: ReliabilityModel = None,
    aging: AgingState = AgingState(0, 0),
    ecc_ber_limit: float = 7.7e-3,
    block: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Fig. 10: how much (V_start, V_final) adjustment each representative
    h-layer can afford before its BER crosses the ECC limit."""
    reliability = reliability or ReliabilityModel()
    layers = representative_layers(reliability)
    out = {}
    for name, layer in layers.items():
        ber = reliability.layer_ber(0, block, layer, aging)
        # max squeeze x with ber * exp(x / tau) <= limit
        from repro.nand.ispp import WINDOW_SQUEEZE_TAU_MV

        max_margin = WINDOW_SQUEEZE_TAU_MV * np.log(ecc_ber_limit / ber)
        out[name] = {
            "layer": layer,
            "ber": ber,
            "max_safe_margin_mv": float(max(0.0, max_margin)),
        }
    return out


def fig10b_ber_vs_margin(
    margins_mv: Sequence[int] = (0, 80, 160, 240, 320, 400, 480),
) -> Dict[int, float]:
    """Fig. 10(b): BER growth as the window is tightened."""
    return {
        margin: window_squeeze_ber_multiplier(margin) for margin in margins_mv
    }


def fig11a_ber_ep1_correlation(
    reliability: ReliabilityModel = None,
    agings: Sequence[AgingState] = (
        AgingState(0, 0),
        AgingState(1000, 1.0),
        AgingState(2000, 1.0),
        AgingState(2000, 12.0),
    ),
    n_blocks: int = 8,
) -> Dict[str, object]:
    """Fig. 11(a): BER_EP1 tracks the retention BER (correlation), making
    it a valid online health predictor."""
    reliability = reliability or ReliabilityModel()
    ep1 = []
    retention = []
    for aging in agings:
        for block in range(n_blocks):
            for layer in range(0, reliability.geometry.n_layers, 4):
                ep1.append(reliability.ber_ep1(0, block, layer, 0, aging))
                retention.append(reliability.wl_ber(0, block, layer, 0, aging))
    correlation = float(np.corrcoef(ep1, retention)[0, 1])
    return {"ber_ep1": ep1, "retention_ber": retention, "correlation": correlation}


def fig11b_margin_conversion(
    table: MarginTable = DEFAULT_MARGIN_TABLE,
    timing: NandTiming = NandTiming(),
    s_m_points: Sequence[float] = (0.0, 0.4, 0.8, 1.2, 1.7, 2.5, 4.0),
) -> Dict[float, Dict[str, float]]:
    """Fig. 11(b): S_M -> total adjustment margin -> tPROG reduction.

    The paper's anchor: S_M = 1.7 grants 320 mV and cuts tPROG by about
    19.7 %.
    """
    engine = IsppEngine(timing)
    profile = engine.wl_profile(0.0)
    default = engine.simulate(profile, ProgramParams.default(engine.n_states))
    out = {}
    for s_m in s_m_points:
        margin = table.margin_mv(s_m)
        params = engine.follower_params(profile, window_squeeze_mv=int(margin))
        # isolate the window effect: disable verify skipping
        window_only = ProgramParams(
            v_start_mv=params.v_start_mv,
            v_final_mv=params.v_final_mv,
            dv_ispp_mv=params.dv_ispp_mv,
            verify_plan=VerifyPlan.default(engine.n_states),
        )
        result = engine.simulate(profile, window_only)
        out[s_m] = {
            "margin_mv": margin,
            "t_prog_us": result.t_prog_us,
            "t_prog_reduction": 1.0 - result.t_prog_us / default.t_prog_us,
        }
    return out


# ----------------------------------------------------------------------
# Fig. 13 -- program-order reliability equivalence
# ----------------------------------------------------------------------

def fig13_program_order_ber(
    seed: int = 0,
    aging: AgingState = AgingState(1000, 1.0),
) -> Dict[str, Dict[str, float]]:
    """Fig. 13: mean block BER after programming whole blocks in each of
    the three orders, normalized over horizontal-first.

    WLs are isolated by SL transistors, so the order leaves BER unchanged
    up to RTN-scale program-instance noise (< 3 %).  Returns, per order,
    the block-mean BER normalized over horizontal-first, plus the largest
    per-WL deviation from the horizontal-first measurement.
    """
    geometry = None
    per_wl: Dict[str, np.ndarray] = {}
    for order in ProgramOrder:
        chip = NandChip(chip_id=1, n_blocks=2, store_tags=False, env_shift_prob=0.0)
        chip.set_baseline_aging(aging)
        geometry = chip.geometry
        block = 0
        for address in program_sequence(geometry, order):
            chip.program_wl(block, address.layer, address.wl)
        grid = np.zeros((geometry.n_layers, geometry.wls_per_layer))
        for layer in range(geometry.n_layers):
            for wl in range(geometry.wls_per_layer):
                grid[layer, wl] = chip.read_page(block, layer, wl, 0).ber
        per_wl[order.value] = grid
    reference = per_wl[ProgramOrder.HORIZONTAL_FIRST.value]
    out: Dict[str, Dict[str, float]] = {}
    for name, grid in per_wl.items():
        out[name] = {
            "normalized_mean_ber": float(grid.mean() / reference.mean()),
            "max_wl_deviation": float(np.abs(grid / reference - 1.0).max()),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 14 -- PS-aware read-retry reduction
# ----------------------------------------------------------------------

def fig14_read_retry_distribution(
    aging: AgingState = AgingState(2000, 12.0),
    n_blocks: int = 12,
    reads_per_wl: int = 1,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 14: NumRetry distributions, PS-unaware vs. PS-aware.

    Reads sweep whole blocks page by page (the dominant pattern of both
    sequential host reads and GC migration).  The PS-unaware controller
    starts every read at the default references; the PS-aware controller
    starts from the ORT entry of the page's h-layer.
    """
    chip = NandChip(chip_id=2, n_blocks=n_blocks, store_tags=False)
    chip.set_baseline_aging(aging)
    ort = OptimalReadTable()
    unaware: List[int] = []
    aware: List[int] = []
    geometry = chip.geometry
    for block in range(n_blocks):
        for layer in range(geometry.n_layers):
            for wl in range(geometry.wls_per_layer):
                chip.program_wl(block, layer, wl)
        for layer in range(geometry.n_layers):
            for wl in range(geometry.wls_per_layer):
                for page in range(geometry.pages_per_wl):
                    for _ in range(reads_per_wl):
                        baseline = chip.read_page(block, layer, wl, page)
                        unaware.append(baseline.num_retry)
                        hint = ort.get(chip.chip_id, block, layer)
                        result = chip.read_page(
                            block, layer, wl, page, ReadParams(offset_hint=hint)
                        )
                        aware.append(result.num_retry)
                        ort.update(chip.chip_id, block, layer, result.final_offset)
    unaware_arr = np.asarray(unaware)
    aware_arr = np.asarray(aware)
    reduction = 1.0 - aware_arr.mean() / unaware_arr.mean()
    max_retry = int(max(unaware_arr.max(), aware_arr.max()))
    return {
        "unaware_mean": float(unaware_arr.mean()),
        "aware_mean": float(aware_arr.mean()),
        "reduction": float(reduction),
        "unaware_histogram": np.bincount(unaware_arr, minlength=max_retry + 1).tolist(),
        "aware_histogram": np.bincount(aware_arr, minlength=max_retry + 1).tolist(),
    }
