"""The ``repro-ssd fuzz`` entry point: seeded, checkable, and scriptable."""

import pytest

from repro.cli import main


class TestFuzzCommand:
    def test_smoke_two_ftls(self, capsys):
        code = main([
            "fuzz", "--seed", "7", "--ops", "120",
            "--ftls", "page,cube", "--check=strict",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out
        assert "page: digest=" in out
        assert "cube: digest=" in out

    def test_default_check_level_is_strict(self, capsys):
        code = main(["fuzz", "--seed", "3", "--ops", "80", "--ftls", "page"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_faulty_fuzz_passes(self, capsys):
        code = main([
            "fuzz", "--seed", "11", "--ops", "120",
            "--ftls", "page,cube", "--faults", "default",
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_empty_ftl_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--ftls", ","])

    def test_failure_prints_repro_command(self, capsys, monkeypatch):
        """A failing fuzz run must exit non-zero and print the exact
        command that reproduces it."""
        from repro.check import fuzz as fuzz_module

        real_run_fuzz = fuzz_module.run_fuzz

        def broken_run_fuzz(*args, **kwargs):
            report = real_run_fuzz(*args, **kwargs)
            report.mismatches.append("synthetic divergence for the test")
            return report

        monkeypatch.setattr(fuzz_module, "run_fuzz", broken_run_fuzz)
        code = main(["fuzz", "--seed", "5", "--ops", "60", "--ftls", "page"])
        captured = capsys.readouterr()
        assert code == 1
        assert "MISMATCH" in captured.out
        assert "repro-ssd fuzz --seed 5" in captured.err


class TestSimulateCheckFlag:
    def test_simulate_reports_check_outcome(self, capsys, tmp_path):
        code = main([
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "120", "--warmup", "20", "--blocks-per-chip", "8",
            "--prefill", "0.4", "--queue-depth", "8", "--check=strict",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "check[strict]: 0 violations" in out
        assert "digest" in out

    def test_simulate_without_flag_stays_silent(self, capsys):
        code = main([
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "120", "--warmup", "20", "--blocks-per-chip", "8",
            "--prefill", "0.4", "--queue-depth", "8",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "check[" not in out
