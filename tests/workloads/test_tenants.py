"""Tests for multi-tenant stream composition and its determinism rules."""

import pytest

from repro.specs import TenantSpec, WorkloadSpec
from repro.ssd.config import SSDConfig
from repro.workloads.tenants import (
    compose_tenants,
    tenant_arrival_seed,
    tenant_seed,
    tenant_trace,
)


def _tenant(name, workload="OLTP", rate=20_000, partition=None, **kwargs):
    return TenantSpec(
        name=name,
        workload=WorkloadSpec(workload, n_requests=120),
        rate_iops=rate,
        partition=partition,
        **kwargs,
    )


def _request_tuples(trace):
    return [
        (r.op, r.lpn, r.n_pages, r.arrival_us, r.tenant) for r in trace
    ]


class TestTenantSeeds:
    def test_seed_depends_on_name_not_position(self):
        assert tenant_seed(7, "a") != tenant_seed(7, "b")
        assert tenant_seed(7, "a") == tenant_seed(7, "a")

    def test_arrival_seed_independent_of_workload_seed(self):
        assert tenant_arrival_seed(7, "a") != tenant_seed(7, "a")


class TestTenantTrace:
    def test_partition_confines_requests(self):
        config = SSDConfig.small()
        pages = config.logical_pages
        trace = tenant_trace(
            _tenant("t", partition=(0.25, 0.5)), config, base_seed=7
        )
        lo, hi = pages // 4, pages // 2
        for request in trace:
            assert lo <= request.lpn
            assert request.lpn + request.n_pages <= hi

    def test_requests_tagged_and_stamped(self):
        config = SSDConfig.small()
        trace = tenant_trace(_tenant("alpha"), config, base_seed=7)
        assert trace.has_arrivals
        assert all(r.tenant == "alpha" for r in trace)

    def test_empty_partition_rejected(self):
        config = SSDConfig.small()
        with pytest.raises(ValueError, match="partition"):
            tenant_trace(
                _tenant("t", partition=(0.5, 0.5000001)), config, base_seed=7
            )


class TestCompose:
    def test_same_seed_is_bit_identical(self):
        """The whole merged stream is a pure function of (tenants,
        config, seed) -- the determinism contract of tenant scenarios."""
        config = SSDConfig.small()
        tenants = (
            _tenant("a", "OLTP", partition=(0.0, 0.5)),
            _tenant("b", "Web", partition=(0.5, 1.0)),
        )
        one = compose_tenants(tenants, config, base_seed=7)
        two = compose_tenants(tenants, config, base_seed=7)
        assert _request_tuples(one) == _request_tuples(two)

    def test_different_seed_differs(self):
        config = SSDConfig.small()
        tenants = (_tenant("a"), )
        one = compose_tenants(tenants, config, base_seed=7)
        two = compose_tenants(tenants, config, base_seed=8)
        assert _request_tuples(one) != _request_tuples(two)

    def test_other_tenants_leave_a_stream_untouched(self):
        """Tenant 'a' issues exactly the same requests whether it runs
        alone or next to 'b' -- this is what makes the solo baseline of
        the interference matrix comparable."""
        config = SSDConfig.small()
        a = _tenant("a", "OLTP", partition=(0.0, 0.5))
        b = _tenant("b", "Web", partition=(0.5, 1.0))
        solo = compose_tenants((a,), config, base_seed=7)
        shared = compose_tenants((a, b), config, base_seed=7)
        shared_a = [t for t in _request_tuples(shared) if t[4] == "a"]
        assert _request_tuples(solo) == shared_a

    def test_merged_by_arrival_time(self):
        config = SSDConfig.small()
        merged = compose_tenants(
            (_tenant("a"), _tenant("b")), config, base_seed=7
        )
        times = [r.arrival_us for r in merged]
        assert times == sorted(times)
        assert sorted(merged.tenants) == ["a", "b"]

    def test_duplicate_names_rejected(self):
        config = SSDConfig.small()
        with pytest.raises(ValueError, match="unique"):
            compose_tenants((_tenant("a"), _tenant("a")), config, base_seed=7)

    def test_pinned_tenant_seed_overrides_derivation(self):
        config = SSDConfig.small()
        pinned = _tenant("a", seed=123)
        one = compose_tenants((pinned,), config, base_seed=7)
        two = compose_tenants((pinned,), config, base_seed=99)
        one_requests = [(r.op, r.lpn, r.n_pages) for r in one]
        two_requests = [(r.op, r.lpn, r.n_pages) for r in two]
        # the request mix is pinned; only arrival stamps derive from the
        # base seed
        assert one_requests == two_requests

    def test_rate_scale_compresses_arrivals(self):
        config = SSDConfig.small()
        slow = compose_tenants((_tenant("a"),), config, base_seed=7)
        fast = compose_tenants(
            (_tenant("a", rate_scale=4.0),), config, base_seed=7
        )
        assert fast[-1].arrival_us < slow[-1].arrival_us
