"""Fault-campaign configuration.

A :class:`FaultCampaign` is a declarative, hashable description of the
faults injected into one simulation run.  It is part of
:class:`~repro.ssd.config.SSDConfig` (``faults=...``), so two runs with
the same config -- campaign seed included -- replay the exact same fault
sequence (every draw comes from the seeded stateless hash of
:func:`repro.nand.reliability.hash_unit`).

The fault classes model the grown-fault taxonomy real 3D NAND management
stacks handle (program-status failures, erase failures, grown bad
blocks, transient BER spikes from read disturb / retention, and stuck
dies); the recovery semantics live in the FTL (see ``docs/MODEL.md``,
"Fault model").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class FaultCampaign:
    """Declarative description of one fault-injection campaign.

    All probabilities are per-operation (per WL program, per block
    erase, per page read).  A campaign with every rate at zero is
    behaviorally identical to running without fault injection.
    """

    name: str = "default"
    #: campaign seed; independent from the device-model seed so the same
    #: silicon can be replayed under different fault sequences
    seed: int = 1
    #: probability that a WL program reports a program-status failure
    program_fail_prob: float = 0.0
    #: probability that a block erase fails (transient grown fault)
    erase_fail_prob: float = 0.0
    #: blocks per chip that grow bad during the run: their erase starts
    #: failing permanently after ``grown_bad_onset_erases`` dynamic erases
    grown_bad_per_chip: int = 0
    #: dynamic erase count at which a grown-bad block starts failing
    grown_bad_onset_erases: int = 2
    #: probability that one read sees a transient raw-BER spike
    #: (read-disturb / retention burst)
    ber_spike_prob: float = 0.0
    #: multiplier applied to the raw BER of a spiked read
    ber_spike_factor: float = 50.0
    #: probability that an h-layer's optimal read offset jumps away from
    #: any previously learned value (stale-ORT hazard, re-drawn per
    #: block-erase epoch)
    ort_skew_prob: float = 0.0
    #: how many offset steps a skewed h-layer jumps (>= 3 defeats a
    #: hint-started bounded sweep; a nominal-start full sweep still wins)
    ort_skew_steps: int = 3
    #: chip reads per skew phase: the skew of an h-layer is re-drawn
    #: every this-many reads of the chip, so a drift can strand ORT
    #: hints learned in the previous phase (mid-epoch staleness)
    ort_skew_phase_reads: int = 500
    #: probability that one die operation is served by a "stuck" die
    stuck_die_prob: float = 0.0
    #: latency multiplier of a stuck-die operation
    stuck_latency_factor: float = 4.0
    #: simulated instant (microseconds) of a sudden power-off.  The
    #: injector and :func:`repro.api.run_simulation` ignore this field --
    #: a power cut is not a per-operation fault but a campaign-level
    #: event acted on only by the SPOR harness
    #: (:func:`repro.persist.run_spor_campaign`), which cuts the run at
    #: this instant, drops all volatile FTL state, and recovers.
    spor_at_us: Optional[float] = None

    def __post_init__(self) -> None:
        for field_name in (
            "program_fail_prob",
            "erase_fail_prob",
            "ber_spike_prob",
            "ort_skew_prob",
            "stuck_die_prob",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1]")
        if self.grown_bad_per_chip < 0:
            raise ValueError("grown_bad_per_chip must be >= 0")
        if self.grown_bad_onset_erases < 1:
            raise ValueError("grown_bad_onset_erases must be >= 1")
        if self.ber_spike_factor < 1.0:
            raise ValueError("ber_spike_factor must be >= 1")
        if self.ort_skew_steps < 1:
            raise ValueError("ort_skew_steps must be >= 1")
        if self.ort_skew_phase_reads < 1:
            raise ValueError("ort_skew_phase_reads must be >= 1")
        if self.stuck_latency_factor < 1.0:
            raise ValueError("stuck_latency_factor must be >= 1")
        if self.spor_at_us is not None and self.spor_at_us < 0:
            raise ValueError("spor_at_us must be >= 0")

    @property
    def quiet(self) -> bool:
        """True when the campaign can never inject anything -- no
        per-operation fault has a nonzero rate and no power cut is
        scheduled."""
        return (
            self.program_fail_prob == 0.0
            and self.erase_fail_prob == 0.0
            and self.grown_bad_per_chip == 0
            and self.ber_spike_prob == 0.0
            and self.ort_skew_prob == 0.0
            and self.stuck_die_prob == 0.0
            and self.spor_at_us is None
        )


#: named campaigns selectable from the CLI (``--faults <name>``)
CAMPAIGNS: Dict[str, Optional[FaultCampaign]] = {
    "none": None,
    # the acceptance campaign: >= 0.1 % program fails, >= 2 grown bad
    # blocks per chip, periodic BER spikes, occasional stale offsets and
    # stuck-die hiccups
    "default": FaultCampaign(
        name="default",
        program_fail_prob=0.002,
        erase_fail_prob=0.002,
        grown_bad_per_chip=2,
        ber_spike_prob=0.003,
        ort_skew_prob=0.002,
        stuck_die_prob=0.001,
    ),
    # every program fail costs a whole block (the FTL retires it), so
    # even "heavy" keeps the structural rates moderate -- sustained
    # higher rates simply exhaust the over-provisioned space, which the
    # simulator reports as OutOfSpaceError (a worn-out drive)
    "heavy": FaultCampaign(
        name="heavy",
        program_fail_prob=0.004,
        erase_fail_prob=0.01,
        grown_bad_per_chip=4,
        ber_spike_prob=0.01,
        ort_skew_prob=0.01,
        stuck_die_prob=0.005,
        stuck_latency_factor=8.0,
    ),
    # read-side only: stale per-h-layer offsets, no structural damage
    "stale-ort": FaultCampaign(
        name="stale-ort",
        ort_skew_prob=0.02,
        ort_skew_steps=4,
    ),
    # latency only: stuck dies, no data-path faults
    "stuck-die": FaultCampaign(
        name="stuck-die",
        stuck_die_prob=0.01,
        stuck_latency_factor=8.0,
    ),
    # sudden power-off mid-run (no per-operation faults); the cut
    # instant is meaningful only to the SPOR harness in repro.persist
    "spor": FaultCampaign(
        name="spor",
        spor_at_us=50_000.0,
    ),
}


def get_campaign(name: str) -> Optional[FaultCampaign]:
    """Look up a named campaign (``"none"`` -> ``None``)."""
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault campaign {name!r}; "
            f"choose from {sorted(CAMPAIGNS)}"
        ) from None
