"""Shard retry semantics: hard-died workers relaunch with the identical
spec (same derived seed), raised exceptions do not, and every relaunch
is visible in telemetry and outcome provenance."""

import os

import pytest

from repro.obs import TelemetryRegistry
from repro.parallel import ShardSpec, ShardsInterrupted, run_shards


def _ok(value):
    return value + 1


def _raise(value):
    raise RuntimeError(f"boom {value}")


def _die_once(sentinel):
    """Hard-die (no report through the pipe) on the first attempt only."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(41)
    return "second-attempt"


def _die_always():
    os._exit(41)


class TestHardDeathRetry:
    def test_retry_recovers_a_flaky_worker(self, tmp_path):
        registry = TelemetryRegistry()
        sentinel = str(tmp_path / "died-once")
        specs = [
            ShardSpec("stable", _ok, {"value": 1}),
            ShardSpec("flaky", _die_once, {"sentinel": sentinel}),
        ]
        outcomes = run_shards(specs, jobs=2, retries=1, registry=registry)
        assert [o.ok for o in outcomes] == [True, True]
        assert outcomes[1].result == "second-attempt"
        assert outcomes[1].retried and not outcomes[0].retried
        snapshot = registry.snapshot()
        assert snapshot["shard_retries_total"]["series"][0]["value"] == 1

    def test_no_retries_reports_hard_death(self, tmp_path):
        sentinel = str(tmp_path / "died-once")
        specs = [
            ShardSpec("stable", _ok, {"value": 1}),
            ShardSpec("flaky", _die_once, {"sentinel": sentinel}),
        ]
        outcomes = run_shards(specs, jobs=2, retries=0)
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "died without reporting" in outcomes[1].error
        assert "41" in outcomes[1].error

    def test_retry_budget_exhausts(self):
        specs = [
            ShardSpec("stable", _ok, {"value": 1}),
            ShardSpec("doomed", _die_always, {}),
        ]
        registry = TelemetryRegistry()
        outcomes = run_shards(specs, jobs=2, retries=2, registry=registry)
        assert not outcomes[1].ok
        assert outcomes[1].retried
        snapshot = registry.snapshot()
        assert snapshot["shard_retries_total"]["series"][0]["value"] == 2

    def test_raised_exceptions_are_not_retried(self):
        registry = TelemetryRegistry()
        specs = [
            ShardSpec("stable", _ok, {"value": 1}),
            ShardSpec("raiser", _raise, {"value": 2}),
        ]
        outcomes = run_shards(specs, jobs=2, retries=3, registry=registry)
        assert not outcomes[1].ok
        assert "boom 2" in outcomes[1].error
        assert not outcomes[1].retried
        snapshot = registry.snapshot()
        assert snapshot["shard_retries_total"]["series"][0]["value"] == 0


class TestInterrupt:
    def test_inline_interrupt_carries_completed(self):
        def boom(value):
            raise KeyboardInterrupt

        specs = [
            ShardSpec("a", _ok, {"value": 1}),
            ShardSpec("b", boom, {"value": 2}),
            ShardSpec("c", _ok, {"value": 3}),
        ]
        with pytest.raises(ShardsInterrupted) as excinfo:
            run_shards(specs, jobs=1)
        outcomes = excinfo.value.outcomes
        assert [o.name for o in outcomes] == ["a"]
        assert outcomes[0].ok and outcomes[0].result == 2

    def test_interrupt_is_a_keyboard_interrupt(self):
        assert issubclass(ShardsInterrupted, KeyboardInterrupt)
