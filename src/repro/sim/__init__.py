"""Discrete-event simulation engine used by the SSD substrate."""

from repro.sim.engine import Engine, Event
from repro.sim.resources import FifoResource

__all__ = ["Engine", "Event", "FifoResource"]
