"""Opt-in runtime invariant checker for the whole FTL stack.

The :class:`InvariantChecker` attaches to a built
:class:`~repro.ssd.controller.SSDSimulation` through the same
pointer-test hook points the tracer and telemetry use: with no checker
attached every hook site is a single ``is None`` comparison and the
simulation is bit-for-bit the unchecked run.  With a checker attached
it watches, per event:

- **clock monotonicity** -- the event engine may never dispatch an
  event earlier than the previous one (``engine.monitor`` hook);
- **block lifecycle legality** -- free -> active (open) -> full ->
  erased -> free, with retirement terminal, and a block may only return
  to the free pool (or retire) with zero valid pages
  (``BlockManager.observer`` hook);
- **free-pool accounting** -- the pool's length must equal the number
  of FREE lifecycle states after every transition;
- **data integrity** -- every completed read is verified end-to-end
  against the :class:`~repro.check.oracle.DataIntegrityOracle` shadow
  store (including through program-fail rewrites, conservative
  re-reads, and GC relocation).

On top of the per-event hooks, :meth:`check_deep` audits the global
structures -- L2P/P2L bijection and valid-page accounting
(:meth:`~repro.ftl.mapping.PageMapper.audit`), block-state vs. mapper
cross-accounting, and write-buffer version accounting
(:meth:`~repro.ssd.write_buffer.WriteBuffer.check_invariants`).  The
cadence is the difference between the two check levels: ``"on"`` runs
the deep audit once at finalization, ``"strict"`` additionally runs it
after every erase/retirement and every
:attr:`~CheckConfig.deep_every_completions` host completions.

Every violation raises a structured
:class:`~repro.check.errors.InvariantViolation` naming the offending
LPN / PPN / chip / block, stamped with the engine timestamp and -- when
request tracing is active -- the last few trace spans, and is exported
as a telemetry counter (``check_violations_total``) when a
:class:`~repro.obs.registry.TelemetryRegistry` is attached.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.check.errors import InvariantViolation
from repro.check.oracle import DataIntegrityOracle
from repro.ftl.blockmgr import BlockState

#: legal block lifecycle transitions (free -> open -> full -> erased;
#: a grown-bad FREE block may retire directly; retirement is terminal)
_LEGAL_TRANSITIONS = {
    (BlockState.FREE, BlockState.ACTIVE),
    (BlockState.ACTIVE, BlockState.FULL),
    (BlockState.FULL, BlockState.FREE),
    (BlockState.FULL, BlockState.RETIRED),
    (BlockState.FREE, BlockState.RETIRED),
}


@dataclass(frozen=True)
class CheckConfig:
    """Knobs of one checker instance.

    ``level`` is ``"on"`` (per-event hooks plus one deep audit at
    finalization) or ``"strict"`` (deep audits also after every erase /
    retirement and every ``deep_every_completions`` host completions).
    """

    level: str = "on"
    #: deep-audit every N host request completions (0 = only at
    #: finalization); strict defaults to 64
    deep_every_completions: int = 0
    #: deep-audit after every erase / retirement transition
    deep_on_erase: bool = False
    #: how many of the most recent trace spans a violation report
    #: carries when tracing is active
    span_tail: int = 8
    #: keep the full final logical view (LPN -> tag) in the report --
    #: useful for differential diffing, costs memory on large devices
    capture_state: bool = False

    def __post_init__(self) -> None:
        if self.level not in ("on", "strict"):
            raise ValueError(f"unknown check level {self.level!r}")
        if self.deep_every_completions < 0:
            raise ValueError("deep_every_completions must be >= 0")
        if self.span_tail < 0:
            raise ValueError("span_tail must be >= 0")

    @classmethod
    def strict(cls, **overrides) -> "CheckConfig":
        defaults = dict(
            level="strict", deep_every_completions=64, deep_on_erase=True
        )
        defaults.update(overrides)
        return cls(**defaults)


def parse_check_level(value) -> Optional[CheckConfig]:
    """Normalize the public ``check=`` argument.

    ``None`` / ``False`` / ``"off"`` disable checking entirely;
    ``True`` / ``"on"`` enable the base level; ``"strict"`` enables the
    strict cadence; a :class:`CheckConfig` passes through unchanged.
    """
    if value is None or value is False or value == "off":
        return None
    if value is True or value == "on":
        return CheckConfig()
    if value == "strict":
        return CheckConfig.strict()
    if isinstance(value, CheckConfig):
        return value
    raise ValueError(
        f"check must be None/'off', True/'on', 'strict' or a CheckConfig, "
        f"got {value!r}"
    )


class _SpanTail:
    """Trace-sink wrapper keeping the last N spans for violation
    reports while forwarding every span to the real sink unchanged."""

    def __init__(self, inner, maxlen: int) -> None:
        self.inner = inner
        self.recent = deque(maxlen=maxlen)

    def emit(self, span) -> None:
        self.recent.append(span)
        self.inner.emit(span)

    def close(self) -> None:
        self.inner.close()


class InvariantChecker:
    """Composable runtime invariants over one simulation.

    Build it, hand it to :class:`~repro.ssd.controller.SSDSimulation`
    (``checker=``) or :func:`repro.api.run_simulation` (``check=``), and
    it raises :class:`InvariantViolation` the moment the stack becomes
    inconsistent.  ``context`` (seed, FTL, workload...) is embedded in
    every report so a violating run is directly replayable.
    """

    def __init__(self, config: Optional[CheckConfig] = None) -> None:
        self.config = config or CheckConfig()
        self.context: Dict[str, object] = {}
        self.oracle = DataIntegrityOracle(self._report)
        self.violations = 0
        self.violations_by_invariant: Dict[str, int] = {}
        self.completions = 0
        self.deep_scans = 0
        self.events_checked = 0
        self._last_event_us: Optional[float] = None
        self._retired: set = set()
        self._span_tail: Optional[_SpanTail] = None
        self._violations_counter = None
        # bound by attach()
        self._sim = None
        self._engine = None
        self._ftl = None

    # -- wiring ----------------------------------------------------------

    def attach(self, sim) -> None:
        """Bind to a built simulation: install the engine monitor, the
        block-lifecycle observer, the trace tail, and the telemetry
        instruments."""
        self._sim = sim
        self._engine = sim.controller.engine
        self._ftl = sim.ftl
        self._engine.monitor = self._on_engine_event
        self._ftl.blocks.observer = self
        tracer = sim.controller.tracer
        if tracer is not None and self.config.span_tail > 0:
            self._span_tail = _SpanTail(tracer.sink, self.config.span_tail)
            tracer.sink = self._span_tail
        registry = getattr(sim, "telemetry", None)
        if registry is not None:
            self._violations_counter = registry.counter(
                "check_violations_total",
                "invariant violations detected by the runtime checker",
                labelnames=("invariant",),
            )
            scans = registry.gauge(
                "check_deep_scans", "deep invariant audits performed"
            )
            verified = registry.gauge(
                "check_reads_verified",
                "completed reads verified against the shadow store",
            )
            registry.add_collector(
                lambda: (
                    scans.set(self.deep_scans),
                    verified.set(
                        self.oracle.reads_verified
                        + self.oracle.buffer_reads_verified
                    ),
                )
            )
        else:
            self._violations_counter = None

    # -- violation reporting ---------------------------------------------

    def _report(self, violation: InvariantViolation) -> None:
        """Enrich, count, export, and raise one violation."""
        self.violations += 1
        name = violation.invariant
        self.violations_by_invariant[name] = (
            self.violations_by_invariant.get(name, 0) + 1
        )
        if self._violations_counter is not None:
            self._violations_counter.labels(invariant=name).inc()
        if violation.time_us is None and self._engine is not None:
            violation.time_us = self._engine.now
        if not violation.context:
            violation.context = dict(self.context)
        if self._span_tail is not None and not violation.recent_spans:
            violation.recent_spans = [
                span.to_dict() for span in self._span_tail.recent
            ]
        raise InvariantViolation(
            violation.invariant,
            violation.message,
            lpn=violation.lpn,
            ppn=violation.ppn,
            chip=violation.chip,
            block=violation.block,
            time_us=violation.time_us,
            context=violation.context,
            recent_spans=violation.recent_spans,
            details=violation.details,
        )

    # -- engine hook -----------------------------------------------------

    def _on_engine_event(self, time_us: float) -> None:
        self.events_checked += 1
        last = self._last_event_us
        if last is not None and time_us < last:
            self._report(
                InvariantViolation(
                    "clock_monotonicity",
                    f"event dispatched at {time_us:.3f}us after an event "
                    f"at {last:.3f}us (clock moved backwards)",
                    time_us=time_us,
                    details={"previous_us": last},
                )
            )
        self._last_event_us = time_us

    # -- block lifecycle hooks (BlockManager.observer protocol) ----------

    def on_block_transition(
        self, chip_id: int, block: int, old: BlockState, new: BlockState
    ) -> None:
        if (chip_id, block) in self._retired:
            self._report(
                InvariantViolation(
                    "block_lifecycle",
                    f"retired block re-entered service as {new.value} "
                    "(retirement is terminal)",
                    chip=chip_id,
                    block=block,
                )
            )
        if (old, new) not in _LEGAL_TRANSITIONS:
            self._report(
                InvariantViolation(
                    "block_lifecycle",
                    f"illegal transition {old.value} -> {new.value}",
                    chip=chip_id,
                    block=block,
                )
            )
        # kind-aware: a translation block's valid pages live in the
        # FTL's translation mapper, not the L2P (block_valid_count
        # dispatches; the observer fires before mark_free resets the
        # kind, so the audit sees the outgoing kind's mapper)
        if new in (BlockState.FREE, BlockState.RETIRED):
            valid = self._ftl.block_valid_count(chip_id, block)
            if valid != 0:
                self._report(
                    InvariantViolation(
                        "block_lifecycle",
                        f"block became {new.value} holding {valid} valid "
                        "pages (data would be lost)",
                        chip=chip_id,
                        block=block,
                        details={"valid_pages": valid},
                    )
                )
        if new is BlockState.RETIRED:
            self._retired.add((chip_id, block))
        blocks = self._ftl.blocks
        pool = blocks.free_count(chip_id)
        free_states = blocks.counts(chip_id)[BlockState.FREE]
        if pool != free_states:
            self._report(
                InvariantViolation(
                    "free_pool_accounting",
                    f"free pool holds {pool} blocks but {free_states} "
                    "blocks are in the FREE state",
                    chip=chip_id,
                    block=block,
                    details={"pool": pool, "free_states": free_states},
                )
            )
        if self.config.deep_on_erase and old is BlockState.FULL and new in (
            BlockState.FREE,
            BlockState.RETIRED,
        ):
            self.check_deep()

    def on_block_failing(self, chip_id: int, block: int) -> None:
        if (chip_id, block) in self._retired:
            self._report(
                InvariantViolation(
                    "block_lifecycle",
                    "retired block flagged failing (retirement is terminal)",
                    chip=chip_id,
                    block=block,
                )
            )

    # -- datapath hooks (called from BaseFTL) ----------------------------

    def on_host_write(self, lpn: int, tag: object) -> None:
        self.oracle.record_write(lpn, tag)

    def on_buffer_read(self, lpn: int, data: object) -> None:
        self.oracle.verify_buffer_read(lpn, data)

    def on_unmapped_read(self, lpn: int) -> None:
        self.oracle.verify_unmapped_read(lpn)

    def pin_read(self, lpn: int) -> Optional[object]:
        """Capture the expected tag of a flash read at issue time."""
        return self.oracle.expected(lpn)

    def on_flash_read(
        self, lpn: int, ppn: int, expected: Optional[object], result
    ) -> None:
        self.oracle.verify_flash_read(
            lpn, ppn, expected, result.data, result.correctable
        )

    def on_request_complete(self, spec, now_us: float) -> None:
        self.completions += 1
        every = self.config.deep_every_completions
        if every and self.completions % every == 0:
            self.check_deep()

    def on_prefill(self, n_pages: int) -> None:
        """Prefill wrote LPNs ``0..n_pages-1`` (tag = LPN) outside the
        timed datapath; seed the shadow store to match."""
        self.oracle.seed_prefilled(n_pages)

    # -- deep audits -----------------------------------------------------

    def check_deep(self) -> None:
        """Audit the global structures: mapping bijection, block/mapper
        cross-accounting, and write-buffer version accounting."""
        self.deep_scans += 1
        self._audit_mapping()
        self._audit_blocks()
        self._audit_buffer()

    # kept as a public alias: tests corrupt state and ask for a verdict
    check_now = check_deep

    def _audit_mapping(self) -> None:
        for name, mapper in self._ftl.mappers().items():
            finding = mapper.audit()
            if finding is not None:
                message = finding.pop("message")
                if name != "l2p":
                    message = f"{name}: {message}"
                self._report(
                    InvariantViolation(
                        "mapping_bijection",
                        message,
                        lpn=finding.pop("lpn", None),
                        ppn=finding.pop("ppn", None),
                        chip=finding.pop("chip", None),
                        block=finding.pop("block", None),
                        details=finding,
                    )
                )
        finding = self._ftl.audit_variant()
        if finding is not None:
            self._report(
                InvariantViolation(
                    "variant_invariant",
                    finding.pop("message"),
                    lpn=finding.pop("lpn", None),
                    ppn=finding.pop("ppn", None),
                    chip=finding.pop("chip", None),
                    block=finding.pop("block", None),
                    details=finding,
                )
            )

    def _audit_blocks(self) -> None:
        blocks = self._ftl.blocks
        geometry = self._ftl.geometry
        for chip_id in range(geometry.n_chips):
            counts = blocks.counts(chip_id)
            pool = blocks.free_count(chip_id)
            if pool != counts[BlockState.FREE]:
                self._report(
                    InvariantViolation(
                        "free_pool_accounting",
                        f"free pool holds {pool} blocks but "
                        f"{counts[BlockState.FREE]} blocks are FREE",
                        chip=chip_id,
                    )
                )
            for block in range(geometry.blocks_per_chip):
                state = blocks.state(chip_id, block)
                if state in (BlockState.FREE, BlockState.RETIRED):
                    valid = self._ftl.block_valid_count(chip_id, block)
                    if valid != 0:
                        self._report(
                            InvariantViolation(
                                "valid_page_accounting",
                                f"{state.value} block holds {valid} valid "
                                "pages",
                                chip=chip_id,
                                block=block,
                                details={"valid_pages": valid},
                            )
                        )

    def _audit_buffer(self) -> None:
        try:
            self._ftl.buffer.check_invariants()
        except ValueError as error:
            self._report(
                InvariantViolation("write_buffer_versions", str(error))
            )

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable checker state at a quiescent barrier.

        Covers the oracle (shadow store included), the accumulated
        counters, the retired-block memory, and the last event
        timestamp.  Wiring (engine monitor, block observer, span tail,
        telemetry instruments) is rebuilt by ``attach`` on the restored
        simulation; ``config`` and ``context`` travel with the
        checkpoint header, not here.
        """
        return {
            "oracle": self.oracle.state_dict(),
            "violations": self.violations,
            "violations_by_invariant": dict(self.violations_by_invariant),
            "completions": self.completions,
            "deep_scans": self.deep_scans,
            "events_checked": self.events_checked,
            "last_event_us": self._last_event_us,
            "retired": sorted(self._retired),
            "context": dict(self.context),
        }

    def load_state_dict(self, state: dict) -> None:
        self.oracle.load_state_dict(state["oracle"])
        self.violations = state["violations"]
        self.violations_by_invariant = dict(state["violations_by_invariant"])
        self.completions = state["completions"]
        self.deep_scans = state["deep_scans"]
        self.events_checked = state["events_checked"]
        self._last_event_us = state["last_event_us"]
        self._retired = {tuple(item) for item in state["retired"]}
        self.context = dict(state["context"])

    # -- finalization ----------------------------------------------------

    def logical_view(self) -> Dict[int, object]:
        """The final logical state: LPN -> content tag, merging the
        flash (via the mapping) with any still-buffered copies."""
        ftl = self._ftl
        geometry = ftl.geometry
        chips = self._sim.controller.chips
        view: Dict[int, object] = {}
        for lpn in range(ftl.config.logical_pages):
            if ftl.buffer.contains(lpn):
                view[lpn] = ftl.buffer.latest_data(lpn)
                continue
            ppn = ftl.mapper.lookup(lpn)
            if ppn == -1:
                continue
            chip_id, address = geometry.ppn_to_address(ppn)
            view[lpn] = chips[chip_id].peek_tag(
                address.block, address.layer, address.wl, address.page
            )
        return view

    def state_digest(self) -> str:
        """Deterministic digest of :meth:`logical_view` -- two runs that
        agree on every (LPN, tag) pair agree on the digest."""
        digest = hashlib.sha256()
        for lpn, tag in sorted(self.logical_view().items()):
            digest.update(f"{lpn}:{tag!r};".encode())
        return digest.hexdigest()

    def finalize(self) -> dict:
        """Run the end-of-run deep audit and produce the check report."""
        self.check_deep()
        report = {
            "level": self.config.level,
            "context": dict(self.context),
            "completions": self.completions,
            "events_checked": self.events_checked,
            "deep_scans": self.deep_scans,
            "violations": self.violations,
            "violations_by_invariant": dict(self.violations_by_invariant),
            "oracle": self.oracle.stats(),
            "mapped_lpns": self._ftl.mapper.mapped_lpn_count(),
            "state_digest": self.state_digest(),
        }
        if self.config.capture_state:
            report["logical_view"] = self.logical_view()
        return report
