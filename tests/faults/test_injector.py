"""Tests for the deterministic fault injector."""

from repro.faults import FaultCampaign, FaultInjector


def _program_draws(injector, n=2000):
    return [injector.program_fails(0, 3, 1, nonce) for nonce in range(n)]


class TestDeterminism:
    def test_same_campaign_same_decisions(self):
        campaign = FaultCampaign(
            program_fail_prob=0.05,
            erase_fail_prob=0.05,
            ber_spike_prob=0.05,
            ort_skew_prob=0.2,
            stuck_die_prob=0.05,
        )
        a, b = FaultInjector(campaign), FaultInjector(campaign)
        assert _program_draws(a) == _program_draws(b)
        assert [a.erase_fails(1, blk, 16, 0) for blk in range(16)] == [
            b.erase_fails(1, blk, 16, 0) for blk in range(16)
        ]
        assert [a.ber_multiplier(0, 0, n) for n in range(500)] == [
            b.ber_multiplier(0, 0, n) for n in range(500)
        ]
        assert [a.ort_skew(0, 0, layer, 0, 0) for layer in range(48)] == [
            b.ort_skew(0, 0, layer, 0, 0) for layer in range(48)
        ]
        assert [a.latency_factor(0, n) for n in range(500)] == [
            b.latency_factor(0, n) for n in range(500)
        ]

    def test_different_seed_different_decisions(self):
        a = FaultInjector(FaultCampaign(seed=1, program_fail_prob=0.05))
        b = FaultInjector(FaultCampaign(seed=2, program_fail_prob=0.05))
        assert _program_draws(a) != _program_draws(b)

    def test_rates_are_approximately_honored(self):
        injector = FaultInjector(FaultCampaign(program_fail_prob=0.05))
        fails = sum(_program_draws(injector, 5000))
        assert 100 <= fails <= 400  # ~250 expected


class TestProgramFaults:
    def test_zero_rate_never_fires(self):
        injector = FaultInjector(FaultCampaign())
        assert not any(_program_draws(injector, 500))
        assert injector.injected.program_fails == 0

    def test_rate_one_always_fires(self):
        injector = FaultInjector(FaultCampaign(program_fail_prob=1.0))
        assert all(_program_draws(injector, 50))
        assert injector.injected.program_fails == 50


class TestGrownBadBlocks:
    def test_table_size_and_onset(self):
        campaign = FaultCampaign(grown_bad_per_chip=3, grown_bad_onset_erases=2)
        injector = FaultInjector(campaign)
        table = injector.grown_bad_blocks(0, 64)
        assert len(table) == 3
        assert all(onset == 2 for onset in table.values())
        assert all(0 <= block < 64 for block in table)

    def test_table_capped_by_chip_size(self):
        injector = FaultInjector(FaultCampaign(grown_bad_per_chip=10))
        assert len(injector.grown_bad_blocks(0, 4)) == 4

    def test_table_is_stable_and_per_chip(self):
        campaign = FaultCampaign(grown_bad_per_chip=2)
        injector = FaultInjector(campaign)
        assert injector.grown_bad_blocks(0, 64) is injector.grown_bad_blocks(0, 64)
        other = FaultInjector(campaign)
        assert injector.grown_bad_blocks(0, 64) == other.grown_bad_blocks(0, 64)

    def test_bad_block_fails_from_onset(self):
        campaign = FaultCampaign(grown_bad_per_chip=1, grown_bad_onset_erases=2)
        injector = FaultInjector(campaign)
        (bad,) = injector.grown_bad_blocks(0, 32)
        assert not injector.erase_fails(0, bad, 32, erase_count=1)
        assert injector.erase_fails(0, bad, 32, erase_count=2)
        assert injector.erase_fails(0, bad, 32, erase_count=5)
        assert injector.injected.grown_bad_trips == 2

    def test_healthy_block_never_fails_without_transient_rate(self):
        campaign = FaultCampaign(grown_bad_per_chip=1, grown_bad_onset_erases=1)
        injector = FaultInjector(campaign)
        (bad,) = injector.grown_bad_blocks(0, 32)
        healthy = (bad + 1) % 32
        assert not any(
            injector.erase_fails(0, healthy, 32, count) for count in range(20)
        )


class TestReadFaults:
    def test_spike_multiplier_bounds(self):
        injector = FaultInjector(
            FaultCampaign(ber_spike_prob=1.0, ber_spike_factor=6.0)
        )
        assert injector.ber_multiplier(0, 0, 0) == 6.0
        quiet = FaultInjector(FaultCampaign())
        assert quiet.ber_multiplier(0, 0, 0) == 1.0

    def test_skew_magnitude_and_phase_stability(self):
        campaign = FaultCampaign(
            ort_skew_prob=1.0, ort_skew_steps=4, ort_skew_phase_reads=100
        )
        injector = FaultInjector(campaign)
        skew = injector.ort_skew(0, 0, 5, epoch=0, read_nonce=0)
        assert abs(skew) == 4
        # stable within one phase window ...
        assert injector.ort_skew(0, 0, 5, epoch=0, read_nonce=99) == skew
        # ... and re-drawn deterministically across phases
        a = [injector.ort_skew(0, 0, 5, 0, phase * 100) for phase in range(8)]
        b = [injector.ort_skew(0, 0, 5, 0, phase * 100) for phase in range(8)]
        assert a == b

    def test_forced_skew_overrides_and_clears(self):
        injector = FaultInjector(FaultCampaign())
        assert injector.ort_skew(0, 2, 7, 0, 0) == 0
        injector.force_ort_skew(0, 2, 7, steps=4)
        assert injector.ort_skew(0, 2, 7, 0, 0) == 4
        assert injector.ort_skew(0, 2, 6, 0, 0) == 0  # other layers untouched
        injector.clear_forced_skews()
        assert injector.ort_skew(0, 2, 7, 0, 0) == 0


class TestLatencyFaults:
    def test_stuck_factor(self):
        injector = FaultInjector(
            FaultCampaign(stuck_die_prob=1.0, stuck_latency_factor=8.0)
        )
        assert injector.latency_factor(0, 0) == 8.0
        assert injector.injected.stuck_ops == 1
        quiet = FaultInjector(FaultCampaign())
        assert quiet.latency_factor(0, 0) == 1.0
