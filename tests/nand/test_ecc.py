"""Tests for the ECC engine model."""

import pytest

from repro.nand.ecc import EccEngine


class TestEccEngine:
    def test_default_limit_order_of_magnitude(self):
        ecc = EccEngine()
        # 72 bits / 8192 bits, derated: a few 1e-3
        assert 5e-3 <= ecc.ber_limit <= 9e-3

    def test_correctable_below_limit(self):
        ecc = EccEngine()
        assert ecc.correctable(ecc.ber_limit * 0.99)
        assert not ecc.correctable(ecc.ber_limit * 1.01)

    def test_margin_signs(self):
        ecc = EccEngine()
        assert ecc.margin(0.0) == pytest.approx(1.0)
        assert ecc.margin(ecc.ber_limit) == pytest.approx(0.0)
        assert ecc.margin(2 * ecc.ber_limit) < 0

    def test_margin_at_boundary_bers(self):
        """The margin and the correctability verdict must agree exactly
        at the limit -- the scrub policy keys off the margin while the
        read path keys off ``correctable``."""
        ecc = EccEngine()
        # exactly at the limit: zero margin, still correctable
        assert ecc.margin(ecc.ber_limit) == pytest.approx(0.0)
        assert ecc.correctable(ecc.ber_limit)
        # one part in a million inside / outside the limit
        just_inside = ecc.ber_limit * (1 - 1e-6)
        just_outside = ecc.ber_limit * (1 + 1e-6)
        assert ecc.margin(just_inside) > 0
        assert ecc.correctable(just_inside)
        assert ecc.margin(just_outside) < 0
        assert not ecc.correctable(just_outside)

    def test_margin_is_monotone_in_ber(self):
        ecc = EccEngine()
        bers = [0.0, 1e-4, 1e-3, ecc.ber_limit, 1e-2]
        margins = [ecc.margin(ber) for ber in bers]
        assert margins == sorted(margins, reverse=True)

    def test_codewords_per_page(self):
        ecc = EccEngine()
        assert ecc.codewords_per_page(16 * 1024) == 16

    def test_codewords_per_page_requires_multiple(self):
        ecc = EccEngine()
        with pytest.raises(ValueError):
            ecc.codewords_per_page(1500)

    def test_raw_errors_per_codeword(self):
        ecc = EccEngine()
        assert ecc.raw_errors_per_codeword(1e-3) == pytest.approx(8.192)

    def test_raw_errors_rejects_negative(self):
        ecc = EccEngine()
        with pytest.raises(ValueError):
            ecc.raw_errors_per_codeword(-1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            EccEngine(codeword_bytes=0)
        with pytest.raises(ValueError):
            EccEngine(correctable_bits=0)
        with pytest.raises(ValueError):
            EccEngine(derating=0.0)

    def test_stronger_code_higher_limit(self):
        weak = EccEngine(correctable_bits=40)
        strong = EccEngine(correctable_bits=100)
        assert strong.ber_limit > weak.ber_limit

    def test_device_worst_case_within_ecc(self, reliability, aged_eol):
        """End-of-life worst-layer BER stays correctable with default
        parameters -- the premise of safe operation."""
        ecc = EccEngine()
        worst = max(
            reliability.layer_ber(0, block, reliability.layer_kappa, aged_eol)
            for block in range(8)
        )
        assert ecc.correctable(worst)
        # ... even with the largest legitimate window squeeze applied
        from repro.nand.ispp import window_squeeze_ber_multiplier

        assert ecc.correctable(worst * window_squeeze_ber_multiplier(90))
