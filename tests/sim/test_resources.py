"""Tests for FIFO resources (die / channel queues)."""

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import FifoResource


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def resource(engine):
    return FifoResource(engine, name="die0")


class TestFifoResource:
    def test_jobs_serve_in_order(self, engine, resource):
        done = []
        for i, duration in enumerate((5.0, 3.0, 2.0)):
            resource.submit(
                lambda d=duration: (d, None),
                lambda _p, i=i: done.append((i, engine.now)),
            )
        engine.run()
        assert done == [(0, 5.0), (1, 8.0), (2, 10.0)]

    def test_job_thunk_runs_at_service_start(self, engine, resource):
        """Late binding: the second job's thunk executes only after the
        first completes."""
        starts = []
        resource.submit(lambda: (starts.append(engine.now) or (4.0, None)))
        resource.submit(lambda: (starts.append(engine.now) or (1.0, None)))
        engine.run()
        assert starts == [0.0, 4.0]

    def test_payload_passed_to_done(self, engine, resource):
        received = []
        resource.submit(lambda: (1.0, "payload"), received.append)
        engine.run()
        assert received == ["payload"]

    def test_completion_can_submit_more(self, engine, resource):
        done = []

        def chain(_payload):
            done.append(engine.now)
            if len(done) < 3:
                resource.submit(lambda: (2.0, None), chain)

        resource.submit(lambda: (2.0, None), chain)
        engine.run()
        assert done == [2.0, 4.0, 6.0]

    def test_busy_accounting(self, engine, resource):
        resource.submit(lambda: (5.0, None))
        resource.submit(lambda: (5.0, None))
        engine.run()
        assert resource.busy_time_us == 10.0
        assert resource.service_count == 2
        assert not resource.busy
        assert resource.queue_length == 0

    def test_utilization(self, engine, resource):
        resource.submit(lambda: (5.0, None))
        engine.run(until=10.0)
        assert resource.utilization(10.0) == pytest.approx(0.5)
        assert resource.utilization(0.0) == 0.0

    def test_zero_duration_job(self, engine, resource):
        done = []
        resource.submit(lambda: (0.0, None), lambda _p: done.append(engine.now))
        engine.run()
        assert done == [0.0]

    def test_negative_duration_rejected(self, engine, resource):
        with pytest.raises(ValueError):
            resource.submit(lambda: (-1.0, None))

    def test_two_resources_independent(self, engine):
        a = FifoResource(engine, "a")
        b = FifoResource(engine, "b")
        done = []
        a.submit(lambda: (10.0, None), lambda _p: done.append(("a", engine.now)))
        b.submit(lambda: (1.0, None), lambda _p: done.append(("b", engine.now)))
        engine.run()
        assert done == [("b", 1.0), ("a", 10.0)]
