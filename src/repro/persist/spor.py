"""Sudden-power-off (SPOR) injection and FTL recovery harness.

The SPOR model (see docs/PERSISTENCE.md):

- Power is cut at ``campaign.spor_at_us`` simulated microseconds.  Every
  volatile structure dies with it: the write buffer (staged and pending
  host writes), the FTL's mapping tables, block lifecycle state, GC
  progress, and all queued events.
- The media survives: whatever the chips had *programmed* by the cut is
  still there, including per-page OOB records ``(lpn, seq)`` written
  alongside the data (``SSDConfig.store_oob``).  A program whose die
  service had started is modeled as fully persisted -- it carries an
  older sequence number than any post-recovery rewrite, so it can never
  shadow newer data.
- The durability contract is *acked implies durable*: a host write's
  completion is only delivered at flash-program completion, so every
  acked write is on media with its OOB record.  Unacked writes are the
  *lost window*; a real host would replay them from its own journal,
  and the harness does exactly that, in issue order, before any
  post-recovery reads.

Recovery is :meth:`repro.ftl.base.BaseFTL.spor_recover`: scan every
chip's OOB records, keep the highest-sequence copy per LPN, seal every
partially-programmed block FULL, and reset the volatile allocators.
Verification is end-to-end: the phase-2 oracle is seeded with the
*complete* phase-1 shadow store, so any read of pre-cut acked data that
returns a stale or lost copy raises immediately; a final deep audit
(:meth:`PageMapper.audit` included) checks the rebuilt structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads import build_workload
from repro.workloads.base import Trace


@dataclass
class SporReport:
    """What one SPOR campaign did and proved."""

    spor_at_us: float
    #: host requests issued / completed (acked) before the cut
    issued_before: int
    completed_before: int
    #: unacked writes replayed after recovery (the lost window)
    lost_writes: int
    #: unacked reads dropped at the cut (no durability semantics)
    dropped_reads: int
    #: requests never issued before the cut, run after recovery
    remaining: int
    #: summary dict returned by ``spor_recover()``
    recovery: dict = field(default_factory=dict)
    #: mapper audit finding after the full post-recovery run (None = clean)
    audit: Optional[dict] = None
    #: invariant-checker report of the post-recovery phase
    check: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """Zero violations, zero stale reads, clean mapper audit."""
        return self.audit is None and self.check.get("violations", 0) == 0

    def to_dict(self) -> dict:
        return {
            "spor_at_us": self.spor_at_us,
            "issued_before": self.issued_before,
            "completed_before": self.completed_before,
            "lost_writes": self.lost_writes,
            "dropped_reads": self.dropped_reads,
            "remaining": self.remaining,
            "recovery": dict(self.recovery),
            "audit": self.audit,
            "clean": self.clean,
            "check": dict(self.check),
        }


def run_spor_campaign(
    config: SSDConfig,
    workload: Union[str, Trace],
    ftl: str = "cube",
    *,
    queue_depth: int = 32,
    prefill: float = 0.9,
    n_requests: int = 4000,
    seed: int = 7,
    check="on",
    **ftl_kwargs,
) -> SporReport:
    """Run a workload, cut power at ``config.faults.spor_at_us``,
    recover, and verify the recovered device end-to-end.

    ``store_oob`` and ``store_tags`` are forced on (recovery needs the
    OOB records, the oracle needs the tags), so page data carries
    per-write sequence numbers -- this harness verifies durability, not
    the performance of the plain datapath.
    """
    from repro.check import InvariantChecker, parse_check_level

    campaign = config.faults
    if campaign is None or campaign.spor_at_us is None:
        raise ValueError(
            "run_spor_campaign needs a fault campaign with spor_at_us set "
            "(e.g. get_campaign('spor'))"
        )
    spor_at_us = float(campaign.spor_at_us)
    check_config = parse_check_level(check or "on")
    sim_config = replace(config, store_oob=True, store_tags=True)
    if isinstance(workload, str):
        trace = build_workload(
            workload, sim_config.logical_pages, n_requests, seed=seed
        )
    else:
        trace = workload

    # -- phase 1: run to the cut ---------------------------------------
    checker1 = InvariantChecker(check_config)
    checker1.context.update(
        ftl=ftl, workload=trace.name, seed=seed, phase="pre-spor"
    )
    sim1 = SSDSimulation(
        sim_config, ftl=ftl, checker=checker1, **ftl_kwargs
    )
    if prefill > 0:
        sim1.prefill(prefill)
    engine = sim1.controller.engine
    requests = list(trace.requests)
    progress = {"issued": 0, "completed": 0}
    inflight = {}  # id(spec) -> (issue order, request)

    def on_complete(active, now_us: float) -> None:
        inflight.pop(id(active.spec), None)
        progress["completed"] += 1
        issue_next()

    def issue_next() -> None:
        if progress["issued"] >= len(requests):
            return
        request = requests[progress["issued"]]
        inflight[id(request)] = (progress["issued"], request)
        progress["issued"] += 1
        sim1.ftl.submit(request, on_complete)

    for _ in range(queue_depth):
        issue_next()
    engine.run(until=spor_at_us)

    # -- the cut: volatile state dies, media and shadow survive --------
    lost = sorted(inflight.values(), key=lambda item: item[0])
    lost_writes = [req for _order, req in lost if not req.is_read]
    dropped_reads = len(lost) - len(lost_writes)
    media = [chip.state_dict() for chip in sim1.controller.chips]
    shadow = checker1.oracle.shadow.state_dict()
    remaining = requests[progress["issued"]:]

    # -- phase 2: fresh controller, recover, replay, continue ----------
    checker2 = InvariantChecker(check_config)
    checker2.context.update(
        ftl=ftl, workload=trace.name, seed=seed, phase="post-spor"
    )
    sim2 = SSDSimulation(
        sim_config, ftl=ftl, checker=checker2, **ftl_kwargs
    )
    # no prefill: the media state below IS the device content
    for chip, chip_state in zip(sim2.controller.chips, media):
        chip.load_state_dict(chip_state)
    # the oracle keeps the complete pre-cut expectation: every acked
    # write must still be served correctly by the recovered device
    checker2.oracle.shadow.load_state_dict(shadow)
    recovery = sim2.ftl.spor_recover()

    if lost_writes:
        replay = Trace(
            name=trace.name,
            logical_pages=trace.logical_pages,
            requests=lost_writes,
        )
        sim2.run(replay, queue_depth=queue_depth)
    if remaining:
        rest = Trace(
            name=trace.name,
            logical_pages=trace.logical_pages,
            requests=remaining,
        )
        sim2.run(rest, queue_depth=queue_depth)

    audit = sim2.ftl.mapper.audit()
    report = checker2.finalize()
    return SporReport(
        spor_at_us=spor_at_us,
        issued_before=progress["issued"],
        completed_before=progress["completed"],
        lost_writes=len(lost_writes),
        dropped_reads=dropped_reads,
        remaining=len(remaining),
        recovery=recovery,
        audit=audit,
        check=report,
    )
