"""Fig. 5 -- horizontal intra-layer similarity.

Regenerates: (a)/(b) per-WL normalized BER on the four representative
h-layers at 1 K P/E + 1 mo and 2 K P/E + 1 yr; (c) Delta-H across blocks
under varying aging; (d) per-WL tPROG of one block.

Paper result: the four WLs of every h-layer are virtually equivalent
(Delta-H = 1), for every block and aging condition, and share the same
tPROG.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.characterization import experiments as exp
from repro.nand.reliability import AgingState

AGING_MID = AgingState(1000, 1.0)
AGING_EOL = AgingState(2000, 12.0)


def regenerate(study):
    lines = []
    for aging, label in [(AGING_MID, "1K P/E + 1-month"), (AGING_EOL, "2K P/E + 1-year")]:
        data = exp.fig5_intra_layer_ber(study, aging)
        rows = [
            [name, stats["layer"]]
            + [round(v, 3) for v in stats["normalized_ber"]]
            + [round(stats["delta_h"], 4)]
            for name, stats in data.items()
        ]
        lines.append(f"Fig 5(a/b) -- normalized BER per WL, {label}:")
        lines.append(
            format_table(["h-layer", "index", "WL1", "WL2", "WL3", "WL4", "dH"], rows)
        )
        lines.append("")
    delta_h = exp.fig5c_delta_h_over_blocks(
        study, [AgingState(1000, 1.0), AgingState(2000, 1.0), AGING_EOL]
    )
    rows = [
        [f"{pe} P/E, {ret} mo", round(s["mean"], 4), round(s["p99"], 4), round(s["max"], 4)]
        for (pe, ret), s in delta_h.items()
    ]
    lines.append("Fig 5(c) -- Delta-H across all sampled blocks:")
    lines.append(format_table(["condition", "mean", "p99", "max"], rows))
    lines.append("")
    t_prog = exp.fig5d_t_prog_per_wl(study)
    sample_layers = [0, 5, 24, 43, 47]
    rows = [[layer] + [round(t, 1) for t in t_prog[layer]] for layer in sample_layers]
    lines.append("Fig 5(d) -- tPROG (us) per WL (sample h-layers):")
    lines.append(format_table(["h-layer", "WL1", "WL2", "WL3", "WL4"], rows))
    return "\n".join(lines), data, delta_h, t_prog


def test_fig5_intra_layer_similarity(benchmark, study):
    text, data, delta_h, t_prog = benchmark.pedantic(
        lambda: regenerate(study), rounds=1, iterations=1
    )
    emit("fig05_intra_layer", text)
    # paper shape: Delta-H virtually 1 everywhere
    for stats in data.values():
        assert stats["delta_h"] < 1.03
    for condition in delta_h.values():
        assert condition["max"] < 1.06
    # tPROG identical within each h-layer
    assert all(np.ptp(t_prog[layer]) == 0 for layer in range(t_prog.shape[0]))
