"""Sudden-power-off recovery: the shadow-store oracle must see zero
stale reads after mapping rebuild + lost-window replay, and the
rebuilt mapping must pass ``PageMapper.audit()``."""

import dataclasses

import pytest

from repro.faults import get_campaign
from repro.nand.reliability import AgingState
from repro.persist import SporReport, run_spor_campaign
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation


def _config(spor_at_us=20_000.0, aged=False):
    campaign = dataclasses.replace(get_campaign("spor"), spor_at_us=spor_at_us)
    config = SSDConfig.small().with_faults(campaign)
    if aged:
        config = config.with_aging(AgingState(2000, 12.0))
    return config


class TestRecovery:
    @pytest.mark.parametrize("ftl", ["page", "vert", "cube", "oracle", "dftl"])
    def test_recovery_serves_zero_stale_reads(self, ftl):
        report = run_spor_campaign(
            _config(), "OLTP", ftl=ftl,
            n_requests=1200, seed=7, prefill=0.7,
        )
        assert isinstance(report, SporReport)
        assert report.check["violations"] == 0
        assert report.audit is None
        assert report.clean
        # the cut must actually have landed mid-run with work in flight
        assert 0 < report.completed_before < 1200
        assert report.issued_before >= report.completed_before

    def test_lost_window_is_replayed(self):
        report = run_spor_campaign(
            _config(), "OLTP", ftl="cube",
            n_requests=1200, seed=7, prefill=0.7,
        )
        lost = report.lost_writes + report.dropped_reads
        assert lost == report.issued_before - report.completed_before
        recovered = report.recovery
        assert recovered["mapped_lpns"] > 0
        assert recovered["oob_records"] >= recovered["mapped_lpns"]

    def test_aged_device_recovers(self):
        report = run_spor_campaign(
            _config(aged=True), "OLTP", ftl="cube",
            n_requests=1200, seed=7, prefill=0.7,
        )
        assert report.clean

    def test_dftl_dirty_cmt_at_cut_recovers(self):
        """Power cut while the CMT holds dirty entries: the cached
        mapping dies with RAM, but every acked write is rebuilt from
        data-page OOB, the GTD is rebuilt from translation-page OOB,
        and the lost window replays on top -- clean oracle, no stale
        reads, no lost acked data."""
        from repro.check import InvariantChecker, parse_check_level
        from repro.workloads import build_workload

        config = _config()
        # deterministic phase-1 probe (same seed/instant the campaign
        # replays): prove the chosen cut really lands mid-run with
        # dirty CMT entries, i.e. mappings newer than any durable
        # translation page
        sim_config = dataclasses.replace(
            config, store_oob=True, store_tags=True
        )
        checker = InvariantChecker(parse_check_level("on"))
        sim = SSDSimulation(sim_config, ftl="dftl", checker=checker)
        sim.prefill(0.7)
        trace = build_workload("OLTP", sim_config.logical_pages, 1200, seed=7)
        requests = list(trace.requests)
        progress = {"issued": 0}

        def on_complete(active, now_us):
            issue_next()

        def issue_next():
            if progress["issued"] >= len(requests):
                return
            request = requests[progress["issued"]]
            progress["issued"] += 1
            sim.ftl.submit(request, on_complete)

        for _ in range(32):
            issue_next()
        sim.controller.engine.run(until=20_000.0)
        assert any(sim.ftl._cmt.values()), (
            "cut instant has no dirty CMT entries; pick another instant"
        )

        report = run_spor_campaign(
            config, "OLTP", ftl="dftl",
            n_requests=1200, seed=7, prefill=0.7,
        )
        assert report.clean
        assert report.lost_writes > 0  # the window was non-trivial
        recovered = report.recovery
        assert recovered["trans_records"] > 0
        assert recovered["trans_pages"] > 0
        assert recovered["mapped_lpns"] > 0

    def test_report_serializes(self):
        report = run_spor_campaign(
            _config(), "OLTP", ftl="cube",
            n_requests=800, seed=3, prefill=0.6,
        )
        payload = report.to_dict()
        assert payload["spor_at_us"] == 20_000.0
        assert payload["check"]["violations"] == 0
        assert payload["clean"] is True


class TestGuards:
    def test_requires_spor_instant(self):
        with pytest.raises(ValueError, match="spor_at_us"):
            run_spor_campaign(SSDConfig.small(), "OLTP", n_requests=100)

    def test_spor_recover_requires_oob(self):
        sim = SSDSimulation(SSDConfig.small(), ftl="cube")
        with pytest.raises(RuntimeError, match="store_oob"):
            sim.ftl.spor_recover()

    def test_spor_recover_requires_fresh_ftl(self):
        config = dataclasses.replace(
            SSDConfig.small(), store_oob=True, store_tags=True
        )
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(0.3)
        with pytest.raises(RuntimeError, match="fresh"):
            sim.ftl.spor_recover()
