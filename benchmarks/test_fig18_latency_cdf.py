"""Fig. 18 -- I/O latency distributions under Rocks (fresh state).

Regenerates the write- and read-latency CDFs of pageFTL, vertFTL,
cubeFTL, and cubeFTL- (WAM disabled) under the RocksDB workload on fresh
blocks.

Paper shape: cubeFTL and cubeFTL- both serve writes much faster than
pageFTL (p90 0.72 ms vs 1.10 ms, about 1.5x); cubeFTL additionally beats
cubeFTL- at the upper percentiles because the WAM absorbs compaction
bursts with follower WLs; reads also improve (less blocking behind
writes), even though no read retries occur fresh.
"""

import pytest

from benchmarks.conftest import emit
from benchmarks.runner import run_one
from repro.analysis.tables import format_table
from repro.nand.reliability import AgingState

FTLS = ["page", "vert", "cube", "cube-"]
PERCENTILES = (50, 80, 90, 95, 99)


@pytest.fixture(scope="module")
def fig18(bench_ssd_config):
    return {
        ftl: run_one(bench_ssd_config, ftl, "Rocks", AgingState(0, 0.0))
        for ftl in FTLS
    }


def _render(results):
    lines = ["Fig 18(a) -- write latency percentiles (us), Rocks, fresh:"]
    rows = [
        [stats.ftl_name]
        + [round(stats.write_latency.percentile(p)) for p in PERCENTILES]
        for stats in results.values()
    ]
    lines.append(format_table(["FTL"] + [f"p{p}" for p in PERCENTILES], rows))
    lines.append("")
    lines.append("Fig 18(b) -- read latency percentiles (us), Rocks, fresh:")
    rows = [
        [stats.ftl_name]
        + [round(stats.read_latency.percentile(p)) for p in PERCENTILES]
        for stats in results.values()
    ]
    lines.append(format_table(["FTL"] + [f"p{p}" for p in PERCENTILES], rows))
    return "\n".join(lines)


def test_fig18_latency_cdfs(benchmark, fig18):
    results = benchmark.pedantic(lambda: fig18, rounds=1, iterations=1)
    emit("fig18_latency_cdf", _render(results))
    page_w = results["page"].write_latency
    cube_w = results["cube"].write_latency
    cube_minus_w = results["cube-"].write_latency

    # cubeFTL's p90 write latency is far below pageFTL's (paper: ~1.53x)
    assert page_w.percentile(90) / cube_w.percentile(90) > 1.15
    # the WAM helps at the upper percentiles: cubeFTL <= cubeFTL- at p80+
    assert cube_w.percentile(80) <= cube_minus_w.percentile(80) * 1.02
    assert cube_w.percentile(95) <= cube_minus_w.percentile(95) * 1.02
    # both PS-aware variants beat the PS-unaware baselines everywhere
    for p in (50, 80, 90):
        assert cube_w.percentile(p) < page_w.percentile(p)
        assert cube_w.percentile(p) < results["vert"].write_latency.percentile(p)
    # reads improve too (less blocking behind slow writes)
    assert results["cube"].read_latency.percentile(90) <= (
        results["page"].read_latency.percentile(90)
    )
