"""Workload generation: the paper's six traces, building-block
generators, and recorded block traces.

Four Filebench personalities (Mail, Web, Proxy, OLTP) and two YCSB-A
database workloads (Rocks = RocksDB, Mongo = MongoDB).  Since the
original traces are not distributable, each generator synthesizes a
request stream reproducing the workload's documented read/write mix,
request sizes, locality, and burstiness -- the properties that drive the
FTL comparison.  The building-block generators (uniform, sequential,
zipf) are registered too so parameterized streams (e.g. a ``zipf``
stream with a custom ``theta`` skew) compose into sweeps and tenant
mixes without new code.

Anywhere a workload name is accepted, a ``trace:<path>`` scheme loads a
recorded trace instead: ``.csv`` paths route through
:func:`repro.workloads.blocktrace.load_block_trace` (MSR-Cambridge /
blktrace-style), anything else through the native
:func:`repro.workloads.traceio.load_trace` text format.
"""

import warnings

from repro.workloads.base import IORequest, Trace, trace_summary, with_arrivals
from repro.workloads.blocktrace import BlockTraceError, load_block_trace
from repro.workloads.synthetic import (
    mixed_trace,
    sequential_trace,
    uniform_random_trace,
    zipf_trace,
)
from repro.workloads.filebench import mail_trace, oltp_trace, proxy_trace, web_trace
from repro.workloads.traceio import load_trace, save_trace
from repro.workloads.ycsb import mongo_trace, rocks_trace

#: workload name -> generator.  Every generator takes ``(logical_pages,
#: n_requests, seed=..., **params)``; the extra keyword params are
#: forwarded verbatim (e.g. ``theta`` for ``zipf``, ``read_fraction``
#: for ``uniform``), so registry entries are parameterizable rather
#: than fixed 4-arg shapes.
WORKLOAD_GENERATORS = {
    "Mail": mail_trace,
    "Web": web_trace,
    "Proxy": proxy_trace,
    "OLTP": oltp_trace,
    "Rocks": rocks_trace,
    "Mongo": mongo_trace,
    "uniform": uniform_random_trace,
    "sequential": sequential_trace,
    "zipf": zipf_trace,
}

#: the six workload mixes evaluated in the paper (Section 6.1) -- the
#: building-block generators in the registry are not among them
PAPER_WORKLOADS = ("Mail", "Web", "Proxy", "OLTP", "Rocks", "Mongo")

#: prefix marking a workload "name" as a recorded-trace path
TRACE_SCHEME = "trace:"


def available_workloads() -> "list[str]":
    """Registered workload names, sorted (the ``trace:<path>`` scheme is
    additionally accepted everywhere these names are)."""
    return sorted(WORKLOAD_GENERATORS)


def is_trace_path(name: str) -> bool:
    """True when a workload name is a ``trace:<path>`` reference."""
    return name.startswith(TRACE_SCHEME)


def _load_trace_scheme(name: str, logical_pages: int, **params) -> Trace:
    path = name[len(TRACE_SCHEME):]
    if not path:
        raise ValueError("empty path in 'trace:' workload name")
    if path.endswith(".csv"):
        return load_block_trace(path, logical_pages, **params)
    if params:
        raise ValueError(
            f"workload params {sorted(params)} are only supported for "
            ".csv block traces; the native trace format takes none"
        )
    return load_trace(path)


def build_workload(
    name: str,
    logical_pages: int,
    n_requests: int = None,
    seed: int = 1,
    **params,
) -> Trace:
    """Build a workload by registry name or ``trace:<path>`` reference.

    The imperative core behind :meth:`repro.specs.WorkloadSpec.build`;
    extra keyword ``params`` are forwarded to the generator (e.g.
    ``theta=1.2`` for ``zipf``) or to
    :func:`~repro.workloads.blocktrace.load_block_trace` for ``.csv``
    trace references.  ``n_requests`` is ignored for ``trace:`` names
    (the file's length wins).
    """
    if is_trace_path(name):
        return _load_trace_scheme(name, logical_pages, **params)
    if n_requests is None:
        raise TypeError("build_workload requires n_requests for generated workloads")
    try:
        generator = WORKLOAD_GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {available_workloads()} "
            "or a 'trace:<path>' reference"
        ) from None
    return generator(logical_pages, n_requests, seed=seed, **params)


def make_workload(
    name: str, logical_pages: int, n_requests: int = None, seed: int = 1, **params
) -> Trace:
    """Deprecated positional shim kept for old call sites.

    .. deprecated::
        Use :meth:`repro.specs.WorkloadSpec.build` (declarative,
        serializes into spec files) or :func:`build_workload` (the
        imperative core) instead.
    """
    warnings.warn(
        "make_workload(name, logical_pages, n_requests, seed) is "
        "deprecated; build workloads through repro.specs.WorkloadSpec "
        "(or repro.workloads.build_workload)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_workload(name, logical_pages, n_requests, seed=seed, **params)


__all__ = [
    "IORequest",
    "Trace",
    "trace_summary",
    "with_arrivals",
    "uniform_random_trace",
    "sequential_trace",
    "zipf_trace",
    "mixed_trace",
    "mail_trace",
    "web_trace",
    "proxy_trace",
    "oltp_trace",
    "mongo_trace",
    "rocks_trace",
    "save_trace",
    "load_trace",
    "load_block_trace",
    "BlockTraceError",
    "WORKLOAD_GENERATORS",
    "PAPER_WORKLOADS",
    "TRACE_SCHEME",
    "available_workloads",
    "is_trace_path",
    "build_workload",
    "make_workload",
]
