"""Tests for the deterministic-latency extension (paper Section 8)."""

import pytest

from repro.core.latency_predictor import LatencyPredictor, PredictionStats
from repro.core.opm import OptimalParameterManager


@pytest.fixture
def setup(quiet_chip):
    opm = OptimalParameterManager(quiet_chip.ispp)
    predictor = LatencyPredictor(opm, quiet_chip.timing)
    return quiet_chip, opm, predictor


class TestPredictionStats:
    def test_empty(self):
        stats = PredictionStats()
        assert stats.mean_abs_error_us == 0.0
        assert stats.exact_fraction == 0.0
        assert len(stats) == 0

    def test_accounting(self):
        stats = PredictionStats()
        stats.record(100.0, 100.5)
        stats.record(100.0, 120.0)
        assert len(stats) == 2
        assert stats.mean_abs_error_us == pytest.approx(10.25)
        assert stats.exact_fraction == 0.5
        assert stats.percentile_abs_error(100) == pytest.approx(20.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PredictionStats().record(-1.0, 0.0)


class TestProgramPrediction:
    def test_unmonitored_layer_unpredictable(self, setup):
        _chip, _opm, predictor = setup
        assert predictor.predict_program_us(0, 0, 10) is None

    def test_follower_predicted_exactly(self, setup):
        """The core deterministic-latency claim: once the leader is
        monitored, follower tPROG is known in advance, exactly."""
        chip, opm, predictor = setup
        for layer in (5, 20, 43):
            leader = chip.program_wl(0, layer, 0)
            opm.record_leader(0, 0, layer, leader)
            predicted = predictor.predict_program_us(0, 0, layer)
            params = opm.follower_params(0, 0, layer)
            for wl in (1, 2, 3):
                actual = chip.program_wl(0, layer, wl, params=params)
                assert actual.t_prog_us == pytest.approx(predicted, abs=1e-9)

    def test_prediction_does_not_distort_counters(self, setup):
        chip, opm, predictor = setup
        opm.record_leader(0, 0, 10, chip.program_wl(0, 10, 0))
        before = opm.follower_program_count
        predictor.predict_program_us(0, 0, 10)
        assert opm.follower_program_count == before

    def test_default_estimate_is_nominal(self, setup):
        chip, _opm, predictor = setup
        assert predictor.predict_program_default_us() == pytest.approx(
            chip.ispp.default_t_prog_us(0.0)
        )

    def test_ps_unaware_estimate_misses_slow_layers(self, setup):
        """Without PS the datasheet number is wrong on slow layers --
        exactly the tail the paper's Section 8 wants to eliminate."""
        chip, opm, predictor = setup
        kappa = chip.reliability.layer_kappa
        actual = chip.program_wl(0, kappa, 0)
        naive_error = abs(actual.t_prog_us - predictor.predict_program_default_us())
        assert naive_error > 30.0  # tens of microseconds off


class TestReadPrediction:
    def test_fresh_read_predicted_exactly(self, setup):
        chip, _opm, predictor = setup
        chip.program_wl(0, 10, 0)
        predicted = predictor.predict_read_us(0, 0, 10)
        actual = chip.read_page(0, 10, 0, 0)
        assert actual.t_read_us == pytest.approx(predicted)

    def test_recording(self, setup):
        _chip, _opm, predictor = setup
        predictor.record_program(100.0, 100.0)
        predictor.record_read(80.0, 80.0)
        assert len(predictor.program_stats) == 1
        assert len(predictor.read_stats) == 1
