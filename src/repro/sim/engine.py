"""A minimal, fast discrete-event engine.

Time is a float in microseconds (matching :mod:`repro.nand.timing`).
Events are callbacks scheduled at absolute times; ties break by insertion
order so the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

#: lazy-deletion compaction threshold: the heap is rebuilt (cancelled
#: events dropped) once at least this many cancelled events are queued
#: *and* they make up at least half the heap.  Compaction never changes
#: the pop order -- (time, seq) is a strict total order, so any valid
#: heap over the same live events drains identically.
COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback.  Cancel via :meth:`cancel`."""

    __slots__ = ("time", "seq", "callback", "cancelled", "engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: owning engine while the event sits in its queue; cleared on
        #: pop so a late cancel of an already-fired event is a no-op
        self.engine = engine

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.engine is not None:
            self.engine._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class RecurringEvent:
    """A self-rescheduling periodic callback (metrics sampling).

    The callback re-arms only while *other* events remain queued, so a
    recurring event can never keep the engine alive on its own or
    advance the clock past the last real event; :meth:`stop` cancels
    the pending occurrence without disturbing the queue order.
    """

    __slots__ = ("engine", "interval", "callback", "event", "stopped")

    def __init__(self, engine: "Engine", interval: float, callback: Callable[[], None]) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.engine = engine
        self.interval = interval
        self.callback = callback
        self.stopped = False
        self.event = engine.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self.stopped:
            return
        self.callback()
        # re-arm only while a *live* event remains: ``pending`` counts
        # cancelled events still in the heap, so gating on it would keep
        # the sampler alive on a queue of corpses and advance the clock
        # past the last real event
        if self.engine.live_pending > 0:
            self.event = self.engine.schedule(self.interval, self._fire)
        else:
            self.event = None

    def stop(self) -> None:
        self.stopped = True
        if self.event is not None:
            self.event.cancel()
            self.event = None


class Engine:
    """Event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[Event] = []
        self._processed = 0
        self._peak_pending = 0
        self._cancelled = 0
        self._compactions = 0
        #: optional per-event observer (the runtime invariant checker's
        #: clock-monotonicity probe).  Called with the dispatch time of
        #: every executed event; ``None`` (the default) costs one
        #: pointer test per event.
        self.monitor: Optional[Callable[[float], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def live_pending(self) -> int:
        """Number of queued events that will actually fire."""
        return len(self._queue) - self._cancelled

    @property
    def compactions(self) -> int:
        """Lazy-deletion heap rebuilds performed (telemetry)."""
        return self._compactions

    def _note_cancel(self) -> None:
        """One queued event was cancelled; compact the heap when corpses
        dominate it (lazy deletion keeps cancellation itself O(1)).

        Compaction mutates the queue list in place: the batched run loop
        holds a local alias to it across callbacks, and a cancel inside
        a callback must not strand that alias on a stale list.
        """
        self._cancelled += 1
        if (
            self._cancelled >= COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._queue)
        ):
            self._queue[:] = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0
            self._compactions += 1

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def peak_pending(self) -> int:
        """Largest number of *live* queued events observed (telemetry).

        Cancelled corpses still sitting in the heap are excluded: the
        peak measures simulated load, and must not depend on when lazy
        deletion happened to compact the queue.
        """
        return self._peak_pending

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        event = Event(self._now + delay, self._seq, callback, self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        live = len(self._queue) - self._cancelled
        if live > self._peak_pending:
            self._peak_pending = live
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute time (>= now)."""
        if time < self._now:
            raise ValueError("cannot schedule in the past")
        event = Event(time, self._seq, callback, self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        live = len(self._queue) - self._cancelled
        if live > self._peak_pending:
            self._peak_pending = live
        return event

    def every(self, interval: float, callback: Callable[[], None]) -> RecurringEvent:
        """Run ``callback`` every ``interval`` microseconds while other
        *live* events remain queued (observability hooks ride on this);
        cancelled events never keep a recurring callback alive."""
        return RecurringEvent(self, interval, callback)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.engine = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self._processed += 1
            if self.monitor is not None:
                self.monitor(event.time)
            event.callback()
            return True
        return False

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable engine state, capturable only at quiescence.

        Event callbacks are closures over live simulation objects and do
        not serialize; the checkpoint protocol therefore only snapshots
        the engine once the queue has fully drained (a *quiescent
        barrier* -- see :mod:`repro.persist`), at which point the clock
        and the bookkeeping scalars are the entire state.
        """
        if self.live_pending != 0:
            raise RuntimeError(
                f"engine not quiescent: {self.live_pending} live events "
                "still queued (checkpoints only happen at drained instants)"
            )
        return {
            "now": self._now,
            "seq": self._seq,
            "processed": self._processed,
            "peak_pending": self._peak_pending,
            "compactions": self._compactions,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto an empty engine."""
        if self._queue:
            raise RuntimeError("cannot restore state onto a non-empty engine")
        self._now = state["now"]
        self._seq = state["seq"]
        self._processed = state["processed"]
        self._peak_pending = state["peak_pending"]
        self._compactions = state["compactions"]
        self._cancelled = 0

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        profiler=None,
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        When a :class:`~repro.obs.profile.WallClockProfiler` is passed,
        host wall-clock time is attributed per event: heap maintenance
        to ``event_queue`` and callback execution to ``dispatch`` (minus
        any nested sections -- the NAND model and the tracer push their
        own, so ``dispatch`` is effectively FTL + engine-glue time).
        The event sequence is identical with or without a profiler.

        The unprofiled loop drains *runs of same-timestamp events* in
        one iteration: within a batch the clock, the ``until`` bound and
        the heap head need no re-checking per event.  (time, seq) is a
        strict total order and the batch always pops the minimum, so the
        dispatch sequence -- including zero-delay events a callback
        schedules back at the batch timestamp -- is byte-identical to
        the one-event-at-a-time loop.

        On the ``max_events`` return path any *leading cancelled
        corpses* are drained first, so a caller running in segments
        (checkpointing) never observes a clock stalled behind ``until``
        by events that will never fire.
        """
        if profiler is not None:
            return self._run_profiled(until, max_events, profiler)
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if max_events is not None and executed >= max_events:
                self._drain_corpses(until)
                return
            head = queue[0]
            if head.cancelled:
                pop(queue)
                head.engine = None
                self._cancelled -= 1
                continue
            batch_time = head.time
            if until is not None and batch_time > until:
                self._now = until
                return
            self._now = batch_time
            while queue and queue[0].time == batch_time:
                event = pop(queue)
                event.engine = None
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._processed += 1
                if self.monitor is not None:
                    self.monitor(batch_time)
                event.callback()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        if until is not None and until > self._now:
            self._now = until

    def _drain_corpses(self, until: Optional[float]) -> None:
        """Pop leading cancelled events off the heap; advance the clock
        to ``until`` when nothing live remains before it.

        Called on the ``max_events`` return path: without it, a queue
        whose remaining events are all cancelled corpses would leave
        ``now`` stuck at the last executed event even though the run has
        effectively drained.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            event = heapq.heappop(queue)
            event.engine = None
            self._cancelled -= 1
        if (
            until is not None
            and until > self._now
            and (not queue or queue[0].time > until)
        ):
            self._now = until

    def _run_profiled(
        self,
        until: Optional[float],
        max_events: Optional[int],
        profiler,
    ) -> None:
        """The :meth:`run` loop with per-event wall-clock attribution."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                profiler.push("event_queue")
                self._drain_corpses(until)
                profiler.pop()
                return
            profiler.push("event_queue")
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.engine = None
                self._cancelled -= 1
                profiler.pop()
                continue
            if until is not None and head.time > until:
                self._now = until
                profiler.pop()
                return
            event = heapq.heappop(self._queue)
            event.engine = None
            self._now = event.time
            self._processed += 1
            if self.monitor is not None:
                self.monitor(event.time)
            profiler.pop()
            profiler.push("dispatch")
            try:
                event.callback()
            finally:
                profiler.pop()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
