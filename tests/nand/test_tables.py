"""Metamorphic suite: precomputed tables == direct scalar evaluation.

The fast path (:mod:`repro.nand.tables`) is only allowed to exist
because it is *bitwise identical* to the scalar device model.  These
tests assert that contract exhaustively over the full (h-layer x WL x
aging-epoch) domain, through every consumer surface: the vectorized
hash, the per-block tables, and the chip's program/read results across
all retry offset hints, erase-epoch transitions, baseline-aging changes
and checkpoint restores.
"""

import numpy as np
import pytest

from repro.nand.chip import NandChip
from repro.nand.geometry import BlockGeometry
from repro.nand.read_retry import MAX_OFFSET, ReadParams, ReadRetryModel
from repro.nand.reliability import AgingState, ReliabilityModel, hash_unit
from repro.nand.tables import FastPathTables, hash_unit_array

#: the paper's aging sweep: fresh, end-of-life cycling, and end-of-life
#: cycling plus one year of retention
AGING_EPOCHS = [
    AgingState(),
    AgingState(2000, 0.0),
    AgingState(2000, 1.0),
    AgingState(2000, 12.0),
]

GEOMETRY = BlockGeometry(n_layers=10, wls_per_layer=4, pages_per_wl=3)


class TestHashUnitArray:
    @pytest.mark.parametrize("seed", [0, 7, 0xDEADBEEF])
    def test_bitwise_identical_to_scalar_hash(self, seed):
        layers = np.arange(GEOMETRY.n_layers, dtype=np.uint64)[:, None]
        wls = np.arange(GEOMETRY.wls_per_layer, dtype=np.uint64)[None, :]
        grid = hash_unit_array(seed, 0x57A7, 3, 17, layers, wls, 20, 120)
        for layer in range(GEOMETRY.n_layers):
            for wl in range(GEOMETRY.wls_per_layer):
                scalar = hash_unit(seed, 0x57A7, 3, 17, layer, wl, 20, 120)
                assert grid[layer, wl] == scalar

    def test_scalar_only_keys_degenerate_to_scalar_hash(self):
        assert hash_unit_array(5, 1, 2, 3) == hash_unit(5, 1, 2, 3)

    def test_trailing_scalar_keys_after_arrays(self):
        keys = np.arange(6, dtype=np.uint64)
        grid = hash_unit_array(9, keys, 42)
        for i in range(6):
            assert grid[i] == hash_unit(9, i, 42)


class TestBlockTables:
    def _chip(self, aging, **kwargs):
        chip = NandChip(
            chip_id=2, n_blocks=3, geometry=GEOMETRY, store_tags=False,
            fast_path=True, **kwargs,
        )
        chip.set_baseline_aging(aging)
        return chip

    @pytest.mark.parametrize("aging", AGING_EPOCHS, ids=str)
    def test_tables_match_direct_evaluation(self, aging):
        chip = self._chip(aging)
        reliability = chip.reliability
        retry = chip.retry_model
        for block in range(chip.n_blocks):
            tables = chip._fast.block(block)
            block_aging = chip.block_aging(block)
            fresh = chip._fresh_aging(chip.block_pe(block))
            for layer in range(GEOMETRY.n_layers):
                assert tables.stable_opt[layer] == retry.stable_optimal(
                    chip.chip_id, block, layer, block_aging
                )
                for wl in range(GEOMETRY.wls_per_layer):
                    assert tables.wl_ber[layer][wl] == reliability.wl_ber(
                        chip.chip_id, block, layer, wl, block_aging
                    )
                    assert tables.wl_ber_fresh[layer][wl] == reliability.wl_ber(
                        chip.chip_id, block, layer, wl, fresh
                    )
                    assert tables.ep1[layer][wl] == reliability.ber_ep1(
                        chip.chip_id, block, layer, wl, block_aging
                    )

    def test_erase_epoch_transition_invalidates(self):
        chip = self._chip(AgingState(2000, 1.0))
        before = chip._fast.block(0)
        chip.erase_block(0)
        after = chip._fast.block(0)
        assert after is not before
        # and the rebuilt surface matches the new epoch's direct values
        new_aging = chip.block_aging(0)
        assert after.wl_ber[1][1] == chip.reliability.wl_ber(
            chip.chip_id, 0, 1, 1, new_aging
        )

    def test_set_baseline_aging_invalidates(self):
        chip = self._chip(AgingState())
        chip._fast.block(1)
        chip.set_baseline_aging(AgingState(2000, 12.0))
        assert chip._fast._cache == {}
        tables = chip._fast.block(1)
        assert tables.wl_ber[0][0] == chip.reliability.wl_ber(
            chip.chip_id, 1, 0, 0, chip.block_aging(1)
        )

    def test_load_state_dict_invalidates(self):
        chip = self._chip(AgingState(2000, 1.0))
        chip.program_wl(0, 0, 0)
        chip._fast.block(0)
        state = chip.state_dict()
        chip.erase_block(0)
        chip.load_state_dict(state)
        assert chip._fast._cache == {}
        assert chip.programmed_wl_count(0) == 1


class TestChipFastSlowEquivalence:
    """End-to-end: a fast-path chip and a scalar chip produce identical
    program/read results over every (h-layer x WL x aging x offset-hint)
    combination, including across erase epochs."""

    def _pair(self, aging):
        chips = []
        for fast in (True, False):
            chip = NandChip(
                chip_id=1, n_blocks=2, geometry=GEOMETRY, store_tags=False,
                fast_path=fast,
            )
            chip.set_baseline_aging(aging)
            chips.append(chip)
        return chips

    @pytest.mark.parametrize("aging", AGING_EPOCHS, ids=str)
    def test_program_and_read_identical(self, aging):
        fast, slow = self._pair(aging)
        for chip in (fast, slow):
            results = []
            for layer in range(GEOMETRY.n_layers):
                for wl in range(GEOMETRY.wls_per_layer):
                    pr = chip.program_wl(0, layer, wl)
                    results.append(
                        (pr.t_prog_us, pr.post_program_ber, pr.ber_ep1,
                         pr.env_shift)
                    )
                    for hint in range(MAX_OFFSET + 1):
                        rr = chip.read_page(
                            0, layer, wl, 0, ReadParams(offset_hint=hint)
                        )
                        results.append(
                            (rr.t_read_us, rr.num_retry, rr.final_offset,
                             rr.ber, rr.correctable, rr.t_retry_us)
                        )
            chip.results = results
        assert fast.results == slow.results

    def test_identical_across_erase_epochs(self):
        fast, slow = self._pair(AgingState(2000, 1.0))
        for chip in (fast, slow):
            results = []
            for _ in range(3):  # three erase epochs of block 0
                pr = chip.program_wl(0, 2, 1)
                rr = chip.read_page(0, 2, 1, 0)
                results.append(
                    (pr.post_program_ber, pr.ber_ep1, rr.ber, rr.num_retry,
                     rr.final_offset)
                )
                chip.erase_block(0)
            chip.results = results
        assert fast.results == slow.results

    def test_env_default_enables_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        chip = NandChip(geometry=GEOMETRY)
        assert isinstance(chip._fast, FastPathTables)
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        chip = NandChip(geometry=GEOMETRY)
        assert chip._fast is None


class TestTransientOptimal:
    def test_read_optimal_delegates_to_transient_optimal(self):
        reliability = ReliabilityModel(GEOMETRY, seed=3)
        model = ReadRetryModel(reliability)
        aging = AgingState(2000, 6.0)
        for layer in range(GEOMETRY.n_layers):
            stable = model.stable_optimal(0, 1, layer, aging)
            for nonce in range(50):
                assert model.read_optimal(0, 1, layer, aging, nonce) == (
                    model.transient_optimal(0, 1, layer, stable, aging, nonce)
                )

    def test_fresh_short_circuit_preserved(self):
        reliability = ReliabilityModel(GEOMETRY, seed=3)
        model = ReadRetryModel(reliability)
        fresh = AgingState()
        for nonce in range(20):
            assert model.transient_optimal(0, 0, 0, 0, fresh, nonce) == 0
