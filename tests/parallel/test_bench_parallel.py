"""End-to-end determinism: serial vs ``--jobs 4`` BENCH snapshots.

Runs the real ``tools/bench.py`` entry point twice in subprocesses (the
parallel path spawns workers, so the script must run as a real file, not
an importlib-loaded module) and asserts the canonical snapshots are
*byte-for-byte* identical -- the tentpole reproducibility guarantee.
"""

import json
import os
import subprocess
import sys

import pytest

from tests.helpers.determinism import assert_files_identical, file_bytes

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BENCH = os.path.join(REPO_ROOT, "tools", "bench.py")


def _run_bench(out, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, BENCH, "--smoke", "--canonical", "--out", out, *extra],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.slow
def test_serial_and_jobs4_snapshots_are_byte_identical(tmp_path):
    serial_path = str(tmp_path / "serial.json")
    parallel_path = str(tmp_path / "parallel.json")
    serial = _run_bench(serial_path)
    assert serial.returncode == 0, serial.stderr
    parallel = _run_bench(parallel_path, "--jobs", "4")
    assert parallel.returncode == 0, parallel.stderr

    assert_files_identical(serial_path, parallel_path, "serial vs --jobs 4")

    # sanity: the snapshot is real (all cases present, simulated metrics in)
    document = json.loads(file_bytes(serial_path))
    assert document["canonical"] is True
    assert len(document["cases"]) == 6
    assert all("wall_clock_s" not in case for case in document["cases"])
    assert all(case["iops"] > 0 for case in document["cases"])
