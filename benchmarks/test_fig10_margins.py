"""Fig. 10 -- V_start/V_final adjustment margins over different h-layers.

Regenerates: (a) the maximum safe window adjustment of each
representative h-layer (fresh vs. end of life); (b) BER growth as the
window is tightened.

Paper result: good layers afford large margins, bad layers small ones;
margins shrink with aging; BER grows monotonically past the margin.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.characterization import experiments as exp
from repro.nand.reliability import AgingState, ReliabilityModel


def regenerate():
    reliability = ReliabilityModel()
    fresh = exp.fig10_adjustment_margins(reliability, AgingState(0, 0))
    aged = exp.fig10_adjustment_margins(reliability, AgingState(2000, 12.0))
    lines = ["Fig 10(a) -- max safe window adjustment per h-layer (mV):"]
    rows = [
        [name, fresh[name]["layer"], round(fresh[name]["max_safe_margin_mv"]),
         round(aged[name]["max_safe_margin_mv"])]
        for name in ("alpha", "beta", "kappa", "omega")
    ]
    lines.append(format_table(["h-layer", "index", "fresh", "2K+1yr"], rows))
    curve = exp.fig10b_ber_vs_margin()
    lines.append("")
    lines.append("Fig 10(b) -- BER multiplier vs window adjustment:")
    rows = [[f"{margin} mV", round(multiplier, 3)] for margin, multiplier in curve.items()]
    lines.append(format_table(["adjustment", "BER multiplier"], rows))
    return "\n".join(lines), fresh, aged, curve


def test_fig10_adjustment_margins(benchmark):
    text, fresh, aged, curve = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("fig10_margins", text)
    assert fresh["beta"]["max_safe_margin_mv"] > fresh["kappa"]["max_safe_margin_mv"]
    for name in ("alpha", "beta", "kappa", "omega"):
        assert aged[name]["max_safe_margin_mv"] < fresh[name]["max_safe_margin_mv"]
    values = [curve[m] for m in sorted(curve)]
    assert values == sorted(values)
