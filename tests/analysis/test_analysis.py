"""Tests for analysis helpers."""

import pytest

from repro.analysis.distributions import cdf_points, histogram, percentile_table
from repro.analysis.tables import format_table, normalized_iops_table


class TestDistributions:
    def test_cdf_points(self):
        values, fractions = cdf_points([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_empty(self):
        values, fractions = cdf_points([])
        assert len(values) == 0 and len(fractions) == 0

    def test_histogram(self):
        assert histogram([0, 0, 2, 3]) == [2, 0, 1, 1]

    def test_histogram_padded(self):
        assert histogram([1], max_value=3) == [0, 1, 0, 0]

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            histogram([-1])

    def test_histogram_empty(self):
        assert histogram([]) == []

    def test_percentile_table(self):
        table = percentile_table(list(range(101)), percentiles=(50, 90))
        assert table[50] == 50.0
        assert table[90] == 90.0

    def test_percentile_table_empty(self):
        assert percentile_table([], percentiles=(50,)) == {50: 0.0}


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text
        assert "30" in text

    def test_normalized_iops_table(self):
        results = {
            "OLTP": {"pageFTL": 100.0, "cubeFTL": 148.0},
            "Web": {"pageFTL": 200.0, "cubeFTL": 220.0},
        }
        text = normalized_iops_table(results)
        assert "1.48" in text
        assert "1.10" in text
        assert "OLTP" in text

    def test_normalized_iops_table_missing_baseline(self):
        with pytest.raises(ValueError):
            normalized_iops_table({"X": {"cubeFTL": 1.0}})
