"""Tests for wear tracking and wear-aware allocation."""


import pytest

from repro.ftl.blockmgr import BlockManager
from repro.ftl.wear import chip_wear_stats, min_wear_selector, wear_imbalance
from repro.nand.chip import NandChip
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.synthetic import uniform_random_trace


class TestWearStats:
    def test_fresh_chip_no_spread(self):
        chip = NandChip(n_blocks=8, env_shift_prob=0.0)
        stats = chip_wear_stats(chip)
        assert stats.min_pe == stats.max_pe == 0
        assert stats.spread == 0

    def test_spread_after_skewed_erases(self):
        chip = NandChip(n_blocks=8, env_shift_prob=0.0)
        for _ in range(5):
            chip.erase_block(0)
        stats = chip_wear_stats(chip)
        assert stats.max_pe == 5
        assert stats.spread == 5
        assert stats.mean_pe == pytest.approx(5 / 8)

    def test_imbalance_over_chips(self):
        a = NandChip(chip_id=0, n_blocks=4, env_shift_prob=0.0)
        b = NandChip(chip_id=1, n_blocks=4, env_shift_prob=0.0)
        b.erase_block(2)
        b.erase_block(2)
        assert wear_imbalance([a, b]) == 2

    def test_imbalance_requires_chips(self):
        with pytest.raises(ValueError):
            wear_imbalance([])


class TestWearAwareSelection:
    def test_selector_prefers_least_worn(self, ssd_geometry):
        chip = NandChip(n_blocks=ssd_geometry.blocks_per_chip, env_shift_prob=0.0)
        manager = BlockManager(ssd_geometry)
        # wear block 0 heavily, block 1 lightly
        for _ in range(4):
            chip.erase_block(0)
        chip.erase_block(1)
        taken = manager.take_free(0, key=min_wear_selector(chip))
        assert chip.block_pe(taken) == 0  # an unworn block wins

    def test_fifo_without_key(self, ssd_geometry):
        manager = BlockManager(ssd_geometry)
        assert manager.take_free(0) == 0
        assert manager.take_free(0) == 1

    def test_wear_leveling_reduces_spread_end_to_end(self):
        """Under GC-heavy overwrites, wear-aware allocation keeps the
        per-chip erase spread lower than FIFO recycling."""
        spreads = {}
        for wear_aware in (True, False):
            config = SSDConfig.small(
                logical_fraction=0.6,
                gc_trigger_blocks=3,
                wear_aware_allocation=wear_aware,
            )
            sim = SSDSimulation(config, ftl="page")
            sim.prefill(1.0)
            trace = uniform_random_trace(
                config.logical_pages, 2500, read_fraction=0.1, seed=5
            )
            stats = sim.run(trace, queue_depth=8)
            assert stats.counters.erases > 0
            spreads[wear_aware] = wear_imbalance(sim.controller.chips)
        assert spreads[True] <= spreads[False]
