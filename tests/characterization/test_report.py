"""Tests for the characterization report generator and CLI hooks."""

import json

import pytest

from repro.characterization.harness import CharacterizationStudy, StudyConfig
from repro.characterization.report import build_report
from repro.cli import main


@pytest.fixture(scope="module")
def report():
    study = CharacterizationStudy(StudyConfig(n_chips=1, blocks_per_chip=2))
    return build_report(study)


class TestBuildReport:
    def test_has_all_sections(self, report):
        for heading in (
            "Intra-layer similarity",
            "Inter-layer variability",
            "Per-block Delta-V spread",
            "Safe verify skips",
            "S_M -> window margin",
            "Program-order reliability",
            "PS-aware read-retry reduction",
        ):
            assert heading in report

    def test_reports_study_scope(self, report):
        assert "chips: 1" in report
        assert "blocks: 2" in report

    def test_contains_key_numbers(self, report):
        assert "Delta-H" in report
        assert "Delta-V" in report
        assert "reduction" in report


class TestCliIntegration:
    def test_characterize_report_flag(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        exit_code = main([
            "characterize", "--chips", "1", "--blocks", "2",
            "--report", str(path),
        ])
        assert exit_code == 0
        assert path.exists()
        assert "# 3D NAND process-characterization report" in path.read_text()

    def test_simulate_json_flag(self, tmp_path, capsys):
        path = tmp_path / "stats.json"
        exit_code = main([
            "simulate", "--ftl", "page", "--workload", "Mail",
            "--requests", "200", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.2",
            "--queue-depth", "4", "--json", str(path),
        ])
        assert exit_code == 0
        payload = json.loads(path.read_text())
        assert payload["ftl"] == "pageFTL"
        assert payload["completed_requests"] == 200
        assert "counters" in payload
