"""Tests for open-loop (arrival-timed) trace replay."""

import pytest

from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.base import IORequest, with_arrivals
from repro.workloads.synthetic import uniform_random_trace


class TestWithArrivals:
    def test_stamps_monotone_arrivals(self):
        trace = uniform_random_trace(1000, 50, seed=1)
        stamped = with_arrivals(trace, rate_iops=10_000, seed=2)
        times = [r.arrival_us for r in stamped]
        assert all(t is not None for t in times)
        assert times == sorted(times)

    def test_rate_approximately_respected(self):
        trace = uniform_random_trace(1000, 400, seed=1)
        stamped = with_arrivals(trace, rate_iops=50_000, seed=2)
        span_us = stamped[-1].arrival_us
        implied_rate = 400 / (span_us / 1e6)
        assert 30_000 <= implied_rate <= 80_000

    def test_validation(self):
        trace = uniform_random_trace(1000, 10, seed=1)
        with pytest.raises(ValueError):
            with_arrivals(trace, rate_iops=0)
        with pytest.raises(ValueError):
            with_arrivals(trace, rate_iops=100, burstiness=0.5)

    def test_request_at_helper(self):
        request = IORequest("R", 5, 2)
        stamped = request.at(123.0)
        assert stamped.arrival_us == 123.0
        assert (stamped.op, stamped.lpn, stamped.n_pages) == ("R", 5, 2)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            IORequest("R", 0, 1, arrival_us=-1.0)


class TestOpenLoopReplay:
    def test_light_load_latency_is_service_time(self):
        """At a trickle arrival rate there is no queueing: write latency
        approaches the bare program latency."""
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = uniform_random_trace(
            config.logical_pages, 60, read_fraction=0.0, seed=3
        )
        stamped = with_arrivals(trace, rate_iops=200, seed=4)  # ~5 ms apart
        stats = sim.run_open_loop(stamped)
        assert stats.completed_requests == 60
        assert stats.write_latency.percentile(50) < 1200

    def test_overload_builds_queueing_delay(self):
        config = SSDConfig.small()
        results = {}
        for rate in (500, 100_000):
            sim = SSDSimulation(config, ftl="page")
            trace = uniform_random_trace(
                config.logical_pages, 150, read_fraction=0.0, seed=5
            )
            stats = sim.run_open_loop(with_arrivals(trace, rate_iops=rate, seed=6))
            results[rate] = stats.write_latency.percentile(90)
        assert results[100_000] > 2 * results[500]

    def test_missing_arrivals_rejected(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = uniform_random_trace(config.logical_pages, 5, seed=1)
        with pytest.raises(ValueError):
            sim.run_open_loop(trace)

    def test_ps_aware_ftl_beats_baseline_under_bursts(self):
        """Bursty open-loop writes: the PS-aware FTL's tail latency stays
        below the PS-unaware baseline's (followers drain bursts faster)."""
        config = SSDConfig.small()
        tails = {}
        for ftl in ("page", "cube"):
            sim = SSDSimulation(config, ftl=ftl)
            trace = uniform_random_trace(
                config.logical_pages, 600, read_fraction=0.0, seed=7
            )
            stamped = with_arrivals(
                trace, rate_iops=25_000, burstiness=6.0, seed=8
            )
            stats = sim.run_open_loop(stamped)
            tails[ftl] = stats.write_latency.percentile(95)
        assert tails["cube"] < tails["page"]
