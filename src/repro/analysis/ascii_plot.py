"""Dependency-free ASCII charts for examples and CLI output."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    peak = max(values)
    if peak <= 0:
        raise ValueError("values must contain a positive entry")
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{str(label):>{label_width}} | {bar} {value:g}{unit}")
    return "\n".join(lines)


#: shade ramp used by :func:`heatmap`, darkest last
HEAT_RAMP = " .:-=+*#%@"


def heatmap(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    unit: str = "",
    col_header_every: int = 8,
) -> str:
    """Character heatmap of a rows x cols value grid.

    Each cell is one character from :data:`HEAT_RAMP`, scaled linearly
    between the grid's min and max (a flat grid renders mid-ramp).  A
    sparse column ruler is printed when there are many columns (e.g. 48
    h-layers), and the value range is annotated so shades are readable.
    """
    if len(values) != len(row_labels):
        raise ValueError("values must have one row per row label")
    for row in values:
        if len(row) != len(col_labels):
            raise ValueError("every row must have one value per col label")
    if not row_labels or not col_labels:
        return "(empty heatmap)"
    flat = [v for row in values for v in row]
    lo, hi = min(flat), max(flat)
    span = hi - lo
    label_width = max(len(str(label)) for label in row_labels)

    def shade(value: float) -> str:
        if span == 0:
            return HEAT_RAMP[len(HEAT_RAMP) // 2]
        index = int((value - lo) / span * (len(HEAT_RAMP) - 1))
        return HEAT_RAMP[index]

    lines = []
    if len(col_labels) > col_header_every:
        ruler = [" "] * len(col_labels)
        for index in range(0, len(col_labels), col_header_every):
            text = str(col_labels[index])
            for offset, ch in enumerate(text):
                if index + offset < len(ruler):
                    ruler[index + offset] = ch
        lines.append(" " * (label_width + 3) + "".join(ruler))
    else:
        header = " ".join(f"{str(label):>3}" for label in col_labels)
        lines.append(" " * (label_width + 3) + header)
    for label, row in zip(row_labels, values):
        if len(col_labels) > col_header_every:
            cells = "".join(shade(value) for value in row)
        else:
            cells = " ".join(f"{shade(value):>3}" for value in row)
        lines.append(f"{str(label):>{label_width}} | {cells}")
    lines.append(
        f"{'':>{label_width}}   scale: ' '={lo:g}{unit} .. '@'={hi:g}{unit}"
    )
    return "\n".join(lines)


def histogram_chart(
    buckets: Dict[str, int], width: int = 40, unit: str = ""
) -> str:
    """Horizontal bar rendering of histogram bucket counts (upper-edge
    label -> count), skipping nothing so empty buckets stay visible."""
    if not buckets:
        return "(empty histogram)"
    peak = max(buckets.values())
    label_width = max(len(f"<= {label}") for label in buckets)
    lines = []
    for label, count in buckets.items():
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"{f'<= {label}':>{label_width}} | {bar} {count}{unit}")
    return "\n".join(lines)


def cdf_chart(
    samples_by_label: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    markers: str = "*o+x@",
) -> str:
    """Overlayed empirical CDFs of several sample sets.

    The x axis spans the pooled value range; each label gets a marker.
    """
    if not samples_by_label:
        return ""
    pooled: List[float] = []
    for samples in samples_by_label.values():
        pooled.extend(samples)
    if not pooled:
        return ""
    lo, hi = min(pooled), max(pooled)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, samples) in enumerate(samples_by_label.items()):
        marker = markers[index % len(markers)]
        values = np.sort(np.asarray(samples, dtype=float))
        fractions = np.arange(1, len(values) + 1) / len(values)
        for column in range(width):
            x = lo + (hi - lo) * column / (width - 1)
            fraction = float(np.searchsorted(values, x, side="right")) / len(values)
            row = height - 1 - min(height - 1, int(fraction * (height - 1)))
            if grid[row][column] == " ":
                grid[row][column] = marker
    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.4g}{'':^{max(0, width - 24)}}{hi:>12.4g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {label}"
        for i, label in enumerate(samples_by_label)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def series_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    markers: str = "*o+x@",
) -> str:
    """Plot one or more y-series over a shared x axis."""
    if not series:
        return ""
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {label!r} does not match the x axis")
    pooled = [y for ys in series.values() for y in ys]
    lo, hi = min(pooled), max(pooled)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            column = min(width - 1, int((x - x_lo) / span * (width - 1)))
            row = height - 1 - min(height - 1, int((y - lo) / (hi - lo) * (height - 1)))
            grid[row][column] = marker
    lines = [f"{hi:10.4g} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("           |" + "".join(row))
    lines.append(f"{lo:10.4g} |" + "".join(grid[-1]))
    lines.append("           +" + "-" * width)
    lines.append(f"            {x_lo:<10.4g}{'':^{max(0, width - 20)}}{x_hi:>10.4g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {label}" for i, label in enumerate(series)
    )
    lines.append("            " + legend)
    return "\n".join(lines)
