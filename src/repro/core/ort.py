"""Optimal read reference voltage table (ORT) -- Sections 4.2 and 5.1.

The OPM keeps, for every h-layer in the SSD, the most recent offset
vector :math:`\\mathbb{D}_h` that decoded without uncorrectable errors.
Thanks to the intra-layer similarity, a value learned from *any* WL of an
h-layer applies to all of its WLs; different h-layers need different
entries (inter-layer variability).

The device model aggregates the per-threshold offsets into one integer
level, so an entry is a single small int.  The space accounting of the
paper (two bytes per h-layer, about 0.001 % of capacity, ~10 MB per 1-TB
SSD) is reproduced by :meth:`OptimalReadTable.overhead_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.nand.geometry import BlockGeometry
from repro.nand.read_retry import MAX_OFFSET

#: bytes needed to encode one h-layer's offset vector: 7 offsets of
#: 4 adjustable levels between states fit in 14 bits -> 2 bytes
BYTES_PER_ENTRY = 2


@dataclass
class OptimalReadTable:
    """Per-(chip, block, h-layer) most-recent optimal read offsets."""

    default_offset: int = 0
    _entries: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    _hits: int = 0
    _misses: int = 0
    #: optional :class:`~repro.obs.device.OrtTelemetry` recording hook
    #: (per-h-layer hit/miss counts); pure recording, never mutates the
    #: table, so attached telemetry cannot change any lookup result
    telemetry: object = field(default=None, repr=False, compare=False)

    def get(self, chip_id: int, block: int, layer: int) -> int:
        """Offset hint for reading any WL of an h-layer.

        Returns the table entry when one exists (a previous read of this
        h-layer learned it), else the default references.
        """
        key = (chip_id, block, layer)
        if key in self._entries:
            self._hits += 1
            if self.telemetry is not None:
                self.telemetry.record_lookup(layer, True)
            return self._entries[key]
        self._misses += 1
        if self.telemetry is not None:
            self.telemetry.record_lookup(layer, False)
        return self.default_offset

    def update(self, chip_id: int, block: int, layer: int, final_offset: int) -> None:
        """Record the offset that finally decoded a read of this h-layer."""
        if not 0 <= final_offset <= MAX_OFFSET:
            raise ValueError(f"offset {final_offset} out of range")
        self._entries[(chip_id, block, layer)] = final_offset

    def invalidate_entry(self, chip_id: int, block: int, layer: int) -> bool:
        """Drop one h-layer's entry (its cached offset proved stale --
        e.g. an uncorrectable hint-started read).  Returns whether an
        entry existed; subsequent reads fall back to the default
        references and relearn the optimum through the full retry sweep.
        """
        return self._entries.pop((chip_id, block, layer), None) is not None

    def invalidate_block(self, chip_id: int, block: int, n_layers: int) -> None:
        """Drop a block's entries (after erase, its data is gone and new
        data will shift differently)."""
        for layer in range(n_layers):
            self._entries.pop((chip_id, block, layer), None)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable table state.  The ``telemetry`` hook is wiring,
        not state, and is re-attached by the owning simulation."""
        return {
            "entries": dict(self._entries),
            "hits": self._hits,
            "misses": self._misses,
        }

    def load_state_dict(self, state: dict) -> None:
        self._entries = dict(state["entries"])
        self._hits = state["hits"]
        self._misses = state["misses"]

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a learned entry."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    @staticmethod
    def overhead_ratio(geometry: BlockGeometry) -> float:
        """Table bytes per data byte: BYTES_PER_ENTRY per h-layer over the
        h-layer's page capacity (the paper's ~1.02e-5)."""
        layer_bytes = (
            geometry.page_size_bytes * geometry.pages_per_wl * geometry.wls_per_layer
        )
        return BYTES_PER_ENTRY / layer_bytes

    @staticmethod
    def overhead_bytes(total_capacity_bytes: int, geometry: BlockGeometry) -> float:
        """Absolute table size for a given SSD capacity (paper: ~10 MB/TB)."""
        return total_capacity_bytes * OptimalReadTable.overhead_ratio(geometry)
