"""Tests for block-trace CSV ingestion and the trace:<path> scheme."""

import pytest

from repro.workloads import build_workload, is_trace_path
from repro.workloads.blocktrace import BlockTraceError, load_block_trace

MSR_ROWS = """\
128166372003061629,hm,0,Read,383496192,32768,571
128166372016382155,hm,0,Write,2822144,4096,174
128166372026382245,hm,0,Write,2822144,8192,211
128166372033382455,hm,0,Read,383496192,4096,79
"""

SIMPLE_ROWS = """\
# four-column form: timestamp, op, offset, size
0.0,W,0,4096
100.0,R,4096,4096
250.0,W,8192,12288
"""


class TestParsing:
    def test_simple_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(SIMPLE_ROWS)
        trace = load_block_trace(path, logical_pages=100)
        assert len(trace) == 3
        assert [r.op for r in trace] == ["W", "R", "W"]
        assert [r.lpn for r in trace] == [0, 1, 2]
        assert [r.n_pages for r in trace] == [1, 1, 3]
        assert trace.has_arrivals
        assert [r.arrival_us for r in trace] == [0.0, 100.0, 250.0]

    def test_msr_cambridge_shape(self, tmp_path):
        """7-column MSR rows: win100ns timestamps, byte offsets."""
        path = tmp_path / "hm_0.csv"
        path.write_text(MSR_ROWS)
        trace = load_block_trace(
            path, logical_pages=1000, time_unit="win100ns",
            address_mode="wrap",
        )
        assert len(trace) == 4
        assert [r.op for r in trace] == ["R", "W", "W", "R"]
        # timestamps re-based to the first request, ticks are 100 ns
        assert trace[0].arrival_us == 0.0
        assert trace[1].arrival_us == pytest.approx(1332052.6)

    def test_header_row_by_name(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "size,op,timestamp,offset\n4096,W,5.0,0\n4096,R,9.0,4096\n"
        )
        trace = load_block_trace(path, logical_pages=100)
        assert [r.op for r in trace] == ["W", "R"]
        assert trace[0].arrival_us == 0.0
        assert trace[1].arrival_us == 4.0

    def test_whitespace_separated(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("0 W 0 8\n10 R 8 8\n")
        trace = load_block_trace(
            path, logical_pages=100, offset_unit="sector"
        )
        assert len(trace) == 2
        assert trace[0].n_pages == 1  # 8 sectors = 4096 B = one page

    def test_scale_mode_fits_address_space(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,W,0,4096\n1,W,40960000,4096\n")
        trace = load_block_trace(path, logical_pages=100)
        assert all(r.lpn + r.n_pages <= 100 for r in trace)
        # relative order preserved
        assert trace[0].lpn < trace[1].lpn

    def test_strict_mode_raises_when_out_of_range(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,W,40960000,4096\n")
        with pytest.raises(BlockTraceError, match="exceeds"):
            load_block_trace(path, logical_pages=100, address_mode="strict")

    def test_time_scale_stretches_arrivals(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(SIMPLE_ROWS)
        trace = load_block_trace(path, logical_pages=100, time_scale=2.0)
        assert trace[-1].arrival_us == 500.0

    def test_limit_truncates(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(SIMPLE_ROWS)
        trace = load_block_trace(path, logical_pages=100, limit=2)
        assert len(trace) == 2

    def test_bad_op_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,X,0,4096\n")
        with pytest.raises(BlockTraceError, match="op"):
            load_block_trace(path, logical_pages=100)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# nothing here\n")
        with pytest.raises(BlockTraceError, match="no requests"):
            load_block_trace(path, logical_pages=100)

    def test_bad_row_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,W,0,4096\nnot,a,row,here\n")
        with pytest.raises(BlockTraceError, match=":2:"):
            load_block_trace(path, logical_pages=100)


class TestTraceScheme:
    def test_is_trace_path(self):
        assert is_trace_path("trace:/tmp/t.csv")
        assert not is_trace_path("OLTP")

    def test_build_workload_routes_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(SIMPLE_ROWS)
        trace = build_workload(f"trace:{path}", 100, None)
        assert len(trace) == 3
        assert trace.has_arrivals

    def test_missing_file_raises(self):
        with pytest.raises((FileNotFoundError, OSError)):
            build_workload("trace:/nonexistent/nowhere.csv", 100, None)
