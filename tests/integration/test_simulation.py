"""End-to-end integration tests of the full SSD simulation stack."""

import dataclasses

import pytest

from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.base import WRITE, IORequest, Trace
from repro.workloads.synthetic import uniform_random_trace


def small_config(**overrides):
    return SSDConfig.small(**overrides)


ALL_FTLS = ["page", "vert", "cube", "cube-"]


class TestBasicLifecycle:
    @pytest.mark.parametrize("ftl", ALL_FTLS)
    def test_trace_completes(self, ftl):
        sim = SSDSimulation(small_config(), ftl=ftl)
        trace = uniform_random_trace(
            sim.config.logical_pages, 300, read_fraction=0.5, seed=1
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.completed_requests == 300
        assert stats.duration_us > 0
        assert stats.iops > 0

    def test_ftl_names(self):
        config = small_config()
        for name, expected in [
            ("page", "pageFTL"),
            ("vert", "vertFTL"),
            ("cube", "cubeFTL"),
            ("cube-", "cubeFTL-"),
        ]:
            sim = SSDSimulation(config, ftl=name)
            assert sim.ftl.name == expected

    def test_unknown_ftl_rejected(self):
        with pytest.raises(ValueError):
            SSDSimulation(small_config(), ftl="bogus")

    def test_prefill_binds_logical_space(self):
        sim = SSDSimulation(small_config(), ftl="page")
        written = sim.prefill(0.5)
        assert written == int(sim.config.logical_pages * 0.5)
        assert sim.ftl.mapper.mapped_lpn_count() == written
        sim.ftl.mapper.check_invariants()

    def test_prefill_resets_counters(self):
        sim = SSDSimulation(small_config(), ftl="cube")
        sim.prefill(0.3)
        assert sim.ftl.counters.flash_programs == 0


class TestDataIntegrity:
    @pytest.mark.parametrize("ftl", ALL_FTLS)
    def test_read_back_returns_latest_write(self, ftl):
        """Functional correctness: with tag storage on, every flash read
        of an LPN must return that LPN's tag (the FTL wrote the right
        data to the right place)."""
        config = small_config(store_tags=True)
        sim = SSDSimulation(config, ftl=ftl)
        n = 60
        writes = Trace("w", config.logical_pages,
                       [IORequest(WRITE, lpn, 1) for lpn in range(n)])
        sim.run(writes, queue_depth=4)

        checked = {"count": 0}
        original_after_read = sim.ftl.after_read

        def checking_after_read(chip_id, block, layer, result):
            original_after_read(chip_id, block, layer, result)
            checked["count"] += 1

        sim.ftl.after_read = checking_after_read
        mapper = sim.ftl.mapper
        for lpn in range(n):
            ppn = mapper.lookup(lpn)
            assert ppn != -1
            chip_id, address = config.geometry.ppn_to_address(ppn)
            read = sim.controller.chip(chip_id).read_page(
                address.block, address.layer, address.wl, address.page
            )
            assert read.data == lpn

    def test_overwrite_invalidates_old_mapping(self):
        config = small_config(store_tags=True)
        sim = SSDSimulation(config, ftl="cube")
        trace = Trace("w", config.logical_pages, [
            IORequest(WRITE, 5, 1),
            IORequest(WRITE, 5, 1),
            IORequest(WRITE, 5, 1),
        ])
        sim.run(trace, queue_depth=1)
        sim.ftl.mapper.check_invariants()
        assert sim.ftl.mapper.lookup(5) != -1


class TestGarbageCollection:
    def _gc_config(self):
        return small_config(logical_fraction=0.6, gc_trigger_blocks=3)

    @pytest.mark.parametrize("ftl", ["page", "cube"])
    def test_gc_reclaims_blocks(self, ftl):
        config = self._gc_config()
        sim = SSDSimulation(config, ftl=ftl)
        sim.prefill(1.0)
        # overwrite a hot region repeatedly to force GC
        trace = uniform_random_trace(
            config.logical_pages, 2500, read_fraction=0.1, seed=3
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.counters.erases > 0
        assert stats.counters.gc_programs > 0
        sim.ftl.mapper.check_invariants()

    def test_gc_preserves_all_live_data(self):
        """After heavy GC, every written LPN still maps somewhere valid."""
        config = self._gc_config()
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(1.0)
        trace = uniform_random_trace(
            config.logical_pages, 2000, read_fraction=0.0, seed=4
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.counters.erases > 0
        mapper = sim.ftl.mapper
        mapper.check_invariants()
        assert mapper.mapped_lpn_count() == config.logical_pages
        # free-block accounting survives
        for chip in range(config.geometry.n_chips):
            assert sim.ftl.blocks.free_count(chip) >= 1


class TestAgedBehaviour:
    def test_aged_runs_slower_than_fresh(self):
        fresh_sim = SSDSimulation(small_config(), ftl="page")
        aged_sim = SSDSimulation(
            small_config().with_aging(AgingState(2000, 12.0)), ftl="page"
        )
        for sim in (fresh_sim, aged_sim):
            sim.prefill(0.5)
        trace_args = dict(read_fraction=0.8, seed=5)
        fresh = fresh_sim.run(
            uniform_random_trace(fresh_sim.config.logical_pages, 600, **trace_args),
            queue_depth=8,
        )
        aged = aged_sim.run(
            uniform_random_trace(aged_sim.config.logical_pages, 600, **trace_args),
            queue_depth=8,
        )
        assert aged.iops < fresh.iops
        assert aged.counters.read_retries > 0
        assert fresh.counters.read_retries == 0

    def test_cube_beats_page_on_aged_reads(self):
        aging = AgingState(2000, 12.0)
        results = {}
        for ftl in ("page", "cube"):
            sim = SSDSimulation(small_config().with_aging(aging), ftl=ftl)
            sim.prefill(0.5)
            trace = uniform_random_trace(
                sim.config.logical_pages, 800, read_fraction=0.7, n_pages=3, seed=6
            )
            results[ftl] = sim.run(trace, queue_depth=8)
        assert results["cube"].iops > results["page"].iops
        assert (
            results["cube"].counters.mean_num_retry
            < results["page"].counters.mean_num_retry
        )


class TestSafetyPath:
    def test_env_shifts_cause_reprograms_not_failures(self):
        config = dataclasses.replace(small_config(), env_shift_prob=0.05)
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 800, read_fraction=0.2, seed=7
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.completed_requests == 800
        assert stats.counters.reprograms > 0
        sim.ftl.mapper.check_invariants()


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        sim = SSDSimulation(small_config(), ftl="page")
        trace = uniform_random_trace(sim.config.logical_pages, 400, seed=8)
        stats = sim.run(trace, queue_depth=4, warmup_requests=100)
        assert stats.completed_requests == 300
        assert len(stats.read_latency) + len(stats.write_latency) == 300

    def test_warmup_validation(self):
        sim = SSDSimulation(small_config(), ftl="page")
        trace = uniform_random_trace(sim.config.logical_pages, 10, seed=8)
        with pytest.raises(ValueError):
            sim.run(trace, warmup_requests=10)


class TestFollowerAccounting:
    def test_cube_uses_followers_page_does_not(self):
        results = {}
        for ftl in ("page", "cube"):
            sim = SSDSimulation(small_config(), ftl=ftl)
            trace = uniform_random_trace(
                sim.config.logical_pages, 600, read_fraction=0.0, seed=9
            )
            results[ftl] = sim.run(trace, queue_depth=8)
        assert results["page"].counters.follower_programs == 0
        assert results["cube"].counters.follower_programs > 0
        assert (
            results["cube"].counters.mean_t_prog_us
            < results["page"].counters.mean_t_prog_us
        )

    def test_vert_reduction_is_small(self):
        results = {}
        for ftl in ("page", "vert"):
            sim = SSDSimulation(small_config(), ftl=ftl)
            trace = uniform_random_trace(
                sim.config.logical_pages, 500, read_fraction=0.0, seed=10
            )
            results[ftl] = sim.run(trace, queue_depth=8)
        page_t = results["page"].counters.mean_t_prog_us
        vert_t = results["vert"].counters.mean_t_prog_us
        reduction = 1.0 - vert_t / page_t
        assert 0.03 <= reduction <= 0.12
