"""Analysis helpers for evaluation outputs (tables, CDFs, charts)."""

from repro.analysis.ascii_plot import bar_chart, cdf_chart, series_chart
from repro.analysis.distributions import cdf_points, histogram, percentile_table
from repro.analysis.tables import format_table, normalized_iops_table

__all__ = [
    "format_table",
    "normalized_iops_table",
    "cdf_points",
    "histogram",
    "percentile_table",
    "bar_chart",
    "cdf_chart",
    "series_chart",
]
