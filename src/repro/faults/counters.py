"""Recovery accounting: what the FTL survived and how.

:class:`RecoveryCounters` is owned by the FTL (like
:class:`~repro.ftl.base.FTLCounters`) and surfaced through
:meth:`~repro.ssd.stats.SimulationStats.to_dict` /
:meth:`~repro.ssd.stats.SimulationStats.summary` so every experiment can
report the fault-handling work behind its performance numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RecoveryCounters:
    """Error-recovery event counters for one simulation run."""

    #: WL programs that reported a program-status failure
    program_fails: int = 0
    #: block erases that failed (transient grown faults + grown-bad onsets)
    erase_fails: int = 0
    #: blocks permanently retired (wear-out, erase failure, program failure)
    blocks_retired: int = 0
    #: pages refreshed because a read saw low remaining ECC margin
    scrubs: int = 0
    #: stale ORT entries dropped after an uncorrectable hint-started read
    ort_invalidations: int = 0
    #: uncorrectable reads rescued by the conservative nominal re-read
    recovered_reads: int = 0
    #: reads still uncorrectable after exhausting the bounded recovery
    #: re-reads (handed to the host as device-level read errors)
    uncorrectable_after_recovery: int = 0

    def any(self) -> bool:
        return any(vars(self).values())

    def to_dict(self) -> dict:
        return dict(vars(self))
