"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


class TestEngine:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9.0

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(3.0, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = Engine()
        times = []

        def first():
            times.append(engine.now)
            engine.schedule(2.0, second)

        def second():
            times.append(engine.now)

        engine.schedule(1.0, first)
        engine.run()
        assert times == [1.0, 3.0]

    def test_run_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 2]

    def test_run_until_past_all_events_advances_clock(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_max_events(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_max_events_drains_leading_corpses(self):
        """Regression: a ``max_events`` return used to leave ``now``
        stuck behind ``until`` when every remaining queued event was a
        cancelled corpse -- segmented runs saw a stale clock."""
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        corpses = [engine.schedule(2.0, lambda: None) for _ in range(3)]
        for corpse in corpses:
            corpse.cancel()
        engine.run(until=10.0, max_events=1)
        assert engine.processed == 1
        assert engine.live_pending == 0
        assert engine.now == 10.0

    def test_max_events_keeps_clock_at_live_head(self):
        # with live work still queued before `until`, a max-events return
        # must not advance the clock past the last executed event
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=10.0, max_events=1)
        assert engine.now == 1.0

    def test_same_timestamp_batch_preserves_order_and_nested_events(self):
        # zero-delay events scheduled from inside a batch fire within it,
        # after the already-queued same-time events (seq order)
        engine = Engine()
        order = []

        def first():
            order.append("first")
            engine.schedule(0.0, lambda: order.append("nested"))

        engine.schedule(3.0, first)
        engine.schedule(3.0, lambda: order.append("second"))
        engine.schedule(4.0, lambda: order.append("later"))
        engine.run()
        assert order == ["first", "second", "nested", "later"]
        assert engine.now == 4.0

    def test_cancel_within_batch_is_skipped(self):
        engine = Engine()
        fired = []
        victim = engine.schedule(1.0, lambda: fired.append("victim"))
        engine.schedule(1.0, lambda: (fired.append("killer"), victim.cancel()))
        engine.run()
        # same timestamp, but the killer's seq is higher -- the victim
        # fires first; reverse the roles for the real assertion
        assert fired == ["victim", "killer"]
        engine2 = Engine()
        fired2 = []

        def killer():
            fired2.append("killer")
            victim2.cancel()

        engine2.schedule(1.0, killer)
        victim2 = engine2.schedule(1.0, lambda: fired2.append("victim"))
        engine2.run()
        assert fired2 == ["killer"]
        assert engine2.live_pending == 0

    def test_peak_pending_excludes_cancelled_burst(self):
        """Regression: the peak used to count cancelled corpses still in
        the heap, so it depended on compaction timing instead of live
        load."""
        engine = Engine()
        burst = [engine.schedule(1.0, lambda: None) for _ in range(10)]
        assert engine.peak_pending == 10
        for event in burst:
            event.cancel()
        # corpses (compacted or not) must not raise the live peak
        for _ in range(5):
            engine.schedule(2.0, lambda: None)
        assert engine.peak_pending == 10
        engine.run()
        assert engine.peak_pending == 10

    def test_peak_pending_tracks_live_high_water_mark(self):
        engine = Engine()
        events = [engine.schedule(1.0, lambda: None) for _ in range(4)]
        events[0].cancel()
        engine.schedule(2.0, lambda: None)
        # 3 live from the burst + 1 new = 4 live; the corpse is excluded
        assert engine.peak_pending == 4

    def test_cancelled_events_skipped(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed == 3


class TestRecurringEvents:
    def test_rearms_while_live_events_remain(self):
        engine = Engine()
        samples = []
        for t in (1.5, 3.5):
            engine.schedule(t, lambda: None)
        engine.every(1.0, lambda: samples.append(engine.now))
        engine.run()
        assert samples  # sampled at least once alongside the live events

    def test_does_not_rearm_on_cancelled_corpses(self):
        """Regression: ``_fire`` used to gate on ``pending``, which counts
        cancelled events -- a queue holding only corpses kept the sampler
        alive and marched the clock past the last real event."""
        engine = Engine()
        samples = []
        engine.every(1.0, lambda: samples.append(engine.now))
        corpse = engine.schedule(100.0, lambda: None)
        corpse.cancel()
        engine.run()
        assert samples == [1.0]  # fired once, then saw no live work
        assert engine.now < 100.0

    def test_sampler_cannot_keep_engine_alive_alone(self):
        engine = Engine()
        ticks = []
        engine.every(2.0, lambda: ticks.append(engine.now))
        engine.schedule(5.0, lambda: None)
        engine.run()
        # final tick happens at most one interval past the last live event
        assert ticks and ticks[-1] <= 5.0 + 2.0
        assert engine.now <= 5.0 + 2.0

    def test_stop_cancels_pending_occurrence(self):
        engine = Engine()
        ticks = []
        recurring = engine.every(1.0, lambda: ticks.append(engine.now))
        engine.schedule(10.0, lambda: None)
        recurring.stop()
        engine.run()
        assert ticks == []


class TestHeapCompaction:
    def test_mass_cancellation_compacts_heap(self):
        engine = Engine()
        fired = []
        events = [
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
            for i in range(200)
        ]
        for event in events[::2]:
            event.cancel()
        assert engine.compactions >= 1
        assert engine.pending == engine.live_pending == 100

    def test_compaction_preserves_pop_order(self):
        engine = Engine()
        fired = []
        events = [
            engine.schedule(float(200 - i), lambda i=i: fired.append(i))
            for i in range(200)
        ]
        for event in events[:150]:
            event.cancel()
        assert engine.compactions >= 1
        engine.run()
        # survivors are i in [150, 200) scheduled at time 200-i: they must
        # fire in ascending time order, i.e. descending i
        assert fired == list(range(199, 149, -1))

    def test_cancel_is_idempotent(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()  # double cancel must not double-count
        assert engine.live_pending == 1
        engine.run()
        assert engine.processed == 1

    def test_cancel_after_pop_is_noop(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.step()
        event.cancel()  # already fired: must not corrupt accounting
        assert engine.live_pending == 1
        engine.run()
        assert engine.processed == 2
