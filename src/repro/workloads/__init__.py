"""Workload generation: the six traces of the paper's evaluation.

Four Filebench personalities (Mail, Web, Proxy, OLTP) and two YCSB-A
database workloads (Rocks = RocksDB, Mongo = MongoDB).  Since the
original traces are not distributable, each generator synthesizes a
request stream reproducing the workload's documented read/write mix,
request sizes, locality, and burstiness -- the properties that drive the
FTL comparison.
"""

from repro.workloads.base import IORequest, Trace, trace_summary
from repro.workloads.synthetic import (
    mixed_trace,
    sequential_trace,
    uniform_random_trace,
    zipf_trace,
)
from repro.workloads.filebench import mail_trace, oltp_trace, proxy_trace, web_trace
from repro.workloads.traceio import load_trace, save_trace
from repro.workloads.ycsb import mongo_trace, rocks_trace

WORKLOAD_GENERATORS = {
    "Mail": mail_trace,
    "Web": web_trace,
    "Proxy": proxy_trace,
    "OLTP": oltp_trace,
    "Rocks": rocks_trace,
    "Mongo": mongo_trace,
}


def make_workload(name: str, logical_pages: int, n_requests: int, seed: int = 1):
    """Build one of the paper's six workloads by name."""
    try:
        generator = WORKLOAD_GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOAD_GENERATORS)}"
        ) from None
    return generator(logical_pages, n_requests, seed=seed)


__all__ = [
    "IORequest",
    "Trace",
    "trace_summary",
    "uniform_random_trace",
    "sequential_trace",
    "zipf_trace",
    "mixed_trace",
    "mail_trace",
    "web_trace",
    "proxy_trace",
    "oltp_trace",
    "mongo_trace",
    "rocks_trace",
    "save_trace",
    "load_trace",
    "WORKLOAD_GENERATORS",
    "make_workload",
]
