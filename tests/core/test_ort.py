"""Tests for the optimal read reference table (Sections 4.2 / 5.1)."""

import pytest

from repro.core.ort import BYTES_PER_ENTRY, OptimalReadTable
from repro.nand.geometry import BlockGeometry
from repro.nand.read_retry import MAX_OFFSET


@pytest.fixture
def ort():
    return OptimalReadTable()


class TestOptimalReadTable:
    def test_default_until_learned(self, ort):
        assert ort.get(0, 0, 0) == 0

    def test_update_then_hit(self, ort):
        ort.update(0, 3, 17, 4)
        assert ort.get(0, 3, 17) == 4

    def test_entries_are_per_h_layer(self, ort):
        ort.update(0, 3, 17, 4)
        assert ort.get(0, 3, 18) == 0
        assert ort.get(0, 4, 17) == 0
        assert ort.get(1, 3, 17) == 0

    def test_most_recent_wins(self, ort):
        ort.update(0, 0, 0, 2)
        ort.update(0, 0, 0, 5)
        assert ort.get(0, 0, 0) == 5

    def test_offset_range_validated(self, ort):
        with pytest.raises(ValueError):
            ort.update(0, 0, 0, MAX_OFFSET + 1)
        with pytest.raises(ValueError):
            ort.update(0, 0, 0, -1)

    def test_invalidate_block(self, ort):
        ort.update(0, 3, 17, 4)
        ort.update(0, 4, 2, 3)
        ort.invalidate_block(0, 3, 48)
        assert ort.get(0, 3, 17) == 0
        assert ort.get(0, 4, 2) == 3

    def test_hit_miss_accounting(self, ort):
        ort.get(0, 0, 0)
        ort.update(0, 0, 0, 1)
        ort.get(0, 0, 0)
        assert ort.misses == 1
        assert ort.hits == 1

    def test_len_counts_entries(self, ort):
        ort.update(0, 0, 0, 1)
        ort.update(0, 0, 1, 1)
        ort.update(0, 0, 1, 2)  # overwrite, not a new entry
        assert len(ort) == 2


class TestSpaceOverhead:
    def test_paper_overhead_ratio(self):
        """Section 5.1: ~1.02e-5 of data capacity, 2 bytes per h-layer."""
        ratio = OptimalReadTable.overhead_ratio(BlockGeometry())
        assert ratio == pytest.approx(1.02e-5, rel=0.01)

    def test_ten_megabytes_per_terabyte(self):
        overhead = OptimalReadTable.overhead_bytes(10**12, BlockGeometry())
        assert 9e6 <= overhead <= 11e6

    def test_entry_size(self):
        """7 offsets of 4 levels fit in 14 bits -> 2 bytes."""
        assert BYTES_PER_ENTRY == 2
