"""Checkpoint container format: header + pickled component state.

A checkpoint is a *directory* named ``ckpt_<index:08d>`` holding

- ``header.json`` -- small, human-readable run identity: the checkpoint
  schema version, a fingerprint of the :class:`~repro.ssd.config.SSDConfig`,
  the run parameters a resume must reproduce (FTL, workload, seed,
  request count, queue depth, checkpoint cadence), and where in the run
  the checkpoint was taken (segment index, completed requests, engine
  clock).
- ``state.pkl`` -- the pickled ``state_dict()`` tree of every stateful
  component (engine, chips, resources, FTL, injector, checker).

The header is the compatibility surface: :func:`validate_header` is the
schema check (also exposed via ``tools/check_schema.py --checkpoint``)
and loading refuses any checkpoint whose ``schema_version`` differs from
:data:`CHECKPOINT_SCHEMA_VERSION` -- the versioning policy (bump on any
layout change, no cross-version migration; see docs/PERSISTENCE.md).

Writes are atomic: the directory is assembled under a temporary name in
the same parent and published with a single :func:`os.replace`, so a
checkpoint directory either exists completely or not at all -- a run
killed mid-write never leaves a half-checkpoint that a resume could
trip over.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import shutil
from typing import List, Optional, Tuple

from repro.ssd.config import SSDConfig

#: version stamp of the checkpoint layout (header keys + state.pkl
#: shape); bump on any change -- loads refuse mismatched versions
CHECKPOINT_SCHEMA_VERSION = 1

HEADER_NAME = "header.json"
STATE_NAME = "state.pkl"

_CKPT_RE = re.compile(r"^ckpt_(\d{8})$")

#: header keys every checkpoint must carry, with their expected types
_HEADER_FIELDS = {
    "schema_version": int,
    "config_fingerprint": str,
    "ftl": str,
    "workload": str,
    "seed": int,
    "n_requests": int,
    "queue_depth": int,
    "warmup_requests": int,
    "checkpoint_every": int,
    "check": (str, type(None)),
    "segment": int,
    "completed": int,
    "clock_us": float,
}


class CheckpointError(ValueError):
    """A checkpoint is malformed, incompatible, or mismatched."""


def config_fingerprint(config: SSDConfig) -> str:
    """Stable digest of the full config (a frozen dataclass, so its
    ``repr`` enumerates every field recursively)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()


def checkpoint_name(index: int) -> str:
    return f"ckpt_{index:08d}"


def validate_header(header: dict) -> List[str]:
    """Schema-check one header dict; returns a list of problems
    (empty = valid).  Used by loads and ``check_schema.py``."""
    problems = []
    if not isinstance(header, dict):
        return [f"header is {type(header).__name__}, expected an object"]
    for key, expected in _HEADER_FIELDS.items():
        if key not in header:
            problems.append(f"missing key {key!r}")
            continue
        value = header[key]
        if key == "clock_us":
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif isinstance(expected, tuple):
            ok = isinstance(value, expected)
        else:
            ok = isinstance(value, expected) and not isinstance(value, bool)
        if not ok:
            problems.append(
                f"key {key!r} has type {type(value).__name__}"
            )
    if not problems and header["schema_version"] != CHECKPOINT_SCHEMA_VERSION:
        problems.append(
            f"schema_version {header['schema_version']} != "
            f"supported {CHECKPOINT_SCHEMA_VERSION}"
        )
    return problems


def write_checkpoint(parent_dir: str, header: dict, state: dict) -> str:
    """Atomically publish ``ckpt_<segment>`` under ``parent_dir``.

    Returns the final checkpoint path.  The temporary staging directory
    lives in the same parent so the final :func:`os.replace` stays on
    one filesystem.
    """
    problems = validate_header(header)
    if problems:
        raise CheckpointError(
            "refusing to write invalid header: " + "; ".join(problems)
        )
    os.makedirs(parent_dir, exist_ok=True)
    name = checkpoint_name(header["segment"])
    final_path = os.path.join(parent_dir, name)
    tmp_path = os.path.join(parent_dir, f".{name}.tmp")
    if os.path.exists(tmp_path):
        shutil.rmtree(tmp_path)
    os.makedirs(tmp_path)
    with open(os.path.join(tmp_path, HEADER_NAME), "w") as fh:
        json.dump(header, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(os.path.join(tmp_path, STATE_NAME), "wb") as fh:
        pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
    if os.path.exists(final_path):
        shutil.rmtree(final_path)
    os.replace(tmp_path, final_path)
    return final_path


def read_header(checkpoint_path: str) -> dict:
    """Load and schema-check just the header of one checkpoint dir."""
    header_path = os.path.join(checkpoint_path, HEADER_NAME)
    if not os.path.isfile(header_path):
        raise CheckpointError(f"{checkpoint_path}: no {HEADER_NAME}")
    with open(header_path) as fh:
        header = json.load(fh)
    problems = validate_header(header)
    if problems:
        raise CheckpointError(
            f"{checkpoint_path}: invalid header: " + "; ".join(problems)
        )
    return header


def load_checkpoint(checkpoint_path: str) -> Tuple[dict, dict]:
    """Load one checkpoint directory -> ``(header, state)``."""
    header = read_header(checkpoint_path)
    state_path = os.path.join(checkpoint_path, STATE_NAME)
    if not os.path.isfile(state_path):
        raise CheckpointError(f"{checkpoint_path}: no {STATE_NAME}")
    with open(state_path, "rb") as fh:
        state = pickle.load(fh)
    return header, state


def list_checkpoints(parent_dir: str) -> List[str]:
    """All complete checkpoint dirs under ``parent_dir``, oldest first."""
    if not os.path.isdir(parent_dir):
        return []
    found = []
    for entry in sorted(os.listdir(parent_dir)):
        match = _CKPT_RE.match(entry)
        path = os.path.join(parent_dir, entry)
        if match and os.path.isfile(os.path.join(path, HEADER_NAME)):
            found.append(path)
    return found


def latest_checkpoint(parent_dir: str) -> Optional[str]:
    """The newest complete checkpoint under ``parent_dir``, or None."""
    found = list_checkpoints(parent_dir)
    return found[-1] if found else None
