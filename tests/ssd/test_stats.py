"""Tests for statistics collection."""

import pytest

from repro.ssd.stats import LatencyStats, SimulationStats, normalize


class TestLatencyStats:
    def test_empty_safe(self):
        stats = LatencyStats()
        assert stats.mean_us == 0.0
        assert stats.percentile(90) == 0.0
        values, fractions = stats.cdf()
        assert len(values) == 0 and len(fractions) == 0

    def test_mean_and_percentiles(self):
        stats = LatencyStats()
        for value in (10.0, 20.0, 30.0, 40.0):
            stats.add(value)
        assert stats.mean_us == 25.0
        assert stats.percentile(0) == 10.0
        assert stats.percentile(100) == 40.0
        assert len(stats) == 4

    def test_cdf_monotone(self):
        stats = LatencyStats()
        for value in (5.0, 1.0, 3.0):
            stats.add(value)
        values, fractions = stats.cdf()
        assert list(values) == [1.0, 3.0, 5.0]
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_fraction_below(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0, 4.0):
            stats.add(value)
        assert stats.fraction_below(2.5) == 0.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats().add(-1.0)

    def test_max_us(self):
        stats = LatencyStats()
        assert stats.max_us == 0.0
        for value in (7.0, 42.0, 3.0):
            stats.add(value)
        assert stats.max_us == 42.0

    def test_cached_array_invalidated_by_add(self):
        stats = LatencyStats()
        stats.add(10.0)
        first = stats.samples
        assert stats.samples is first  # cached between queries
        stats.add(20.0)
        assert len(stats.samples) == 2
        assert stats.mean_us == 15.0


class TestSimulationStats:
    def test_iops(self):
        stats = SimulationStats("cubeFTL", "OLTP")
        stats.duration_us = 2_000_000.0
        stats.completed_requests = 1000
        assert stats.iops == 500.0

    def test_iops_zero_duration(self):
        assert SimulationStats("x", "y").iops == 0.0

    def test_summary_mentions_names(self):
        stats = SimulationStats("cubeFTL", "OLTP")
        assert "cubeFTL" in stats.summary()
        assert "OLTP" in stats.summary()

    def test_to_dict_is_json_serializable(self):
        import json

        from repro.ftl.base import FTLCounters

        stats = SimulationStats("cubeFTL", "OLTP")
        stats.duration_us = 1000.0
        stats.completed_requests = 10
        stats.read_latency.add(80.0)
        stats.write_latency.add(700.0)
        stats.counters = FTLCounters(flash_programs=3, program_time_us=2100.0)
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["schema_version"] == 2
        assert payload["ftl"] == "cubeFTL"
        assert payload["iops"] == pytest.approx(10_000.0)
        assert payload["read_latency"]["count"] == 1
        assert payload["read_latency"]["p999_us"] == pytest.approx(80.0)
        assert payload["read_latency"]["max_us"] == pytest.approx(80.0)
        assert payload["counters"]["flash_programs"] == 3
        assert payload["counters"]["vfy_skipped"] == 0
        assert payload["counters"]["mean_t_prog_us"] == pytest.approx(700.0)


class TestNormalize:
    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)
