"""Fig. 8 -- the effect of skipped VFYs.

Regenerates: (a) per-state BER as extra verifies are skipped past the
safe point, plus the tPROG saving of the full safe-skip plan; (b) the
distribution of N_skip per state across h-layers.

Paper result: P1 can safely skip 1 verify and P7 can skip 7; skipping
more over-programs fast cells (BER rises); safe skipping alone cuts the
average tPROG by ~16.2 %.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.characterization import experiments as exp


def regenerate():
    data = exp.fig8a_ber_vs_skips()
    lines = ["Fig 8(a) -- BER penalty vs extra skips past the safe point:"]
    rows = [
        [f"P{state}", data[state]["safe_skips"]]
        + [round(p, 2) for p in data[state]["ber_penalty_by_extra_skip"]]
        for state in range(1, 8)
    ]
    lines.append(
        format_table(["state", "N_skip safe", "+0", "+1", "+2", "+3", "+4"], rows)
    )
    reduction = data["t_prog_reduction"]
    lines.append("")
    lines.append(
        f"full safe-skip plan: {reduction['total_safe_skips']} VFYs skipped, "
        f"tPROG {reduction['default_us']:.1f} -> {reduction['skipped_us']:.1f} us "
        f"({100 * reduction['reduction_fraction']:.1f} % reduction; paper: 16.2 %)"
    )
    dist = exp.fig8b_skip_distribution(n_blocks=16)
    lines.append("")
    lines.append("Fig 8(b) -- N_skip distribution per state across h-layers:")
    rows = [
        [f"P{state}", dist[state]["min"], round(dist[state]["mean"], 2),
         dist[state]["max"]]
        for state in range(1, 8)
    ]
    lines.append(format_table(["state", "min", "mean", "max"], rows))
    return "\n".join(lines), data, dist


def test_fig8_vfy_skipping(benchmark):
    text, data, dist = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("fig08_vfy_skip", text)
    assert [data[s]["safe_skips"] for s in range(1, 8)] == [1, 2, 3, 4, 5, 6, 7]
    assert 0.13 <= data["t_prog_reduction"]["reduction_fraction"] <= 0.19
    for state in range(1, 8):
        penalties = data[state]["ber_penalty_by_extra_skip"]
        assert penalties[0] == 1.0
        assert penalties[-1] > penalties[0]
    means = [dist[s]["mean"] for s in range(1, 8)]
    assert means == sorted(means)
