#!/usr/bin/env python
"""Regenerate the golden trace after an *intentional* model change::

    PYTHONPATH=src python tests/obs/golden/regen.py

Keep the parameters in lockstep with ``tests/obs/test_golden_trace.py``.
"""

import os

from repro.api import run_simulation
from repro.ssd.config import SSDConfig

if __name__ == "__main__":
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "trace.jsonl")
    run_simulation(
        SSDConfig.small(logical_fraction=0.4), "OLTP", ftl="cube",
        queue_depth=8, prefill=0.4, n_requests=120, seed=7, trace=path,
    )
    print(f"regenerated {path}")
