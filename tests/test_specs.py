"""Tests for the frozen spec API (repro.specs)."""

import json

import pytest

from repro.specs import (
    SPEC_VERSION,
    HostSpec,
    RunOptions,
    SimulationSpec,
    SpecError,
    TenantSpec,
    WorkloadSpec,
    config_from_dict,
    config_to_dict,
    load_spec_file,
    validate_spec_dict,
)
from repro.ssd.config import SSDConfig


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(SpecError):
            WorkloadSpec("")
        with pytest.raises(SpecError):
            WorkloadSpec("OLTP", n_requests=0)

    def test_round_trip(self):
        spec = WorkloadSpec("Web", n_requests=500, seed=3,
                            params={"read_fraction": 0.5})
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_from_bare_string(self):
        assert WorkloadSpec.from_dict("OLTP") == WorkloadSpec("OLTP")

    def test_trace_scheme_detected(self):
        assert WorkloadSpec("trace:/tmp/t.csv").is_trace
        assert not WorkloadSpec("OLTP").is_trace

    def test_build_uses_registry(self):
        config = SSDConfig.small()
        trace = WorkloadSpec("OLTP", n_requests=50, seed=3).build(config)
        assert len(trace) == 50


class TestTenantSpec:
    def _workload(self):
        return WorkloadSpec("OLTP", n_requests=50)

    def test_validation(self):
        with pytest.raises(SpecError, match="rate_iops"):
            TenantSpec("t", self._workload(), rate_iops=0)
        with pytest.raises(SpecError, match="burstiness"):
            TenantSpec("t", self._workload(), rate_iops=10, burstiness=0.5)
        with pytest.raises(SpecError, match="partition"):
            TenantSpec("t", self._workload(), rate_iops=10,
                       partition=(0.5, 0.25))

    def test_round_trip(self):
        spec = TenantSpec("t", self._workload(), rate_iops=1000,
                          rate_scale=2.0, partition=(0.0, 0.5), seed=9)
        assert TenantSpec.from_dict(spec.to_dict()) == spec

    def test_effective_rate(self):
        spec = TenantSpec("t", self._workload(), rate_iops=1000,
                          rate_scale=2.0)
        assert spec.effective_rate_iops == 2000


class TestHostSpec:
    def test_mode_selection(self):
        assert HostSpec().mode == "closed"
        assert HostSpec(rate_iops=1000).mode == "ncq"
        assert HostSpec(queue_depth=None, open_loop=True).mode == "unbounded"
        tenant = TenantSpec("t", WorkloadSpec("OLTP"), rate_iops=10)
        assert HostSpec(tenants=(tenant,)).mode == "ncq"

    def test_validation(self):
        with pytest.raises(SpecError):
            HostSpec(queue_depth=0)
        with pytest.raises(SpecError, match="open-loop"):
            HostSpec(queue_depth=None)
        tenant = TenantSpec("t", WorkloadSpec("OLTP"), rate_iops=10)
        with pytest.raises(SpecError, match="unique"):
            HostSpec(tenants=(tenant, tenant))

    def test_round_trip_with_tenants(self):
        tenants = (
            TenantSpec("a", WorkloadSpec("OLTP"), rate_iops=10),
            TenantSpec("b", WorkloadSpec("Web"), rate_iops=20),
        )
        spec = HostSpec(queue_depth=16, tenants=tenants)
        assert HostSpec.from_dict(spec.to_dict()) == spec


class TestSimulationSpec:
    def test_needs_exactly_one_stream_source(self):
        with pytest.raises(SpecError, match="workload or host.tenants"):
            SimulationSpec(workload=None)
        tenant = TenantSpec("t", WorkloadSpec("OLTP"), rate_iops=10)
        with pytest.raises(SpecError):
            SimulationSpec(workload="OLTP",
                           host=HostSpec(tenants=(tenant,)))

    def test_string_workload_coerced(self):
        spec = SimulationSpec(workload="OLTP")
        assert isinstance(spec.workload, WorkloadSpec)
        assert spec.workload_name == "OLTP"

    def test_round_trip_is_exact(self):
        spec = SimulationSpec(
            config=SSDConfig.small(),
            workload=WorkloadSpec("Mail", n_requests=300),
            ftl="vert",
            host=HostSpec(queue_depth=8, rate_iops=5000.0),
            warmup_requests=10,
            prefill=0.5,
            seed=42,
            options=RunOptions(telemetry=True, check="strict"),
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert SimulationSpec.from_dict(data) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            SimulationSpec.from_dict({"workload": "OLTP", "bogus": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(SpecError, match="spec_version"):
            SimulationSpec.from_dict(
                {"spec_version": SPEC_VERSION + 1, "workload": "OLTP"}
            )

    def test_with_options(self):
        spec = SimulationSpec(workload="OLTP")
        changed = spec.with_options(telemetry=True)
        assert changed.options.telemetry
        assert not spec.options.telemetry
        assert changed.workload == spec.workload

    def test_build_trace_stamps_rate(self):
        spec = SimulationSpec(
            config=SSDConfig.small(),
            workload=WorkloadSpec("OLTP", n_requests=40),
            host=HostSpec(rate_iops=10_000.0),
        )
        trace = spec.build_trace()
        assert trace.has_arrivals

    def test_build_trace_deterministic(self):
        spec = SimulationSpec(
            config=SSDConfig.small(),
            workload=WorkloadSpec("OLTP", n_requests=40),
            host=HostSpec(rate_iops=10_000.0),
        )
        one = [(r.op, r.lpn, r.arrival_us) for r in spec.build_trace()]
        two = [(r.op, r.lpn, r.arrival_us) for r in spec.build_trace()]
        assert one == two


class TestConfigDict:
    def test_round_trip_geometry_aging_faults(self):
        from repro.faults import get_campaign
        from repro.nand.reliability import AgingState

        config = (
            SSDConfig.small()
            .with_aging(AgingState(2000, 12.0))
            .with_faults(get_campaign("default"))
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert config_to_dict(rebuilt) == config_to_dict(config)
        assert rebuilt.logical_pages == config.logical_pages

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError):
            config_from_dict({"warp_factor": 9})


class TestSpecFiles:
    def test_load_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(
            {"workload": "OLTP", "ftl": "page", "seed": 3}
        ))
        spec = load_spec_file(path)
        assert spec.ftl == "page"
        assert spec.seed == 3

    def test_load_toml(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841  (py3.11+)
        path = tmp_path / "spec.toml"
        path.write_text(
            'ftl = "cube"\nseed = 5\n\n[workload]\nname = "Web"\n'
            'n_requests = 100\n'
        )
        spec = load_spec_file(path)
        assert spec.workload_name == "Web"
        assert spec.seed == 5

    def test_bad_json_names_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="spec.json"):
            load_spec_file(path)

    def test_validate_spec_dict(self):
        assert validate_spec_dict({"workload": "OLTP"}) == []
        problems = validate_spec_dict({"workload": "OLTP", "bogus": 1})
        assert problems and "bogus" in problems[0]
