"""Unit tests of the data-integrity oracle and its shadow store."""

import pytest

from repro.check import DataIntegrityOracle, InvariantViolation, ShadowStore


def _raising_report(violation):
    raise violation


@pytest.fixture
def oracle():
    return DataIntegrityOracle(_raising_report)


class TestShadowStore:
    def test_record_and_expected(self):
        shadow = ShadowStore()
        assert 5 not in shadow
        assert shadow.expected(5) is None
        shadow.record(5, "a")
        shadow.record(5, "b")
        assert 5 in shadow
        assert shadow.expected(5) == "b"
        assert len(shadow) == 1
        assert shadow.writes_recorded == 2
        assert dict(shadow.items()) == {5: "b"}


class TestBufferReads:
    def test_fresh_copy_passes(self, oracle):
        oracle.record_write(3, "v1")
        oracle.verify_buffer_read(3, "v1")
        assert oracle.buffer_reads_verified == 1

    def test_stale_copy_is_flagged(self, oracle):
        oracle.record_write(3, "v2")
        with pytest.raises(InvariantViolation) as caught:
            oracle.verify_buffer_read(3, "v1")
        assert caught.value.invariant == "data_integrity"
        assert caught.value.lpn == 3


class TestUnmappedReads:
    def test_never_written_is_legal(self, oracle):
        oracle.verify_unmapped_read(9)
        assert oracle.unmapped_reads == 1

    def test_written_but_unmapped_is_lost_data(self, oracle):
        oracle.record_write(9, "gone")
        with pytest.raises(InvariantViolation) as caught:
            oracle.verify_unmapped_read(9)
        assert "mapping lost" in caught.value.message


class TestFlashReads:
    def test_pinned_expectation_wins_over_later_write(self, oracle):
        """A concurrent overwrite landing after read issue is legal: the
        read must return the tag current at issue time."""
        oracle.record_write(4, "old")
        pinned = oracle.expected(4)
        oracle.record_write(4, "new")  # lands while the read is in flight
        oracle.verify_flash_read(4, ppn=100, expected=pinned,
                                 data="old", correctable=True)
        assert oracle.reads_verified == 1

    def test_wrong_tag_is_flagged_with_ppn(self, oracle):
        oracle.record_write(4, "right")
        with pytest.raises(InvariantViolation) as caught:
            oracle.verify_flash_read(4, ppn=77, expected="right",
                                     data="wrong", correctable=True)
        assert caught.value.lpn == 4
        assert caught.value.ppn == 77

    def test_uncorrectable_is_an_escape_not_a_violation(self, oracle):
        oracle.record_write(4, "right")
        oracle.verify_flash_read(4, ppn=77, expected="right",
                                 data=None, correctable=False)
        assert oracle.data_loss_escapes == 1
        assert oracle.reads_verified == 0

    def test_unpinned_read_is_not_verified(self, oracle):
        oracle.verify_flash_read(4, ppn=77, expected=None,
                                 data="whatever", correctable=True)
        assert oracle.reads_verified == 1  # counted, nothing to compare


class TestSeeding:
    def test_prefill_seeds_identity_tags(self, oracle):
        oracle.seed_prefilled(4)
        for lpn in range(4):
            assert oracle.expected(lpn) == lpn
        assert oracle.expected(4) is None

    def test_stats_shape(self, oracle):
        oracle.seed_prefilled(2)
        oracle.verify_buffer_read(0, 0)
        stats = oracle.stats()
        assert stats["shadow_lpns"] == 2
        assert stats["buffer_reads_verified"] == 1
        assert stats["data_loss_escapes"] == 0
