"""Run artifacts: content-addressable ids, byte-identity of repeated
runs, validation, and the artifacts-off metamorphic contract."""

import filecmp
import json
import os

import pytest

from repro.api import run_spec
from repro.obs.artifact import (
    load_artifact,
    run_fingerprint,
    run_id,
    validate_artifact,
    write_sweep_manifest,
)
from repro.specs import simulation_spec_from_dict


def _spec(seed=5, **options):
    spec = simulation_spec_from_dict({
        "spec_version": 1,
        "config": {"geometry": {"blocks_per_chip": 8}},
        "workload": {"name": "OLTP", "n_requests": 200},
        "ftl": "cube",
        "host": {"queue_depth": 8},
        "warmup_requests": 50,
        "prefill": 0.3,
        "seed": seed,
    })
    return spec.with_options(**options) if options else spec


@pytest.fixture(scope="module")
def artifact_run(tmp_path_factory):
    base = tmp_path_factory.mktemp("artifacts")
    spec = _spec(artifact_dir=str(base))
    result = run_spec(spec)
    return spec, result


class TestRunId:
    def test_artifact_knobs_do_not_change_identity(self):
        plain = _spec()
        here = _spec(artifact_dir="/tmp/a", artifact_every=500.0)
        there = _spec(artifact_dir="/somewhere/else")
        assert run_id(plain) == run_id(here) == run_id(there)
        assert run_id(plain) == run_fingerprint(plain)[:16]

    def test_seed_is_part_of_identity(self):
        assert run_id(_spec(seed=5)) != run_id(_spec(seed=6))


class TestWrittenArtifact:
    def test_result_points_at_a_valid_directory(self, artifact_run):
        spec, result = artifact_run
        assert result.artifact is not None
        assert os.path.basename(result.artifact) == run_id(spec)
        assert validate_artifact(result.artifact) == []

    def test_load_round_trips_the_stats(self, artifact_run):
        spec, result = artifact_run
        artifact = load_artifact(result.artifact)
        assert artifact["result"] == result.stats.to_dict()
        assert artifact["manifest"]["run_id"] == run_id(spec)
        assert artifact["timeseries"], "expected at least one window"
        assert artifact["exemplars"]["kinds"]

    def test_rerun_is_byte_identical(self, artifact_run, tmp_path):
        _, result = artifact_run
        again = run_spec(_spec(artifact_dir=str(tmp_path)))
        names = sorted(os.listdir(result.artifact))
        assert sorted(os.listdir(again.artifact)) == names
        match, mismatch, errors = filecmp.cmpfiles(
            result.artifact, again.artifact, names, shallow=False
        )
        assert (mismatch, errors) == ([], [])
        assert match == names

    def test_metamorphic_artifacts_off(self, artifact_run):
        _, with_artifacts = artifact_run
        plain = run_spec(_spec())
        assert plain.artifact is None
        assert plain.stats.to_dict() == with_artifacts.stats.to_dict()


class TestSweepManifest:
    def test_index_records_cells_relative_to_base(self, tmp_path):
        base = str(tmp_path)
        cell = os.path.join(base, "abcd1234abcd1234")
        os.mkdir(cell)
        index = write_sweep_manifest(
            base, {"qd8": cell, "qd16": None}, base_seed=5
        )
        with open(index) as handle:
            data = json.load(handle)
        assert data["kind"] == "sweep"
        assert data["base_seed"] == 5
        assert data["cells"] == {"qd8": "abcd1234abcd1234", "qd16": None}


class TestValidation:
    def test_tampered_result_is_reported(self, artifact_run, tmp_path):
        run = run_spec(_spec(artifact_dir=str(tmp_path)))
        result_path = os.path.join(run.artifact, "result.json")
        with open(result_path) as handle:
            doc = json.load(handle)
        doc["iops"] *= 0.5
        with open(result_path, "w") as handle:
            json.dump(doc, handle)
        problems = validate_artifact(run.artifact)
        assert problems
        assert any("result.json" in p for p in problems)

    def test_missing_directory_is_reported(self, tmp_path):
        problems = validate_artifact(str(tmp_path / "nope"))
        assert problems
