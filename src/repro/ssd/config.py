"""SSD configuration.

Bundles the device geometry, timing, buffering, garbage-collection and
aging knobs of a simulated SSD.  The default values reproduce the paper's
evaluation platform (Section 6.1) scaled down in *capacity only* (fewer
blocks per chip) so simulations complete quickly; the block shape -- the
part that matters for process similarity -- is exactly the paper's
48-layer x 4-WL TLC geometry.  Use :meth:`SSDConfig.paper_scale` for the
full 32-GB configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.faults.campaign import FaultCampaign
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.nand.reliability import AgingState
from repro.nand.timing import NandTiming


@dataclass(frozen=True)
class SSDConfig:
    """All knobs of a simulated SSD."""

    geometry: SSDGeometry = field(
        default_factory=lambda: SSDGeometry(
            n_channels=2,
            chips_per_channel=4,
            blocks_per_chip=48,
            block=BlockGeometry(),
        )
    )
    timing: NandTiming = field(default_factory=NandTiming)
    #: write buffer capacity in pages (sized so write bursts can drive
    #: utilization past mu_TH, activating the WAM's follower allocation)
    buffer_capacity_pages: int = 24
    #: latency of serving a read hit from the write buffer
    buffer_read_us: float = 5.0
    #: write-buffer utilization threshold mu_TH of the WAM
    mu_threshold: float = 0.9
    #: active blocks per chip (the paper uses two)
    active_blocks_per_chip: int = 2
    #: maximum WL programs in flight per chip
    max_inflight_programs: int = 2
    #: GC starts when a chip's free-block pool falls below this
    gc_trigger_blocks: int = 4
    #: pick the least-worn free block on allocation (dynamic wear
    #: leveling); False recycles blocks FIFO
    wear_aware_allocation: bool = True
    #: GC only takes a victim whose invalid-page fraction is at least
    #: this (migrating a ~fully-valid block consumes as much space as it
    #: frees -- a livelock).  Ignored when the free pool is critical.
    gc_min_invalid_fraction: float = 0.05
    #: fraction of physical capacity exposed as logical space
    logical_fraction: float = 0.80
    #: baseline aging applied to every chip before the run
    aging: AgingState = field(default_factory=AgingState)
    #: probability of a sudden operating-condition shift per WL program
    env_shift_prob: float = 2e-4
    #: store per-page data tags for functional verification
    store_tags: bool = False
    #: store per-page OOB metadata ``(lpn, seq)`` in the chip model --
    #: the durable spare-area records the SPOR recovery path rebuilds
    #: the mapping from (see ``docs/PERSISTENCE.md``).  Off by default:
    #: page data stays the LPN and runs are bit-identical to builds
    #: without OOB support.
    store_oob: bool = False
    #: chip-model seed
    seed: int = 0
    #: fault-injection campaign; ``None`` disables injection entirely and
    #: keeps every recovery path dormant (bit-for-bit fault-free runs)
    faults: Optional[FaultCampaign] = None
    #: conservative re-reads attempted after an uncorrectable read before
    #: declaring the data lost
    read_recovery_attempts: int = 2
    #: reads decoding with less than this fraction of ECC margin left
    #: trigger a background scrub of the page
    scrub_margin_threshold: float = 0.1

    def __post_init__(self) -> None:
        if self.buffer_capacity_pages < self.geometry.block.pages_per_wl:
            raise ValueError("buffer must hold at least one WL group")
        if not 0.0 < self.logical_fraction < 1.0:
            raise ValueError("logical_fraction must be in (0, 1)")
        if self.gc_trigger_blocks < 2:
            raise ValueError("gc_trigger_blocks must be >= 2")
        if self.max_inflight_programs < 1:
            raise ValueError("max_inflight_programs must be >= 1")
        if self.read_recovery_attempts < 1:
            raise ValueError("read_recovery_attempts must be >= 1")
        if not 0.0 <= self.scrub_margin_threshold < 1.0:
            raise ValueError("scrub_margin_threshold must be in [0, 1)")

    @property
    def logical_pages(self) -> int:
        """Number of logical pages exposed to the host."""
        return int(self.geometry.total_pages * self.logical_fraction)

    @property
    def logical_bytes(self) -> int:
        return self.logical_pages * self.geometry.block.page_size_bytes

    def with_aging(self, aging: AgingState) -> "SSDConfig":
        """A copy of this config pre-conditioned to an aging state."""
        return replace(self, aging=aging)

    def with_seed(self, seed: int) -> "SSDConfig":
        return replace(self, seed=seed)

    def with_faults(self, faults: Optional[FaultCampaign]) -> "SSDConfig":
        """A copy of this config running under a fault campaign."""
        return replace(self, faults=faults)

    @classmethod
    def paper_scale(cls, **overrides) -> "SSDConfig":
        """The paper's full 32-GB platform: 2 buses x 4 chips x 428
        blocks, 48 h-layers x 4 WLs, 16-KB TLC pages."""
        geometry = SSDGeometry(
            n_channels=2,
            chips_per_channel=4,
            blocks_per_chip=428,
            block=BlockGeometry(),
        )
        return cls(geometry=geometry, **overrides)

    @classmethod
    def small(cls, **overrides) -> "SSDConfig":
        """A small configuration for unit tests (single channel)."""
        geometry = SSDGeometry(
            n_channels=1,
            chips_per_channel=2,
            blocks_per_chip=12,
            block=BlockGeometry(n_layers=8, wls_per_layer=4, pages_per_wl=3),
        )
        defaults = dict(geometry=geometry, buffer_capacity_pages=24)
        defaults.update(overrides)
        return cls(**defaults)
