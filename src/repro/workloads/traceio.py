"""Trace persistence: save and load traces as plain text.

Format (one request per line, ``#`` comments allowed)::

    # repro-trace v1
    # name=OLTP logical_pages=194641
    W 12345 1
    R 777 4

Keeping traces on disk lets expensive workload generations be reused and
external block traces be imported.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.workloads.base import IORequest, Trace

_MAGIC = "# repro-trace v1"


class TraceFormatError(ValueError):
    """The file is not a valid repro trace."""


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path``."""
    path = Path(path)
    lines = [
        _MAGIC,
        f"# name={trace.name} logical_pages={trace.logical_pages}",
    ]
    lines.extend(
        f"{request.op} {request.lpn} {request.n_pages}" for request in trace
    )
    path.write_text("\n".join(lines) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise TraceFormatError(f"{path}: missing '{_MAGIC}' header")
    name = path.stem
    logical_pages = None
    requests = []
    for line_number, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                key, _, value = token.partition("=")
                if key == "name" and value:
                    name = value
                elif key == "logical_pages" and value:
                    logical_pages = int(value)
            continue
        parts = line.split()
        if len(parts) != 3:
            raise TraceFormatError(
                f"{path}:{line_number}: expected 'OP LPN N_PAGES', got {line!r}"
            )
        op, lpn, n_pages = parts
        try:
            requests.append(IORequest(op, int(lpn), int(n_pages)))
        except ValueError as error:
            raise TraceFormatError(f"{path}:{line_number}: {error}") from error
    if logical_pages is None:
        logical_pages = max((r.end_lpn for r in requests), default=1)
    try:
        return Trace(name, logical_pages, requests)
    except ValueError as error:
        raise TraceFormatError(f"{path}: {error}") from error
