"""The checkpoint container: header schema, atomicity, and the
validation a resume performs before trusting a checkpoint."""

import json
import os

import pytest

from repro.api import run_simulation
from repro.persist import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    config_fingerprint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    read_header,
    validate_header,
    write_checkpoint,
)
from repro.ssd.config import SSDConfig


def _header(**overrides):
    header = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "config_fingerprint": "ab" * 32,
        "ftl": "cube",
        "workload": "OLTP",
        "seed": 7,
        "n_requests": 100,
        "queue_depth": 32,
        "warmup_requests": 0,
        "checkpoint_every": 10,
        "check": None,
        "segment": 1,
        "completed": 10,
        "clock_us": 123.5,
    }
    header.update(overrides)
    return header


class TestHeaderSchema:
    def test_valid_header_passes(self):
        assert validate_header(_header()) == []

    def test_missing_key_is_reported(self):
        header = _header()
        del header["seed"]
        problems = validate_header(header)
        assert any("seed" in problem for problem in problems)

    def test_wrong_type_is_reported(self):
        problems = validate_header(_header(n_requests="100"))
        assert any("n_requests" in problem for problem in problems)

    def test_bool_does_not_pass_as_int(self):
        problems = validate_header(_header(segment=True))
        assert any("segment" in problem for problem in problems)

    def test_future_schema_version_is_rejected(self):
        problems = validate_header(
            _header(schema_version=CHECKPOINT_SCHEMA_VERSION + 1)
        )
        assert any("schema_version" in problem for problem in problems)

    def test_non_dict_is_rejected(self):
        assert validate_header([1, 2]) != []


class TestContainer:
    def test_write_then_load_roundtrip(self, tmp_path):
        state = {"payload": [1, 2, 3]}
        path = write_checkpoint(str(tmp_path), _header(), state)
        header, loaded = load_checkpoint(path)
        assert header == _header()
        assert loaded == state

    def test_write_refuses_invalid_header(self, tmp_path):
        with pytest.raises(CheckpointError, match="seed"):
            header = _header()
            del header["seed"]
            write_checkpoint(str(tmp_path), header, {})

    def test_no_partial_directory_is_listed(self, tmp_path):
        write_checkpoint(str(tmp_path), _header(segment=1), {})
        # a half-written directory (no header yet) must be invisible
        os.makedirs(tmp_path / "ckpt_00000002")
        (tmp_path / "junk").mkdir()
        assert [os.path.basename(p) for p in list_checkpoints(str(tmp_path))] \
            == ["ckpt_00000001"]

    def test_latest_checkpoint_orders_numerically(self, tmp_path):
        for segment in (1, 2, 10):
            write_checkpoint(
                str(tmp_path),
                _header(segment=segment, completed=segment * 10),
                {},
            )
        assert latest_checkpoint(str(tmp_path)).endswith("ckpt_00000010")

    def test_rewrite_same_segment_replaces(self, tmp_path):
        write_checkpoint(str(tmp_path), _header(), {"v": 1})
        path = write_checkpoint(str(tmp_path), _header(), {"v": 2})
        _, state = load_checkpoint(path)
        assert state == {"v": 2}

    def test_corrupt_header_is_refused(self, tmp_path):
        path = write_checkpoint(str(tmp_path), _header(), {})
        with open(os.path.join(path, "header.json"), "w") as fh:
            json.dump({"schema_version": "x"}, fh)
        with pytest.raises(CheckpointError, match="invalid header"):
            read_header(path)


class TestResumeValidation:
    def _checkpoint(self, tmp_path, config, **overrides):
        kwargs = dict(
            n_requests=120, seed=9, prefill=0.4,
            checkpoint_every=40, checkpoint_dir=str(tmp_path / "out"),
        )
        kwargs.update(overrides)
        run_simulation(config, "OLTP", ftl="cube", **kwargs)
        return latest_checkpoint(str(tmp_path / "out"))

    def test_config_fingerprint_mismatch(self, tmp_path):
        config = SSDConfig.small()
        checkpoint = self._checkpoint(tmp_path, config)
        other = SSDConfig.small(buffer_capacity_pages=12)
        assert config_fingerprint(other) != config_fingerprint(config)
        with pytest.raises(CheckpointError, match="fingerprint"):
            run_simulation(other, "OLTP", ftl="cube", seed=9,
                           n_requests=120, resume_from=checkpoint)

    def test_ftl_mismatch(self, tmp_path):
        config = SSDConfig.small()
        checkpoint = self._checkpoint(tmp_path, config)
        with pytest.raises(CheckpointError, match="ftl"):
            run_simulation(config, "OLTP", ftl="page", seed=9,
                           n_requests=120, resume_from=checkpoint)

    def test_seed_mismatch(self, tmp_path):
        config = SSDConfig.small()
        checkpoint = self._checkpoint(tmp_path, config)
        with pytest.raises(CheckpointError, match="seed"):
            run_simulation(config, "OLTP", ftl="cube", seed=10,
                           n_requests=120, resume_from=checkpoint)

    def test_workload_mismatch(self, tmp_path):
        config = SSDConfig.small()
        checkpoint = self._checkpoint(tmp_path, config)
        with pytest.raises(CheckpointError, match="workload"):
            run_simulation(config, "Proxy", ftl="cube", seed=9,
                           n_requests=120, resume_from=checkpoint)


class TestApiGuards:
    def test_checkpoint_without_dir_raises(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_simulation(SSDConfig.small(), "OLTP", checkpoint_every=10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trace": "memory"},
            {"profile": True},
            {"metrics_interval": 100.0},
            {"open_loop": True},
            {"max_events": 10},
        ],
    )
    def test_incompatible_options_raise(self, tmp_path, kwargs):
        with pytest.raises(ValueError, match="incompatible"):
            run_simulation(
                SSDConfig.small(), "OLTP",
                checkpoint_every=10, checkpoint_dir=str(tmp_path),
                **kwargs,
            )

    def test_telemetry_on_resume_raises(self, tmp_path):
        config = SSDConfig.small()
        run_simulation(
            config, "OLTP", ftl="cube", n_requests=120, seed=9,
            prefill=0.4, checkpoint_every=40,
            checkpoint_dir=str(tmp_path / "out"),
        )
        checkpoint = latest_checkpoint(str(tmp_path / "out"))
        with pytest.raises(ValueError, match="telemetry"):
            run_simulation(
                config, "OLTP", ftl="cube", seed=9, n_requests=120,
                telemetry=True, resume_from=checkpoint,
            )

    def test_telemetry_allowed_straight_through(self, tmp_path):
        result = run_simulation(
            SSDConfig.small(), "OLTP", ftl="cube", n_requests=120,
            seed=9, prefill=0.4, telemetry=True,
            checkpoint_every=40, checkpoint_dir=str(tmp_path),
        )
        assert result.telemetry is not None
