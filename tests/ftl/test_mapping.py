"""Tests for the page mapper (L2P/P2L/validity invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ftl.mapping import UNMAPPED, PageMapper
from repro.nand.geometry import BlockGeometry, SSDGeometry


@pytest.fixture
def mapper(ssd_geometry):
    return PageMapper(ssd_geometry, logical_pages=ssd_geometry.total_pages // 2)


class TestBindLookup:
    def test_unmapped_by_default(self, mapper):
        assert mapper.lookup(0) == UNMAPPED

    def test_bind_round_trip(self, mapper):
        mapper.bind(5, 100)
        assert mapper.lookup(5) == 100
        assert mapper.lpn_of(100) == 5
        assert mapper.is_valid(100)

    def test_rebind_invalidates_old(self, mapper):
        mapper.bind(5, 100)
        old = mapper.bind(5, 200)
        assert old == 100
        assert not mapper.is_valid(100)
        assert mapper.lpn_of(100) == UNMAPPED
        assert mapper.lookup(5) == 200

    def test_bind_to_valid_ppn_rejected(self, mapper):
        mapper.bind(5, 100)
        with pytest.raises(ValueError):
            mapper.bind(6, 100)

    def test_invalidate_lpn(self, mapper):
        mapper.bind(5, 100)
        mapper.invalidate_lpn(5)
        assert mapper.lookup(5) == UNMAPPED
        assert not mapper.is_valid(100)

    def test_bounds(self, mapper):
        with pytest.raises(IndexError):
            mapper.lookup(mapper.logical_pages)
        with pytest.raises(IndexError):
            mapper.bind(0, mapper.geometry.total_pages)

    def test_logical_space_cannot_exceed_physical(self, ssd_geometry):
        with pytest.raises(ValueError):
            PageMapper(ssd_geometry, ssd_geometry.total_pages + 1)


class TestBlockAccounting:
    def test_valid_count_tracks_binds(self, mapper):
        per_block = mapper.geometry.block.pages_per_block
        mapper.bind(0, 0)
        mapper.bind(1, 1)
        mapper.bind(2, per_block)  # second block of chip 0
        assert mapper.valid_count(0, 0) == 2
        assert mapper.valid_count(0, 1) == 1

    def test_valid_pages_of_block(self, mapper):
        mapper.bind(7, 3)
        mapper.bind(9, 5)
        pages = mapper.valid_pages_of_block(0, 0)
        assert (3, 7) in pages and (5, 9) in pages

    def test_clear_block_requires_no_valid(self, mapper):
        mapper.bind(7, 3)
        with pytest.raises(ValueError):
            mapper.clear_block(0, 0)
        mapper.invalidate_lpn(7)
        mapper.clear_block(0, 0)
        assert mapper.valid_count(0, 0) == 0

    def test_clear_block_resets_p2l(self, mapper):
        mapper.bind(7, 3)
        mapper.bind(7, 4)  # old ppn 3 invalid but p2l cleared already
        mapper.invalidate_lpn(7)
        mapper.clear_block(0, 0)
        assert mapper.lpn_of(3) == UNMAPPED
        assert mapper.lpn_of(4) == UNMAPPED

    def test_mapped_lpn_count(self, mapper):
        mapper.bind(0, 10)
        mapper.bind(1, 11)
        mapper.invalidate_lpn(0)
        assert mapper.mapped_lpn_count() == 1


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["bind", "trim"]),
            st.integers(min_value=0, max_value=30),  # lpn
            st.integers(min_value=0, max_value=200),  # ppn candidate
        ),
        max_size=80,
    )
)
def test_mapper_invariants_under_random_operations(operations):
    """L2P/P2L stay mutually consistent and valid counts never drift
    under arbitrary bind/trim sequences."""
    geometry = SSDGeometry(
        n_channels=1,
        chips_per_channel=1,
        blocks_per_chip=4,
        block=BlockGeometry(n_layers=4, wls_per_layer=4, pages_per_wl=4),
    )
    mapper = PageMapper(geometry, logical_pages=32)
    for op, lpn, ppn in operations:
        if op == "bind":
            ppn = ppn % geometry.total_pages
            if not mapper.is_valid(ppn):
                mapper.bind(lpn % 32, ppn)
        else:
            mapper.invalidate_lpn(lpn % 32)
        mapper.check_invariants()
