"""Segmented checkpoint/resume driver for :func:`repro.api.run_simulation`.

Checkpointing rides on the *quiescent barrier* contract of
:meth:`repro.ssd.controller.SSDSimulation.run_in_segments`: the trace is
replayed ``checkpoint_every`` host requests at a time, each segment runs
to full event-queue drain, and the drained instant between segments is
where every component's ``state_dict()`` is captured -- no in-flight
programs, no pending host writes, no active GC, empty FIFO queues.  The
component ``state_dict()`` methods *assert* that quiescence, so a
checkpoint can never silently capture a half-finished operation.

Resume builds a fresh simulation (skipping prefill -- the chips' full
media state is in the checkpoint), loads every component, and continues
the remaining segments with the carried-over accounting.  Because both
the straight-through checkpointing run and the resumed run drain at the
same request boundaries, they replay the identical event sequence:
results and ``state_digest`` are byte-identical (the resume-equivalence
property pinned by ``tests/persist``).

The segment drains themselves are a (deterministic) scheduling change
relative to an un-segmented run, so resume equivalence is defined
between checkpoint-enabled runs; a checkpoint-*off* run stays
bit-identical to builds without this module entirely.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Optional, Union

from repro.persist.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    config_fingerprint,
    load_checkpoint,
    write_checkpoint,
)
from repro.specs import SimulationSpec, SpecError, WorkloadSpec
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads import build_workload
from repro.workloads.base import Trace


def _build_workload_arg(
    workload: Union[str, Trace, WorkloadSpec],
    config: SSDConfig,
    n_requests: int,
    seed: int,
) -> Trace:
    """Materialize a checkpointable workload argument.

    Accepts the legacy name / pre-built-trace forms plus a
    :class:`~repro.specs.WorkloadSpec` (the spec-form path through
    :func:`repro.api.run_spec`).
    """
    if isinstance(workload, WorkloadSpec):
        return workload.build(config, default_seed=seed)
    if isinstance(workload, str):
        return build_workload(workload, config.logical_pages, n_requests, seed=seed)
    return workload


def capture_state(sim: SSDSimulation, accounting: dict) -> dict:
    """One quiescent-barrier snapshot of every stateful component.

    Must be called with the engine fully drained; the component
    ``state_dict()`` implementations raise otherwise.
    """
    controller = sim.controller
    return {
        "engine": controller.engine.state_dict(),
        "chips": [chip.state_dict() for chip in controller.chips],
        "chip_resources": [
            res.state_dict() for res in controller._chip_resources
        ],
        "bus_resources": [
            res.state_dict() for res in controller._bus_resources
        ],
        "ftl": sim.ftl.state_dict(),
        "injector": (
            controller.faults.state_dict()
            if controller.faults is not None
            else None
        ),
        "checker": (
            sim.checker.state_dict() if sim.checker is not None else None
        ),
        "accounting": accounting,
    }


def restore_state(sim: SSDSimulation, state: dict) -> None:
    """Load a :func:`capture_state` snapshot into a freshly built,
    *unprefilled* simulation.  Wiring (observers, telemetry hooks,
    report callbacks) is whatever the fresh build attached; only state
    is replaced."""
    controller = sim.controller
    controller.engine.load_state_dict(state["engine"])
    for chip, chip_state in zip(controller.chips, state["chips"]):
        chip.load_state_dict(chip_state)
    for res, res_state in zip(
        controller._chip_resources, state["chip_resources"]
    ):
        res.load_state_dict(res_state)
    for res, res_state in zip(
        controller._bus_resources, state["bus_resources"]
    ):
        res.load_state_dict(res_state)
    sim.ftl.load_state_dict(state["ftl"])
    if state["injector"] is not None:
        if controller.faults is None:
            raise CheckpointError(
                "checkpoint carries fault-injector state but the config "
                "has no fault campaign"
            )
        controller.faults.load_state_dict(state["injector"])
    if state["checker"] is not None and sim.checker is not None:
        sim.checker.load_state_dict(state["checker"])


def check_level_of(check) -> Optional[str]:
    """Normalize a ``check=`` argument to its level string (or None).

    Checkpoint headers persist the *level*, not the config object, so a
    resumed run rebuilds the checker through
    :func:`repro.check.parse_check_level`.
    """
    if check is None or check is False:
        return None
    if check is True:
        return "on"
    if isinstance(check, str):
        return check
    level = getattr(check, "level", None)
    if not isinstance(level, str):
        raise ValueError(
            "checkpointing supports check=None/True/'on'/'strict' or a "
            "CheckConfig with a level attribute"
        )
    return level


def _build_sim(config, ftl, check_level, registry, ftl_kwargs, context):
    from repro.check import InvariantChecker, parse_check_level

    checker = None
    check_config = parse_check_level(check_level)
    if check_config is not None:
        if not config.store_tags:
            config = replace(config, store_tags=True)
        checker = InvariantChecker(check_config)
        checker.context.update(check=check_config.level, **context)
    sim = SSDSimulation(
        config, ftl=ftl, telemetry=registry, checker=checker, **ftl_kwargs
    )
    return sim, checker


def run_checkpointed(
    config: SSDConfig,
    workload: Union[str, Trace, WorkloadSpec],
    ftl: str = "cube",
    *,
    queue_depth: int = 32,
    warmup_requests: int = 0,
    prefill: float = 0.9,
    n_requests: int = 8000,
    seed: int = 7,
    telemetry: bool = False,
    check=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    spec: Optional[SimulationSpec] = None,
    **ftl_kwargs,
):
    """Run one simulation with checkpointing and/or from a checkpoint.

    With ``resume_from=None``: a fresh run that writes one checkpoint
    directory under ``checkpoint_dir`` after every ``checkpoint_every``
    completed host requests (never after the final segment -- the run's
    result *is* the final state).

    With ``resume_from=PATH``: rebuild from that checkpoint and run the
    remaining requests.  The header is authoritative for ``queue_depth``,
    ``warmup_requests``, ``checkpoint_every`` and the check level (they
    must match the original run for resume equivalence); ``config``,
    ``ftl``, ``workload``, ``seed`` and ``n_requests`` must match the
    header and are validated.  Further checkpoints continue into
    ``checkpoint_dir`` (default: the directory containing
    ``resume_from``).  ``**ftl_kwargs`` are not persisted and must be
    re-passed verbatim.

    ``spec`` (when the call came through :func:`repro.api.run_spec`) is
    embedded in every checkpoint header under the ``"spec"`` key, so a
    checkpoint directory is self-describing: ``repro-ssd simulate
    --spec`` can resume it without re-stating the run parameters.
    """
    from repro.api import SimulationResult
    from repro.obs.registry import TelemetryRegistry

    if resume_from is not None:
        return _resume(
            config,
            workload,
            ftl,
            n_requests=n_requests,
            seed=seed,
            telemetry=telemetry,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
            ftl_kwargs=ftl_kwargs,
        )

    if checkpoint_every is None or checkpoint_every < 1:
        raise ValueError("checkpoint_every must be an integer >= 1")
    if checkpoint_dir is None:
        raise ValueError("checkpoint_dir is required when checkpointing")
    check_level = check_level_of(check)
    trace = _build_workload_arg(workload, config, n_requests, seed)
    registry = TelemetryRegistry() if telemetry else None
    context = {
        "ftl": ftl,
        "workload": trace.name,
        "seed": seed,
    }
    sim, checker = _build_sim(
        config, ftl, check_level, registry, ftl_kwargs, context
    )
    if prefill > 0:
        sim.prefill(prefill)
    base_header = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "config_fingerprint": config_fingerprint(config),
        "ftl": ftl,
        "workload": trace.name,
        "seed": seed,
        "n_requests": len(trace),
        "queue_depth": queue_depth,
        "warmup_requests": warmup_requests,
        "checkpoint_every": checkpoint_every,
        "check": check_level,
    }
    if spec is not None:
        try:
            base_header["spec"] = spec.to_dict()
        except SpecError:
            # in-code constructions (pre-built Trace, custom timing or
            # campaign objects) have no file form; the header simply
            # stays spec-less as it was before the spec API existed
            pass

    def on_barrier(accounting: dict) -> None:
        header = dict(base_header)
        header["segment"] = accounting["completed"] // checkpoint_every
        header["completed"] = accounting["completed"]
        header["clock_us"] = float(sim.controller.engine.now)
        write_checkpoint(
            checkpoint_dir, header, capture_state(sim, accounting)
        )

    stats = sim.run_in_segments(
        trace,
        queue_depth=queue_depth,
        warmup_requests=warmup_requests,
        segment_requests=checkpoint_every,
        on_barrier=on_barrier,
    )
    check_report = checker.finalize() if checker is not None else None
    return SimulationResult(
        stats=stats,
        telemetry=registry.snapshot() if registry is not None else None,
        check=check_report,
    )


def _resume(
    config: SSDConfig,
    workload: Union[str, Trace, WorkloadSpec],
    ftl: str,
    *,
    n_requests: int,
    seed: int,
    telemetry: bool,
    checkpoint_dir: Optional[str],
    resume_from: str,
    ftl_kwargs: dict,
):
    from repro.api import SimulationResult

    if telemetry:
        raise ValueError(
            "telemetry is not supported on resume (registry collectors "
            "are not serializable); re-run straight-through instead"
        )
    header, state = load_checkpoint(resume_from)
    fingerprint = config_fingerprint(config)
    if header["config_fingerprint"] != fingerprint:
        raise CheckpointError(
            f"{resume_from}: config fingerprint mismatch "
            f"(checkpoint {header['config_fingerprint'][:12]}..., "
            f"passed config {fingerprint[:12]}...)"
        )
    if header["ftl"] != ftl:
        raise CheckpointError(
            f"{resume_from}: checkpoint is for ftl={header['ftl']!r}, "
            f"got {ftl!r}"
        )
    if isinstance(workload, (str, WorkloadSpec)):
        if seed != header["seed"]:
            raise CheckpointError(
                f"{resume_from}: checkpoint seed {header['seed']} != "
                f"passed seed {seed}"
            )
        if isinstance(workload, WorkloadSpec):
            trace = workload.build(config, default_seed=header["seed"])
        else:
            trace = build_workload(
                workload,
                config.logical_pages,
                header["n_requests"],
                seed=header["seed"],
            )
    else:
        trace = workload
    if trace.name != header["workload"] or len(trace) != header["n_requests"]:
        raise CheckpointError(
            f"{resume_from}: checkpoint is for workload "
            f"{header['workload']!r} x {header['n_requests']}, got "
            f"{trace.name!r} x {len(trace)}"
        )
    checkpoint_every = header["checkpoint_every"]
    queue_depth = header["queue_depth"]
    warmup_requests = header["warmup_requests"]
    out_dir = checkpoint_dir or os.path.dirname(os.path.abspath(resume_from))
    context = {
        "ftl": ftl,
        "workload": trace.name,
        "seed": header["seed"],
    }
    sim, checker = _build_sim(
        config, ftl, header["check"], None, ftl_kwargs, context
    )
    # no prefill: the checkpoint carries the full media state
    restore_state(sim, state)
    base_header = {
        key: header[key]
        for key in header
        if key not in ("segment", "completed", "clock_us")
    }

    def on_barrier(accounting: dict) -> None:
        next_header = dict(base_header)
        next_header["segment"] = accounting["completed"] // checkpoint_every
        next_header["completed"] = accounting["completed"]
        next_header["clock_us"] = float(sim.controller.engine.now)
        write_checkpoint(out_dir, next_header, capture_state(sim, accounting))

    stats = sim.run_in_segments(
        trace,
        queue_depth=queue_depth,
        warmup_requests=warmup_requests,
        segment_requests=checkpoint_every,
        on_barrier=on_barrier,
        resume_accounting=state["accounting"],
    )
    check_report = checker.finalize() if checker is not None else None
    return SimulationResult(stats=stats, check=check_report)
