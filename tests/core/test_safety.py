"""Tests for the post-program safety check (Section 4.1.4)."""

import pytest

from repro.core.safety import SafetyChecker, SafetyVerdict
from repro.nand.ispp import window_squeeze_ber_multiplier


@pytest.fixture
def checker():
    return SafetyChecker()


class TestSafetyChecker:
    def test_identical_ber_passes(self, checker):
        assert checker.check(1e-4, 1e-4) is SafetyVerdict.OK

    def test_rtn_scale_noise_passes(self, checker):
        assert checker.check(1e-4, 1.03e-4) is SafetyVerdict.OK

    def test_large_elevation_flags_reprogram(self, checker):
        assert checker.check(1e-4, 3e-4) is SafetyVerdict.REPROGRAM

    def test_legitimate_squeeze_normalized_out(self, checker):
        """A follower with a 320 mV squeeze has ~2.2x the leader's BER --
        that is expected and must NOT trip the check."""
        reference = 1e-4
        measured = reference * window_squeeze_ber_multiplier(320)
        assert checker.check(reference, measured, 320) is SafetyVerdict.OK

    def test_over_program_on_top_of_squeeze_flags(self, checker):
        reference = 1e-4
        measured = reference * window_squeeze_ber_multiplier(320) * 1.8
        assert checker.check(reference, measured, 320) is SafetyVerdict.REPROGRAM

    def test_single_over_skip_detectable(self, checker):
        """One over-skipped state inflates BER by ~1.8x -- above the
        default 1.5x threshold."""
        assert checker.check(1e-4, 1.8e-4) is SafetyVerdict.REPROGRAM

    def test_lower_ber_never_flags(self, checker):
        assert checker.check(1e-4, 0.2e-4) is SafetyVerdict.OK

    def test_rejects_non_positive(self, checker):
        with pytest.raises(ValueError):
            checker.check(0.0, 1e-4)
        with pytest.raises(ValueError):
            checker.check(1e-4, 0.0)

    def test_normalize_inverts_squeeze(self, checker):
        raw = 1e-4 * window_squeeze_ber_multiplier(240)
        assert checker.normalize(raw, 240) == pytest.approx(1e-4)

    def test_custom_threshold(self):
        lax = SafetyChecker(ratio_threshold=5.0)
        assert lax.check(1e-4, 3e-4) is SafetyVerdict.OK
