"""Declarative simulation specs: what to run, fully serializable.

:func:`repro.api.run_simulation` grew ~20 flat kwargs over five PRs;
trace-driven workloads, NCQ host behavior, and multi-tenant scenarios
do not fit that shape.  This module is the redesigned front door: four
small frozen dataclasses compose into one :class:`SimulationSpec` that
every runner consumes --

- :class:`WorkloadSpec` -- *what stream*: a registry name or a
  ``trace:<path>`` reference, its request count, seed, and per-generator
  params (``zipf`` skew, block-trace units, ...).
- :class:`HostSpec` -- *how the host issues it*: queue depth, closed vs
  open loop, optional arrival-rate stamping, and the tenant list of a
  multi-tenant scenario.
- :class:`TenantSpec` -- one tenant stream of a multi-tenant scenario:
  its own workload, arrival rate, LPN partition, and seed.
- :class:`RunOptions` -- observability and persistence toggles (trace /
  telemetry / profile / check / checkpoint group).

Specs serialize to plain dicts (:meth:`SimulationSpec.to_dict`) and
back (:func:`simulation_spec_from_dict`), so a run is reproducible from
a JSON or TOML file (:func:`load_spec_file`, ``repro-ssd simulate
--spec``).  The old kwarg form of ``run_simulation`` remains as a thin
shim that builds a spec -- the two forms are verified byte-identical by
the golden-trace suite.

Example::

    from repro.specs import SimulationSpec, WorkloadSpec, HostSpec
    from repro.api import run_simulation

    spec = SimulationSpec(
        workload=WorkloadSpec("zipf", n_requests=4000,
                              params={"theta": 1.2}),
        ftl="cube",
        host=HostSpec(queue_depth=16),
        seed=11,
    )
    result = run_simulation(spec)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.faults.campaign import CAMPAIGNS, FaultCampaign
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.nand.reliability import AgingState
from repro.nand.timing import NandTiming
from repro.ssd.config import SSDConfig
from repro.workloads import available_workloads, build_workload, is_trace_path
from repro.workloads.base import Trace

#: version stamp of the spec-file layout; bump on any key change
SPEC_VERSION = 1


class SpecError(ValueError):
    """A spec (file) is malformed or uses unsupported values."""


def _require_keys(mapping: dict, allowed: "set[str]", where: str) -> None:
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise SpecError(f"{where}: unknown key(s) {unknown}")


# ---------------------------------------------------------------------------
# WorkloadSpec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One host request stream: registry name or ``trace:<path>``.

    ``seed=None`` (the default) means "use the run's seed"
    (:attr:`SimulationSpec.seed`), so one spec file reseeds as a whole.
    ``params`` forward verbatim to the generator (``theta`` for
    ``zipf``, ``read_fraction`` for ``uniform``) or, for ``.csv`` trace
    references, to
    :func:`repro.workloads.blocktrace.load_block_trace`
    (``offset_unit``, ``time_unit``, ``address_mode``, ...).
    ``n_requests`` is ignored for ``trace:`` references -- the recorded
    file's length wins.
    """

    name: str
    n_requests: int = 8000
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("workload name must be non-empty")
        if self.n_requests < 1:
            raise SpecError("n_requests must be >= 1")

    @property
    def is_trace(self) -> bool:
        return is_trace_path(self.name)

    def build(self, config: SSDConfig, default_seed: int = 1) -> Trace:
        """Generate (or load) the request stream for a device config."""
        seed = self.seed if self.seed is not None else default_seed
        return build_workload(
            self.name,
            config.logical_pages,
            None if self.is_trace else self.n_requests,
            seed=seed,
            **self.params,
        )

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {"name": self.name, "n_requests": self.n_requests}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Union[str, dict]) -> "WorkloadSpec":
        if isinstance(data, str):
            return cls(name=data)
        _require_keys(
            data, {"name", "n_requests", "seed", "params"}, "workload"
        )
        if "name" not in data:
            raise SpecError("workload: missing 'name'")
        return cls(
            name=data["name"],
            n_requests=data.get("n_requests", 8000),
            seed=data.get("seed"),
            params=dict(data.get("params", {})),
        )


# ---------------------------------------------------------------------------
# TenantSpec / HostSpec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One tenant stream of a multi-tenant scenario.

    The tenant's requests are generated by ``workload`` over its LPN
    ``partition`` (a ``(lo, hi)`` fraction pair of the logical space;
    ``None`` = the full space, overlapping every other tenant), stamped
    with exponential arrivals at ``rate_iops * rate_scale``, and merged
    with the other tenants by arrival time.  ``seed=None`` derives the
    tenant's seed from the run seed and the tenant *name* via the
    :func:`repro.parallel.derive_seed` rule, so adding or removing other
    tenants never changes this tenant's stream.
    """

    name: str
    workload: WorkloadSpec
    rate_iops: float
    rate_scale: float = 1.0
    burstiness: float = 1.0
    partition: Optional[Tuple[float, float]] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("tenant name must be non-empty")
        if self.rate_iops <= 0:
            raise SpecError(f"tenant {self.name!r}: rate_iops must be positive")
        if self.rate_scale <= 0:
            raise SpecError(f"tenant {self.name!r}: rate_scale must be positive")
        if self.burstiness < 1.0:
            raise SpecError(f"tenant {self.name!r}: burstiness must be >= 1")
        if self.partition is not None:
            object.__setattr__(self, "partition", tuple(self.partition))
            lo, hi = self.partition
            if not (0.0 <= lo < hi <= 1.0):
                raise SpecError(
                    f"tenant {self.name!r}: partition must satisfy "
                    "0 <= lo < hi <= 1"
                )

    @property
    def effective_rate_iops(self) -> float:
        return self.rate_iops * self.rate_scale

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {
            "name": self.name,
            "workload": self.workload.to_dict(),
            "rate_iops": self.rate_iops,
        }
        if self.rate_scale != 1.0:
            out["rate_scale"] = self.rate_scale
        if self.burstiness != 1.0:
            out["burstiness"] = self.burstiness
        if self.partition is not None:
            out["partition"] = list(self.partition)
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        _require_keys(
            data,
            {"name", "workload", "rate_iops", "rate_scale", "burstiness",
             "partition", "seed"},
            "tenant",
        )
        for key in ("name", "workload", "rate_iops"):
            if key not in data:
                raise SpecError(f"tenant: missing {key!r}")
        partition = data.get("partition")
        return cls(
            name=data["name"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            rate_iops=data["rate_iops"],
            rate_scale=data.get("rate_scale", 1.0),
            burstiness=data.get("burstiness", 1.0),
            partition=tuple(partition) if partition is not None else None,
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class HostSpec:
    """How the host issues the stream.

    Three replay modes, selected by ``queue_depth`` / ``open_loop``:

    - **closed loop** (default): ``queue_depth`` requests outstanding at
      all times; a completion immediately issues the next request.
    - **NCQ open loop** (``open_loop=True`` with a finite
      ``queue_depth``): requests issue at their arrival timestamps into
      an N-deep queue; arrivals finding the queue full wait for a slot
      (backpressure), and the reported latency includes that wait.
    - **unbounded open loop** (``open_loop=True``,
      ``queue_depth=None``): every request issues exactly at its
      arrival time (infinite queue -- the legacy ``run_open_loop``).

    Open-loop replay needs arrival timestamps: either the trace carries
    them (``trace:`` CSV references, pre-stamped traces, tenant mixes)
    or ``rate_iops`` is set, which stamps exponential arrivals onto the
    generated trace (seeded from the run seed).

    A non-empty ``tenants`` tuple switches to the multi-tenant scenario:
    the per-tenant streams replace :attr:`SimulationSpec.workload`, are
    merged by arrival time, and always replay open-loop (NCQ when
    ``queue_depth`` is finite).
    """

    queue_depth: Optional[int] = 32
    open_loop: bool = False
    rate_iops: Optional[float] = None
    burstiness: float = 1.0
    tenants: Tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if self.queue_depth is not None and self.queue_depth < 1:
            raise SpecError("queue_depth must be >= 1 (or None for unbounded)")
        if self.queue_depth is None and not (self.open_loop or self.tenants):
            raise SpecError("queue_depth=None requires open-loop replay")
        if self.rate_iops is not None and self.rate_iops <= 0:
            raise SpecError("rate_iops must be positive")
        if self.burstiness < 1.0:
            raise SpecError("burstiness must be >= 1")
        names = [tenant.name for tenant in self.tenants]
        if len(names) != len(set(names)):
            raise SpecError(f"tenant names must be unique, got {names}")

    @property
    def is_open_loop(self) -> bool:
        """True when replay is driven by arrival timestamps."""
        return self.open_loop or bool(self.tenants) or self.rate_iops is not None

    @property
    def mode(self) -> str:
        """``"closed"``, ``"ncq"``, or ``"unbounded"``."""
        if not self.is_open_loop:
            return "closed"
        return "unbounded" if self.queue_depth is None else "ncq"

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {"queue_depth": self.queue_depth}
        if self.open_loop:
            out["open_loop"] = True
        if self.rate_iops is not None:
            out["rate_iops"] = self.rate_iops
        if self.burstiness != 1.0:
            out["burstiness"] = self.burstiness
        if self.tenants:
            out["tenants"] = [tenant.to_dict() for tenant in self.tenants]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HostSpec":
        _require_keys(
            data,
            {"queue_depth", "open_loop", "rate_iops", "burstiness", "tenants"},
            "host",
        )
        return cls(
            queue_depth=data.get("queue_depth", 32),
            open_loop=data.get("open_loop", False),
            rate_iops=data.get("rate_iops"),
            burstiness=data.get("burstiness", 1.0),
            tenants=tuple(
                TenantSpec.from_dict(tenant)
                for tenant in data.get("tenants", [])
            ),
        )


# ---------------------------------------------------------------------------
# RunOptions
# ---------------------------------------------------------------------------


def check_level_name(check) -> Optional[str]:
    """Normalize a ``check=`` value to its level string (or ``None``)."""
    if check is None or check is False:
        return None
    if check is True:
        return "on"
    if isinstance(check, str):
        return check
    level = getattr(check, "level", None)
    if isinstance(level, str):
        return level
    raise SpecError(
        "check must be None/True/'on'/'strict' or a CheckConfig with a "
        "level attribute"
    )


@dataclass(frozen=True)
class RunOptions:
    """Observability and persistence toggles of one run.

    Everything here is off by default, and an all-default ``RunOptions``
    leaves the simulation bit-for-bit identical to a bare run (the
    standing contract of the obs / check / persist layers).
    """

    trace: Optional[str] = None
    metrics_interval: Optional[float] = None
    telemetry: bool = False
    profile: bool = False
    check: Optional[object] = None
    max_events: Optional[int] = None
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    resume_from: Optional[str] = None
    #: write a run artifact under this directory (see repro.obs.artifact);
    #: excluded from the run's content fingerprint -- *where* an artifact
    #: lives never changes *which* run it names
    artifact_dir: Optional[str] = None
    #: telemetry time-series window, simulated us (None: default cadence)
    artifact_every: Optional[float] = None

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {}
        if self.trace is not None:
            out["trace"] = self.trace
        if self.metrics_interval is not None:
            out["metrics_interval"] = self.metrics_interval
        if self.telemetry:
            out["telemetry"] = True
        if self.profile:
            out["profile"] = True
        level = check_level_name(self.check)
        if level is not None:
            out["check"] = level
        if self.max_events is not None:
            out["max_events"] = self.max_events
        if self.checkpoint_every is not None:
            out["checkpoint_every"] = self.checkpoint_every
        if self.checkpoint_dir is not None:
            out["checkpoint_dir"] = self.checkpoint_dir
        if self.resume_from is not None:
            out["resume_from"] = self.resume_from
        if self.artifact_dir is not None:
            out["artifact_dir"] = self.artifact_dir
        if self.artifact_every is not None:
            out["artifact_every"] = self.artifact_every
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunOptions":
        _require_keys(
            data,
            {"trace", "metrics_interval", "telemetry", "profile", "check",
             "max_events", "checkpoint_every", "checkpoint_dir",
             "resume_from", "artifact_dir", "artifact_every"},
            "options",
        )
        return cls(**data)


# ---------------------------------------------------------------------------
# SSDConfig <-> dict
# ---------------------------------------------------------------------------

_CONFIG_SCALARS = (
    "buffer_capacity_pages",
    "buffer_read_us",
    "mu_threshold",
    "active_blocks_per_chip",
    "max_inflight_programs",
    "gc_trigger_blocks",
    "wear_aware_allocation",
    "gc_min_invalid_fraction",
    "logical_fraction",
    "env_shift_prob",
    "store_tags",
    "store_oob",
    "seed",
    "read_recovery_attempts",
    "scrub_margin_threshold",
)

_DEFAULT_CONFIG = None


def _default_config() -> SSDConfig:
    global _DEFAULT_CONFIG
    if _DEFAULT_CONFIG is None:
        _DEFAULT_CONFIG = SSDConfig()
    return _DEFAULT_CONFIG


def config_to_dict(config: SSDConfig) -> dict:
    """Serialize an :class:`SSDConfig` for a spec file.

    Only named fault campaigns serialize (the campaign *name* is
    stored); a custom :class:`FaultCampaign` object or a non-default
    :class:`NandTiming` raises -- those runs are constructed in code,
    not from files.
    """
    if config.timing != NandTiming():
        raise SpecError(
            "spec files only carry the default NAND timing; construct "
            "custom-timing configs in code"
        )
    faults_name: Optional[str] = None
    if config.faults is not None:
        for name, campaign in CAMPAIGNS.items():
            if campaign == config.faults:
                faults_name = name
                break
        else:
            raise SpecError(
                f"fault campaign {config.faults.name!r} is not a named "
                "campaign; spec files only carry names from "
                f"{sorted(CAMPAIGNS)}"
            )
    geometry = config.geometry
    block = geometry.block
    out: Dict[str, Any] = {
        "geometry": {
            "n_channels": geometry.n_channels,
            "chips_per_channel": geometry.chips_per_channel,
            "blocks_per_chip": geometry.blocks_per_chip,
            "block": {
                "n_layers": block.n_layers,
                "wls_per_layer": block.wls_per_layer,
                "pages_per_wl": block.pages_per_wl,
                "page_size_bytes": block.page_size_bytes,
            },
        },
        "aging": {
            "pe_cycles": config.aging.pe_cycles,
            "retention_months": config.aging.retention_months,
        },
    }
    if faults_name is not None:
        out["faults"] = faults_name
    defaults = _default_config()
    for key in _CONFIG_SCALARS:
        value = getattr(config, key)
        if value != getattr(defaults, key):
            out[key] = value
    return out


def config_from_dict(data: dict) -> SSDConfig:
    """Build an :class:`SSDConfig` from a spec-file dict (inverse of
    :func:`config_to_dict`; every key optional, defaults apply)."""
    allowed = {"geometry", "aging", "faults"} | set(_CONFIG_SCALARS)
    _require_keys(data, allowed, "config")
    kwargs: Dict[str, Any] = {}
    geometry_data = data.get("geometry")
    if geometry_data is not None:
        _require_keys(
            geometry_data,
            {"n_channels", "chips_per_channel", "blocks_per_chip", "block"},
            "config.geometry",
        )
        block_data = geometry_data.get("block", {})
        _require_keys(
            block_data,
            {"n_layers", "wls_per_layer", "pages_per_wl", "page_size_bytes"},
            "config.geometry.block",
        )
        default_geometry = _default_config().geometry
        block = BlockGeometry(
            n_layers=block_data.get("n_layers", 48),
            wls_per_layer=block_data.get("wls_per_layer", 4),
            pages_per_wl=block_data.get("pages_per_wl", 3),
            page_size_bytes=block_data.get("page_size_bytes", 16 * 1024),
        )
        kwargs["geometry"] = SSDGeometry(
            n_channels=geometry_data.get(
                "n_channels", default_geometry.n_channels
            ),
            chips_per_channel=geometry_data.get(
                "chips_per_channel", default_geometry.chips_per_channel
            ),
            blocks_per_chip=geometry_data.get(
                "blocks_per_chip", default_geometry.blocks_per_chip
            ),
            block=block,
        )
    aging_data = data.get("aging")
    if aging_data is not None:
        _require_keys(
            aging_data, {"pe_cycles", "retention_months"}, "config.aging"
        )
        kwargs["aging"] = AgingState(
            pe_cycles=aging_data.get("pe_cycles", 0),
            retention_months=aging_data.get("retention_months", 0.0),
        )
    faults_name = data.get("faults")
    if faults_name is not None:
        if faults_name not in CAMPAIGNS:
            raise SpecError(
                f"unknown fault campaign {faults_name!r}; choose from "
                f"{sorted(CAMPAIGNS)}"
            )
        kwargs["faults"] = CAMPAIGNS[faults_name]
    for key in _CONFIG_SCALARS:
        if key in data:
            kwargs[key] = data[key]
    return SSDConfig(**kwargs)


# ---------------------------------------------------------------------------
# SimulationSpec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimulationSpec:
    """One fully-described simulation run.

    Exactly one stream source: either :attr:`workload` (single stream;
    a :class:`WorkloadSpec`, a bare registry name string, or a pre-built
    :class:`~repro.workloads.base.Trace`) or a non-empty
    :attr:`host` ``.tenants`` tuple (multi-tenant scenario).
    """

    config: SSDConfig = field(default_factory=SSDConfig)
    workload: Union[WorkloadSpec, Trace, str, None] = None
    ftl: str = "cube"
    host: HostSpec = field(default_factory=HostSpec)
    options: RunOptions = field(default_factory=RunOptions)
    warmup_requests: int = 0
    prefill: float = 0.9
    seed: int = 7
    ftl_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.workload, str):
            object.__setattr__(self, "workload", WorkloadSpec(self.workload))
        if self.workload is None and not self.host.tenants:
            raise SpecError("spec needs a workload or host.tenants")
        if self.workload is not None and self.host.tenants:
            raise SpecError(
                "workload and host.tenants are mutually exclusive (the "
                "tenant workloads replace the single stream)"
            )
        if self.warmup_requests < 0:
            raise SpecError("warmup_requests must be >= 0")
        if not 0.0 <= self.prefill <= 1.0:
            raise SpecError("prefill must be in [0, 1]")

    # -- derived ---------------------------------------------------------

    @property
    def workload_name(self) -> str:
        """Display name of the stream (workload name or tenant mix)."""
        if self.host.tenants:
            return "+".join(tenant.name for tenant in self.host.tenants)
        if isinstance(self.workload, Trace):
            return self.workload.name
        return self.workload.name

    def build_trace(self) -> Trace:
        """Materialize the request stream this spec replays."""
        from repro.workloads.tenants import compose_tenants

        if self.host.tenants:
            return compose_tenants(
                self.host.tenants, self.config, base_seed=self.seed
            )
        if isinstance(self.workload, Trace):
            trace = self.workload
        else:
            trace = self.workload.build(self.config, default_seed=self.seed)
        if self.host.rate_iops is not None and not trace.has_arrivals:
            from repro.parallel.seeds import derive_seed
            from repro.workloads.base import with_arrivals

            trace = with_arrivals(
                trace,
                self.host.rate_iops,
                burstiness=self.host.burstiness,
                seed=derive_seed(self.seed, "host:arrivals"),
            )
        return trace

    def with_options(self, **changes) -> "SimulationSpec":
        """A copy with :class:`RunOptions` fields replaced."""
        return replace(self, options=replace(self.options, **changes))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        if isinstance(self.workload, Trace):
            raise SpecError(
                "a spec carrying a pre-built Trace object does not "
                "serialize; reference the stream by name or trace:<path>"
            )
        out: Dict[str, Any] = {
            "spec_version": SPEC_VERSION,
            "config": config_to_dict(self.config),
            "ftl": self.ftl,
            "host": self.host.to_dict(),
            "warmup_requests": self.warmup_requests,
            "prefill": self.prefill,
            "seed": self.seed,
        }
        if self.workload is not None:
            out["workload"] = self.workload.to_dict()
        options = self.options.to_dict()
        if options:
            out["options"] = options
        if self.ftl_kwargs:
            out["ftl_kwargs"] = dict(self.ftl_kwargs)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationSpec":
        _require_keys(
            data,
            {"spec_version", "config", "workload", "ftl", "host", "options",
             "warmup_requests", "prefill", "seed", "ftl_kwargs"},
            "spec",
        )
        version = data.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                f"spec_version {version} != supported {SPEC_VERSION}"
            )
        workload = data.get("workload")
        return cls(
            config=config_from_dict(data.get("config", {})),
            workload=(
                WorkloadSpec.from_dict(workload)
                if workload is not None
                else None
            ),
            ftl=data.get("ftl", "cube"),
            host=HostSpec.from_dict(data.get("host", {})),
            options=RunOptions.from_dict(data.get("options", {})),
            warmup_requests=data.get("warmup_requests", 0),
            prefill=data.get("prefill", 0.9),
            seed=data.get("seed", 7),
            ftl_kwargs=dict(data.get("ftl_kwargs", {})),
        )


simulation_spec_from_dict = SimulationSpec.from_dict


def load_spec_file(path: Union[str, Path]) -> SimulationSpec:
    """Load a :class:`SimulationSpec` from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - python < 3.11
            raise SpecError(
                f"{path}: TOML spec files need Python 3.11+ (tomllib); "
                "use JSON instead"
            ) from None
        data = tomllib.loads(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"{path}: invalid JSON: {error}") from error
    if not isinstance(data, dict):
        raise SpecError(f"{path}: spec root must be an object")
    try:
        return SimulationSpec.from_dict(data)
    except SpecError as error:
        raise SpecError(f"{path}: {error}") from error


def validate_spec_dict(data: dict) -> List[str]:
    """Schema-check one spec dict; returns a list of problems (empty =
    valid).  Used by ``tools/check_schema.py --spec``."""
    try:
        SimulationSpec.from_dict(data)
    except (SpecError, TypeError, ValueError, KeyError) as error:
        return [str(error)]
    return []


__all__ = [
    "SPEC_VERSION",
    "SpecError",
    "WorkloadSpec",
    "TenantSpec",
    "HostSpec",
    "RunOptions",
    "SimulationSpec",
    "simulation_spec_from_dict",
    "config_to_dict",
    "config_from_dict",
    "load_spec_file",
    "validate_spec_dict",
    "check_level_name",
]
