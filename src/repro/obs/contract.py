"""Contract-rule analyzer: how well a trace fits the flash "contract".

The unwritten contract of flash devices (WiscSee's framing) says hosts
get the best out of an SSD when their traffic is *aligned* to program
units, *sequential or local* in address space, and groups data by
*death time* (pages written together should be overwritten together, so
GC frees whole blocks instead of migrating survivors).  This module
scores a :class:`~repro.workloads.base.Trace` against those rules --
pure functions of the request stream, independent of any simulation --
so a workload's contract profile can be reported next to its simulated
results and compared across traces.

All scores are in ``[0, 1]`` (1 = perfectly contract-friendly):

``alignment``
    fraction of requests whose start LPN and length are both multiples
    of the program-unit size (``align_pages``, default the simulator's
    3-page WL group).
``sequentiality``
    fraction of consecutive request pairs where the next request starts
    exactly where the previous one ended.
``temporal_locality``
    fraction of requests whose start LPN was touched earlier in the
    trace (reuse).
``spatial_locality``
    fraction of consecutive request pairs whose starts lie within
    ``radius_pages`` of each other.
``death_time_grouping``
    writes only: pages are grouped in program order into runs of
    ``group_pages``; each page's *death time* is the write index that
    overwrites it (end of trace if never).  The score is one minus the
    mean normalized death-time spread inside each group -- 1.0 when
    co-programmed pages always die together, near 0 when their deaths
    are scattered across the whole trace.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Trace

#: default program-unit size in pages (one WL group of the simulated
#: TLC geometry: 3 pages per wordline)
DEFAULT_ALIGN_PAGES = 3

#: default death-time grouping window, in pages written back-to-back
DEFAULT_GROUP_PAGES = 8

#: default "nearby" distance for the spatial-locality rule
DEFAULT_RADIUS_PAGES = 8


def alignment_score(trace: Trace, align_pages: int = DEFAULT_ALIGN_PAGES) -> float:
    if align_pages < 1:
        raise ValueError("align_pages must be >= 1")
    if not len(trace):
        return 0.0
    aligned = sum(
        1
        for request in trace
        if request.lpn % align_pages == 0 and request.n_pages % align_pages == 0
    )
    return aligned / len(trace)


def sequentiality_score(trace: Trace) -> float:
    if len(trace) < 2:
        return 0.0
    sequential = sum(
        1
        for previous, current in zip(trace.requests, trace.requests[1:])
        if current.lpn == previous.end_lpn
    )
    return sequential / (len(trace) - 1)


def temporal_locality_score(trace: Trace) -> float:
    if not len(trace):
        return 0.0
    seen: set = set()
    reused = 0
    for request in trace:
        if request.lpn in seen:
            reused += 1
        seen.add(request.lpn)
    return reused / len(trace)


def spatial_locality_score(
    trace: Trace, radius_pages: int = DEFAULT_RADIUS_PAGES
) -> float:
    if radius_pages < 0:
        raise ValueError("radius_pages must be >= 0")
    if len(trace) < 2:
        return 0.0
    near = sum(
        1
        for previous, current in zip(trace.requests, trace.requests[1:])
        if abs(current.lpn - previous.lpn) <= radius_pages
    )
    return near / (len(trace) - 1)


def death_time_grouping_score(
    trace: Trace, group_pages: int = DEFAULT_GROUP_PAGES
) -> float:
    """1 minus the mean normalized death-time spread of co-written pages."""
    if group_pages < 2:
        raise ValueError("group_pages must be >= 2")
    # page-level program order: one entry per written page
    written: List[int] = []  # LPNs in program order
    write_index: List[int] = []  # index of the owning write request
    writes = 0
    for request in trace:
        if not request.is_write:
            continue
        for lpn in range(request.lpn, request.end_lpn):
            written.append(lpn)
            write_index.append(writes)
        writes += 1
    if len(written) < group_pages:
        return 0.0
    # death[i] = write-request index that overwrites page i (walk the
    # program order backwards, remembering the next write of each LPN)
    next_write: Dict[int, int] = {}
    death = [0] * len(written)
    for i in range(len(written) - 1, -1, -1):
        death[i] = next_write.get(written[i], writes)
        next_write[written[i]] = write_index[i]
    spreads: List[float] = []
    for start in range(0, len(written) - group_pages + 1, group_pages):
        group = death[start:start + group_pages]
        spreads.append((max(group) - min(group)) / max(1, writes))
    return 1.0 - sum(spreads) / len(spreads)


def analyze_contract(
    trace: Trace,
    *,
    align_pages: int = DEFAULT_ALIGN_PAGES,
    group_pages: int = DEFAULT_GROUP_PAGES,
    radius_pages: int = DEFAULT_RADIUS_PAGES,
) -> dict:
    """Score a trace against every contract rule.

    Deterministic (a pure function of the trace and the three window
    parameters), so scores can be pinned in CI next to golden results.
    """
    return {
        "trace": trace.name,
        "requests": len(trace),
        "align_pages": align_pages,
        "group_pages": group_pages,
        "radius_pages": radius_pages,
        "alignment": alignment_score(trace, align_pages),
        "sequentiality": sequentiality_score(trace),
        "temporal_locality": temporal_locality_score(trace),
        "spatial_locality": spatial_locality_score(trace, radius_pages),
        "death_time_grouping": death_time_grouping_score(trace, group_pages),
    }


_SCORE_KEYS = (
    "alignment",
    "sequentiality",
    "temporal_locality",
    "spatial_locality",
    "death_time_grouping",
)


def contract_report(scores: dict) -> str:
    """ASCII rendering of :func:`analyze_contract` output."""
    width = 30
    lines = [
        f"contract profile: {scores['trace']} ({scores['requests']} requests)"
    ]
    for key in _SCORE_KEYS:
        value = scores[key]
        bar = "#" * int(round(value * width))
        lines.append(f"  {key:<20s} {value:6.3f} |{bar:<{width}s}|")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_ALIGN_PAGES",
    "DEFAULT_GROUP_PAGES",
    "DEFAULT_RADIUS_PAGES",
    "alignment_score",
    "sequentiality_score",
    "temporal_locality_score",
    "spatial_locality_score",
    "death_time_grouping_score",
    "analyze_contract",
    "contract_report",
]
