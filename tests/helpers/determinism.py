"""Shared plumbing for bit-for-bit determinism assertions.

Several suites assert the same thing -- two artifacts produced by
differently-instrumented (or differently-parallelized) runs are
*byte-identical* -- and each used to hand-roll the comparison.  This
module is the one place that knows how to do it with useful failure
output: instead of a multi-kilobyte ``assert a == b`` diff, a failure
names the first differing line, its index, and both renderings.

Used by the golden-trace suite, the bench serial-vs-jobs suite, and
the metamorphic cases of ``tests/check``.
"""

from __future__ import annotations

import json
from typing import Optional


def file_bytes(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def canonical_json(document) -> bytes:
    """Stable rendering for dict snapshots (sorted keys, fixed
    separators) so equal content always means equal bytes."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode()


def first_divergence(a: bytes, b: bytes) -> Optional[str]:
    """``None`` when identical, else a report naming the first
    differing line (or the point where one input ends)."""
    if a == b:
        return None
    a_lines = a.split(b"\n")
    b_lines = b.split(b"\n")
    for index, (line_a, line_b) in enumerate(zip(a_lines, b_lines)):
        if line_a != line_b:
            return (
                f"first divergence at line {index + 1}:\n"
                f"  a: {line_a[:200]!r}\n"
                f"  b: {line_b[:200]!r}"
            )
    shorter = "a" if len(a_lines) < len(b_lines) else "b"
    return (
        f"inputs agree for {min(len(a_lines), len(b_lines))} lines, "
        f"then {shorter} ends ({len(a_lines)} vs {len(b_lines)} lines)"
    )


def assert_bytes_identical(a: bytes, b: bytes, label: str = "artifacts") -> None:
    report = first_divergence(a, b)
    assert report is None, f"{label} are not byte-identical; {report}"


def assert_files_identical(path_a, path_b, label: str = "files") -> None:
    assert_bytes_identical(
        file_bytes(path_a), file_bytes(path_b),
        f"{label} ({path_a} vs {path_b})",
    )


def assert_snapshots_identical(a, b, label: str = "snapshots") -> None:
    """Canonical-JSON equality of two dict snapshots with line-level
    failure reporting."""
    assert_bytes_identical(
        json.dumps(a, sort_keys=True, indent=1).encode(),
        json.dumps(b, sort_keys=True, indent=1).encode(),
        label,
    )
