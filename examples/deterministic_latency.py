"""Deterministic latency from process similarity (paper Section 8).

The paper's closing observation: because the horizontal similarity makes
flash parameters *predictable*, an SSD can promise deterministic response
times -- an answer to the long-tail problem.  This example quantifies it
on the device model: once an h-layer's leader has been monitored, every
follower program's latency is known in advance to the microsecond, while
a PS-unaware estimator (stuck with the datasheet's nominal tPROG) misses
by up to hundreds of microseconds on slow layers.

Run:  python examples/deterministic_latency.py
"""

from repro.analysis.ascii_plot import cdf_chart
from repro.core.latency_predictor import LatencyPredictor, PredictionStats
from repro.core.opm import OptimalParameterManager
from repro.nand.chip import NandChip


def main() -> None:
    chip = NandChip(chip_id=0, n_blocks=4, env_shift_prob=0.0)
    opm = OptimalParameterManager(chip.ispp)
    predictor = LatencyPredictor(opm, chip.timing)
    naive = PredictionStats()

    for block in range(chip.n_blocks):
        for layer in range(chip.geometry.n_layers):
            leader = chip.program_wl(block, layer, 0)
            opm.record_leader(0, block, layer, leader)
            naive.record(predictor.predict_program_default_us(), leader.t_prog_us)
            predicted = predictor.predict_program_us(0, block, layer)
            params = opm.follower_params(0, block, layer)
            for wl in range(1, chip.geometry.wls_per_layer):
                actual = chip.program_wl(block, layer, wl, params=params)
                predictor.record_program(predicted, actual.t_prog_us)
                naive.record(
                    predictor.predict_program_default_us(), actual.t_prog_us
                )

    aware = predictor.program_stats
    print(f"PS-aware  : {len(aware)} follower programs, "
          f"mean |error| {aware.mean_abs_error_us:.2f} us, "
          f"p99 |error| {aware.percentile_abs_error(99):.1f} us, "
          f"{100 * aware.exact_fraction:.1f} % exact")
    print(f"PS-unaware: {len(naive)} programs, "
          f"mean |error| {naive.mean_abs_error_us:.2f} us, "
          f"p99 |error| {naive.percentile_abs_error(99):.1f} us, "
          f"{100 * naive.exact_fraction:.1f} % exact")
    print("\nprediction-error CDFs (us):")
    print(cdf_chart({
        "PS-aware": [abs(e) for e in aware.errors_us],
        "PS-unaware": [abs(e) for e in naive.errors_us],
    }, width=56, height=10))


if __name__ == "__main__":
    main()
