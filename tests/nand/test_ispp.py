"""Tests for the ISPP program engine (Section 2.2 / 4.1 mechanics)."""

import pytest
from hypothesis import given, strategies as st

from repro.nand.errors import ProgramWindowError
from repro.nand.ispp import (
    DV_ISPP_DEFAULT_MV,
    IsppEngine,
    LoopInterval,
    MAXLOOP_DEFAULT,
    ProgramParams,
    TLC_STATES,
    V_FINAL_DEFAULT_MV,
    V_START_DEFAULT_MV,
    VerifyPlan,
    WLProgramProfile,
    default_state_intervals,
    require_valid_window,
    t_prog_equation_1,
    t_prog_equation_2,
    window_squeeze_ber_multiplier,
)
from repro.nand.timing import NandTiming


class TestLoopInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoopInterval(0, 1)
        with pytest.raises(ValueError):
            LoopInterval(3, 2)

    def test_shift_clamps_at_one(self):
        assert LoopInterval(1, 2).shifted(-5) == LoopInterval(1, 1)

    def test_width(self):
        assert LoopInterval(2, 6).width == 4


class TestWLProgramProfile:
    def test_default_intervals_match_paper_skips(self):
        """State Ps completes in [s+1, s+5]: P1 skips 1 VFY, P7 skips 7."""
        intervals = default_state_intervals()
        assert len(intervals) == TLC_STATES
        for s, interval in enumerate(intervals, start=1):
            assert interval.l_min == s + 1
            assert interval.l_max == s + 5

    def test_loops_needed(self):
        profile = WLProgramProfile(default_state_intervals())
        assert profile.loops_needed == TLC_STATES + 5

    def test_monotone_completion_enforced(self):
        with pytest.raises(ValueError):
            WLProgramProfile((LoopInterval(5, 9), LoopInterval(1, 2)))

    def test_interval_bounds_check(self):
        profile = WLProgramProfile(default_state_intervals())
        with pytest.raises(ValueError):
            profile.interval(0)
        with pytest.raises(ValueError):
            profile.interval(TLC_STATES + 1)


class TestVerifyPlan:
    def test_default_plan_starts_at_loop_one(self):
        plan = VerifyPlan.default()
        assert plan.start_loops == (1,) * TLC_STATES
        assert all(plan.skipped_before(s) == 0 for s in range(1, TLC_STATES + 1))

    def test_from_profile_skips_up_to_l_min(self):
        profile = WLProgramProfile(default_state_intervals())
        plan = VerifyPlan.from_profile(profile)
        for s in range(1, TLC_STATES + 1):
            assert plan.skipped_before(s) == profile.interval(s).l_min - 1

    def test_guard_keeps_early_verifies(self):
        profile = WLProgramProfile(default_state_intervals())
        plan = VerifyPlan.from_profile(profile, guard=2)
        for s in range(1, TLC_STATES + 1):
            assert plan.start_loops[s - 1] == max(1, profile.interval(s).l_min - 2)

    def test_guard_validation(self):
        profile = WLProgramProfile(default_state_intervals())
        with pytest.raises(ValueError):
            VerifyPlan.from_profile(profile, guard=-1)


class TestProgramParams:
    def test_default_window(self):
        params = ProgramParams.default()
        assert params.max_loop == MAXLOOP_DEFAULT
        assert params.window_squeeze_mv == 0
        assert params.start_shift_loops == 0
        assert params.final_shift_loops == 0

    def test_window_validation(self):
        with pytest.raises(ProgramWindowError):
            ProgramParams(v_start_mv=16_000, v_final_mv=16_000)
        with pytest.raises(ProgramWindowError):
            ProgramParams(dv_ispp_mv=0)
        with pytest.raises(ProgramWindowError):
            require_valid_window(1000, 1000, 100)

    def test_shift_accounting(self):
        params = ProgramParams(
            v_start_mv=V_START_DEFAULT_MV + 2 * DV_ISPP_DEFAULT_MV,
            v_final_mv=V_FINAL_DEFAULT_MV - DV_ISPP_DEFAULT_MV,
        )
        assert params.start_shift_loops == 2
        assert params.final_shift_loops == 1
        assert params.window_squeeze_mv == 3 * DV_ISPP_DEFAULT_MV
        assert params.max_loop == MAXLOOP_DEFAULT - 3


class TestSimulate:
    def test_default_program_anchors(self, ispp):
        """12 executed loops, 63 verifies, tPROG ~= 700 us."""
        profile = ispp.wl_profile(0.0)
        result = ispp.simulate(profile, ProgramParams.default())
        assert result.executed_loops == 12
        assert result.vfy_count == 63
        assert result.vfy_skipped == 0
        assert result.clean
        assert result.ber_penalty == pytest.approx(1.0)
        assert 650 <= result.t_prog_us <= 760

    def test_equation_1_consistency(self, ispp, timing):
        """tPROG equals Eq. 1 evaluated on the per-loop verify counts."""
        profile = ispp.wl_profile(0.0)
        result = ispp.simulate(profile, ProgramParams.default())
        # reconstruct k_i: state s is verified in loops 1..l_max(s)
        k = []
        for i in range(1, result.executed_loops + 1):
            k.append(sum(1 for s in profile.intervals if i <= s.l_max))
        assert result.t_prog_us == pytest.approx(t_prog_equation_1(timing, k))

    def test_equation_2_equals_equation_1(self, timing):
        """Eq. 2 is a phase-grouped rewrite of Eq. 1 (the paper's MLC
        example: L = (3, 2, 2), V = (3, 2, 1))."""
        phase_loops = (3, 2, 2)
        phase_vfys = (3, 2, 1)
        k = [3, 3, 3, 2, 2, 1, 1]
        assert t_prog_equation_2(timing, phase_loops, phase_vfys) == pytest.approx(
            t_prog_equation_1(timing, k)
        )

    def test_full_skip_saves_about_16_percent(self, ispp):
        """Section 4.1.1: skipped VFYs cut tPROG by ~16.2 %."""
        profile = ispp.wl_profile(0.0)
        default = ispp.simulate(profile, ProgramParams.default())
        plan = VerifyPlan.from_profile(profile)
        skipped = ispp.simulate(profile, ProgramParams(verify_plan=plan))
        reduction = 1.0 - skipped.t_prog_us / default.t_prog_us
        assert 0.13 <= reduction <= 0.19
        assert skipped.vfy_skipped == sum(range(1, TLC_STATES + 1))
        assert skipped.clean

    def test_window_squeeze_reduces_loops(self, ispp):
        profile = ispp.wl_profile(0.0)
        params = ispp.follower_params(profile, window_squeeze_mv=320)
        result = ispp.simulate(profile, params)
        default = ispp.simulate(profile, ProgramParams.default())
        assert result.executed_loops < default.executed_loops
        assert result.clean

    def test_follower_reduction_up_to_paper_bound(self, ispp):
        """Combined skips + window: up to ~35.9 % tPROG reduction."""
        profile = ispp.wl_profile(0.0)
        default = ispp.simulate(profile, ProgramParams.default())
        params = ispp.follower_params(profile, window_squeeze_mv=420)
        result = ispp.simulate(profile, params)
        reduction = 1.0 - result.t_prog_us / default.t_prog_us
        assert 0.30 <= reduction <= 0.42
        assert result.clean

    def test_over_skip_penalty(self, ispp):
        """Verifying later than the true L_min over-programs fast cells."""
        profile = ispp.wl_profile(0.0)
        starts = list(VerifyPlan.from_profile(profile).start_loops)
        starts[6] += 2  # skip two extra verifies for P7
        result = ispp.simulate(profile, ProgramParams(verify_plan=VerifyPlan(tuple(starts))))
        assert not result.clean
        assert result.over_skips[6] == 2
        assert result.ber_penalty > 2.0

    def test_stale_leader_profile_detected_as_over_skip(self, ispp):
        """A follower programmed with a slower leader's plan over-skips."""
        slow_leader = ispp.wl_profile(1.0)  # +2 loops
        normal_wl = ispp.wl_profile(0.0)
        plan = VerifyPlan.from_profile(slow_leader)
        result = ispp.simulate(normal_wl, ProgramParams(verify_plan=plan))
        assert not result.clean
        assert all(over == 2 for over in result.over_skips)

    def test_under_program_when_window_too_short(self, ispp):
        """A window too short for a slow layer under-programs top states."""
        profile = ispp.wl_profile(1.0)  # needs 14 loops
        params = ProgramParams(
            v_final_mv=V_START_DEFAULT_MV + 10 * DV_ISPP_DEFAULT_MV,
            v_start_mv=V_START_DEFAULT_MV,
        )
        # note: v_final below default shrinks BOTH the window and the
        # targets; build an artificially narrow window at default targets
        result = ispp.simulate(
            profile,
            ProgramParams(
                v_start_mv=V_START_DEFAULT_MV,
                v_final_mv=V_START_DEFAULT_MV + 4 * DV_ISPP_DEFAULT_MV,
                verify_plan=VerifyPlan.default(),
            ),
        )
        assert not result.clean
        assert any(under > 0 for under in result.under_loops)
        assert result.ber_penalty > 3.0

    def test_slow_layer_needs_more_loops(self, ispp):
        fast = ispp.simulate(ispp.wl_profile(0.0), ProgramParams.default())
        slow = ispp.simulate(ispp.wl_profile(1.0), ProgramParams.default())
        assert slow.executed_loops == fast.executed_loops + 2
        assert slow.t_prog_us > fast.t_prog_us

    def test_simulate_is_cached_and_consistent(self, ispp):
        profile = ispp.wl_profile(0.0)
        a = ispp.simulate(profile, ProgramParams.default())
        b = ispp.simulate(profile, ProgramParams.default())
        assert a is b  # memoized

    def test_plan_profile_mismatch_rejected(self, ispp):
        profile = ispp.wl_profile(0.0)
        with pytest.raises(ValueError):
            ispp.simulate(profile, ProgramParams(verify_plan=VerifyPlan((1, 1))))


class TestFollowerParams:
    def test_zero_margin_keeps_default_window(self, ispp):
        profile = ispp.wl_profile(0.0)
        params = ispp.follower_params(profile, window_squeeze_mv=0)
        assert params.v_start_mv == V_START_DEFAULT_MV
        assert params.v_final_mv == V_FINAL_DEFAULT_MV

    def test_margin_split(self, ispp):
        profile = ispp.wl_profile(0.0)
        params = ispp.follower_params(
            profile, window_squeeze_mv=240, start_fraction=0.5
        )
        assert params.v_start_mv == V_START_DEFAULT_MV + DV_ISPP_DEFAULT_MV
        assert params.v_final_mv == V_FINAL_DEFAULT_MV - DV_ISPP_DEFAULT_MV

    def test_negative_margin_rejected(self, ispp):
        with pytest.raises(ValueError):
            ispp.follower_params(ispp.wl_profile(0.0), window_squeeze_mv=-1)

    def test_follower_plan_aligned_with_squeezed_window(self, ispp):
        """Verify starts are derived from the shifted completion loops, so
        a clean follower program results even under a tight window."""
        profile = ispp.wl_profile(0.5)
        params = ispp.follower_params(profile, window_squeeze_mv=400)
        result = ispp.simulate(profile, params)
        assert result.clean


class TestSqueezeMultiplier:
    def test_identity_at_zero(self):
        assert window_squeeze_ber_multiplier(0) == 1.0

    def test_monotone(self):
        values = [window_squeeze_ber_multiplier(m) for m in (0, 100, 200, 400)]
        assert values == sorted(values)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            window_squeeze_ber_multiplier(-1)


@given(
    slowdown=st.floats(min_value=0.0, max_value=1.0),
    squeeze=st.integers(min_value=0, max_value=420),
)
def test_follower_program_always_clean_property(slowdown, squeeze):
    """For any layer speed and granted margin, the OPM-style follower
    parameters never over- or under-program (the plan tracks the shifted
    completion loops)."""
    engine = IsppEngine(NandTiming())
    profile = engine.wl_profile(slowdown)
    params = engine.follower_params(profile, window_squeeze_mv=squeeze)
    result = engine.simulate(profile, params)
    assert result.clean
    assert result.t_prog_us <= engine.simulate(profile, ProgramParams.default()).t_prog_us


@given(slowdown=st.floats(min_value=0.0, max_value=1.0))
def test_t_prog_positive_and_bounded(slowdown):
    engine = IsppEngine(NandTiming())
    result = engine.simulate(engine.wl_profile(slowdown), ProgramParams.default())
    assert 0 < result.t_prog_us < 2000
