"""Metamorphic guarantees: instrumentation must never move the model.

The checker (like the tracer and telemetry before it) observes through
pointer-test hooks and never schedules events, so a checked run must
produce exactly the stats of an unchecked run, and shard-parallel
execution must reproduce serial execution bit for bit.
"""

from repro.api import run_simulation, run_many
from repro.parallel import RunSpec
from repro.ssd.config import SSDConfig
from tests.helpers.determinism import (
    assert_files_identical,
    assert_snapshots_identical,
)


def _run(check=None, **kwargs):
    config = SSDConfig.small(logical_fraction=0.4)
    return run_simulation(
        config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
        n_requests=150, seed=11, check=check, **kwargs,
    )


class TestCheckingIsInvisible:
    def test_unchecked_runs_reproduce(self):
        assert_snapshots_identical(
            _run().stats.to_dict(), _run().stats.to_dict(),
            "two unchecked runs",
        )

    def test_strict_checking_leaves_stats_untouched(self):
        plain = _run()
        checked = _run(check="strict")
        assert checked.check["violations"] == 0
        assert_snapshots_identical(
            plain.stats.to_dict(), checked.stats.to_dict(),
            "unchecked vs strict-checked stats",
        )

    def test_checking_composes_with_other_instrumentation(self):
        plain = _run()
        instrumented = _run(check="strict", telemetry=True, profile=True)
        assert_snapshots_identical(
            plain.stats.to_dict(), instrumented.stats.to_dict(),
            "plain vs check+telemetry+profile stats",
        )

    def test_trace_bytes_identical_with_checking_on(self, tmp_path):
        """The checker taps the trace sink (for violation context) but
        must forward every span unchanged."""
        plain_path = str(tmp_path / "plain.jsonl")
        checked_path = str(tmp_path / "checked.jsonl")
        _run(trace=plain_path)
        _run(check="strict", trace=checked_path)
        assert_files_identical(
            plain_path, checked_path, "trace with checking off vs on"
        )


class TestShardEquality:
    def _specs(self):
        config = SSDConfig.small(logical_fraction=0.4)
        return [
            RunSpec(
                name=f"{ftl}-{workload}",
                config=config,
                workload=workload,
                ftl=ftl,
                queue_depth=8,
                prefill=0.4,
                n_requests=150,
                telemetry=True,
            )
            for ftl in ("page", "cube")
            for workload in ("OLTP", "Mail")
        ]

    def test_serial_vs_sharded_batches_identical(self):
        serial = run_many(self._specs(), jobs=1)
        sharded = run_many(self._specs(), jobs=2)
        assert serial.ok and sharded.ok
        assert serial.names == sharded.names
        for name, a, b in zip(serial.names, serial.results, sharded.results):
            assert_snapshots_identical(
                a.stats.to_dict(), b.stats.to_dict(),
                f"run {name}: serial vs --jobs 2",
            )
        assert_snapshots_identical(
            serial.telemetry, sharded.telemetry,
            "merged telemetry: serial vs --jobs 2",
        )
