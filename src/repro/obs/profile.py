"""Opt-in self-profiling: where does simulator *wall-clock* time go?

The ROADMAP's north star is a simulator that runs as fast as the
hardware allows, which requires knowing whether host time is spent in
the FTL logic, the NAND device model, event-queue maintenance, or the
tracing layer.  :class:`WallClockProfiler` is a tiny exclusive-time
section profiler: sections are pushed/popped around the interesting
code paths and elapsed :func:`time.perf_counter` time is always charged
to the *innermost* open section, so nesting subtracts automatically
(a NAND-model section opened inside an FTL dispatch steals its own time
from the dispatch bucket).

Attribution map (see :func:`attach_profiler`):

==============  ========================================================
section         host time spent in
==============  ========================================================
``setup``       building the SSD, prefill, workload generation
``event_queue`` heap maintenance inside the engine loop
``dispatch``    event callbacks minus nested sections -- FTL logic,
                request bookkeeping, statistics
``nand``        the NAND chip model (program / read / erase)
``tracing``     span construction and sink emission
``checker``     invariant-checker hooks and deep audits
``telemetry``   registry recording hooks and collector sweeps
``other``       anything outside the engine loop (result packing, ...)
==============  ========================================================

Profiling is pure observation: it wraps host-side calls with timers and
never touches simulated time, so a profiled run's *simulated* results
are identical to an unprofiled run's (asserted by the test suite).
Wall-clock numbers themselves are, of course, host-dependent.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List


class WallClockProfiler:
    """Exclusive-time wall-clock attribution over named sections."""

    __slots__ = ("seconds", "_stack", "_mark", "_t0")

    def __init__(self) -> None:
        #: section name -> exclusive seconds
        self.seconds: Dict[str, float] = {}
        self._stack: List[str] = []
        self._mark = perf_counter()
        self._t0 = self._mark

    def push(self, name: str) -> None:
        """Open a section; time since the last push/pop is charged to
        the previously innermost section (or ``other`` at top level)."""
        now = perf_counter()
        self._charge(now)
        self._stack.append(name)
        self._mark = now

    def pop(self) -> None:
        """Close the innermost section, charging it the elapsed time."""
        now = perf_counter()
        self._charge(now)
        self._stack.pop()
        self._mark = now

    def _charge(self, now: float) -> None:
        owner = self._stack[-1] if self._stack else "other"
        self.seconds[owner] = self.seconds.get(owner, 0.0) + (now - self._mark)

    @contextmanager
    def section(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # ------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return perf_counter() - self._t0

    def to_dict(self) -> dict:
        """JSON-safe summary: per-section exclusive seconds + total."""
        self._charge(perf_counter())
        self._mark = perf_counter()
        sections = {name: self.seconds[name] for name in sorted(self.seconds)}
        return {"total_s": self.total_seconds, "sections_s": sections}

    def report(self) -> str:
        """Human-readable per-subsystem wall-clock table."""
        return profile_report(self.to_dict())


def profile_report(summary: dict) -> str:
    """Render a :meth:`WallClockProfiler.to_dict` summary as a table."""
    from repro.analysis.tables import format_table

    total = sum(summary["sections_s"].values()) or 1.0
    rows = [
        [name, f"{seconds:.3f}", f"{100.0 * seconds / total:.1f} %"]
        for name, seconds in sorted(
            summary["sections_s"].items(), key=lambda kv: -kv[1]
        )
    ]
    rows.append(["total", f"{summary['total_s']:.3f}", "100.0 %"])
    return format_table(["subsystem", "wall s", "share"], rows)


def _wrap_timed(profiler: WallClockProfiler, name: str, fn):
    def timed(*args, **kwargs):
        profiler.push(name)
        try:
            return fn(*args, **kwargs)
        finally:
            profiler.pop()

    return timed


class _TimedHooks:
    """Replacement telemetry hook object with every ``record_*`` call
    timed.  The hook classes in :mod:`repro.obs.device` use ``__slots__``
    (they sit on hot paths), so instead of rebinding their methods this
    proxy *replaces* the ``telemetry`` attribute on the instrumented
    object; the instruments themselves stay bound inside the original
    hook's closures, so recording is unaffected."""

    _HOOKS = (
        "record_read",
        "record_program",
        "record_erase",
        "record_arrival",
        "record_service",
        "record_lookup",
    )

    def __init__(self, profiler: WallClockProfiler, inner) -> None:
        for name in self._HOOKS:
            fn = getattr(inner, name, None)
            if fn is not None:
                setattr(self, name, _wrap_timed(profiler, "telemetry", fn))


#: invariant-checker entry points charged to the ``checker`` section
_CHECKER_HOOKS = (
    "_on_engine_event",
    "on_block_transition",
    "on_block_failing",
    "on_host_write",
    "on_buffer_read",
    "on_unmapped_read",
    "pin_read",
    "on_flash_read",
    "on_request_complete",
    "on_prefill",
    "check_deep",
)


def attach_profiler(
    profiler: WallClockProfiler,
    controller,
    tracer=None,
    checker=None,
    telemetry=None,
    ftl=None,
) -> None:
    """Instrument a built simulation for wall-clock attribution.

    Chip-model entry points are wrapped in a ``nand`` section, the trace
    sink's emit in ``tracing``, the invariant checker's hook methods in
    ``checker``, and the telemetry registry's recording hooks plus
    collector sweep in ``telemetry``; the engine loop itself attributes
    ``event_queue`` vs. ``dispatch`` when given the profiler (see
    :meth:`repro.sim.engine.Engine.run`).  Wrapping replaces *bound
    attributes on the instances*, so the classes stay untouched and an
    unprofiled simulation pays nothing.

    Must run after telemetry hooks are attached and before
    ``checker.attach`` (the checker hands its -- by then wrapped -- hook
    methods to the engine and block manager during attach).
    """
    for chip in controller.chips:
        chip.program_wl = _wrap_timed(profiler, "nand", chip.program_wl)
        chip.read_page = _wrap_timed(profiler, "nand", chip.read_page)
        chip.erase_block = _wrap_timed(profiler, "nand", chip.erase_block)
    if tracer is not None:
        tracer.sink.emit = _wrap_timed(profiler, "tracing", tracer.sink.emit)
    if checker is not None:
        for name in _CHECKER_HOOKS:
            setattr(
                checker, name, _wrap_timed(profiler, "checker", getattr(checker, name))
            )
    if telemetry is not None:
        telemetry.collect = _wrap_timed(profiler, "telemetry", telemetry.collect)
        for chip_id, chip in enumerate(controller.chips):
            if getattr(chip, "telemetry", None) is not None:
                chip.telemetry = _TimedHooks(profiler, chip.telemetry)
            resource = controller.chip_resource(chip_id)
            if getattr(resource, "telemetry", None) is not None:
                resource.telemetry = _TimedHooks(profiler, resource.telemetry)
        for channel in range(controller.config.geometry.n_channels):
            bus = controller._bus_resources[channel]
            if getattr(bus, "telemetry", None) is not None:
                bus.telemetry = _TimedHooks(profiler, bus.telemetry)
        opm = getattr(ftl, "opm", None)
        if opm is not None and getattr(opm.ort, "telemetry", None) is not None:
            opm.ort.telemetry = _TimedHooks(profiler, opm.ort.telemetry)
