"""Property-based tests: the mapping tables stay a bijection under any
interleaving of writes, overwrites, trims, relocations, and erases.

Driven by hypothesis with ``derandomize=True`` so CI runs are seeded
and deterministic; :meth:`PageMapper.audit` must return ``None`` after
every single operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.mapping import UNMAPPED, PageMapper
from repro.nand.geometry import BlockGeometry, SSDGeometry

GEOMETRY = SSDGeometry(
    n_channels=1,
    chips_per_channel=2,
    blocks_per_chip=6,
    block=BlockGeometry(n_layers=4, wls_per_layer=2, pages_per_wl=3),
)
LOGICAL_PAGES = GEOMETRY.total_pages // 2

# op codes: 0 = write/overwrite, 1 = trim, 2 = relocate, 3 = erase a
# clean block.  The LPN operand is reduced modulo the logical space.
OPS = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, LOGICAL_PAGES - 1)),
    min_size=1,
    max_size=120,
)


class _Driver:
    """Replays ops against a PageMapper the way an FTL would: programs
    land on a monotonically advancing physical cursor."""

    def __init__(self):
        self.mapper = PageMapper(GEOMETRY, LOGICAL_PAGES)
        self.model = {}  # lpn -> ppn, maintained independently
        self.cursor = 0

    def _fresh_ppn(self):
        if self.cursor >= GEOMETRY.total_pages:
            return None  # physical space exhausted; op becomes a no-op
        ppn = self.cursor
        self.cursor += 1
        return ppn

    def write(self, lpn):
        ppn = self._fresh_ppn()
        if ppn is None:
            return
        old = self.mapper.bind(lpn, ppn)
        assert old == self.model.get(lpn, UNMAPPED)
        self.model[lpn] = ppn

    def trim(self, lpn):
        self.mapper.invalidate_lpn(lpn)
        self.model.pop(lpn, None)

    def relocate(self, lpn):
        if lpn not in self.model:
            return
        self.write(lpn)  # GC relocation is a bind to a fresh page

    def erase(self, _lpn):
        for chip_id in range(GEOMETRY.n_chips):
            for block in range(GEOMETRY.blocks_per_chip):
                if self.mapper.valid_count(chip_id, block) == 0:
                    self.mapper.clear_block(chip_id, block)
                    return

    def apply(self, op, lpn):
        (self.write, self.trim, self.relocate, self.erase)[op](lpn)


@settings(derandomize=True, max_examples=60, deadline=None)
@given(OPS)
def test_audit_stays_clean_under_random_ops(ops):
    driver = _Driver()
    for op, lpn in ops:
        driver.apply(op, lpn)
        finding = driver.mapper.audit()
        assert finding is None, f"after op ({op}, {lpn}): {finding}"
        driver.mapper.check_invariants()


@settings(derandomize=True, max_examples=60, deadline=None)
@given(OPS)
def test_mapper_agrees_with_independent_model(ops):
    driver = _Driver()
    for op, lpn in ops:
        driver.apply(op, lpn)
    for lpn in range(LOGICAL_PAGES):
        expected = driver.model.get(lpn, UNMAPPED)
        assert driver.mapper.lookup(lpn) == expected
        if expected != UNMAPPED:
            assert driver.mapper.lpn_of(expected) == lpn
            assert driver.mapper.is_valid(expected)
    assert driver.mapper.mapped_lpn_count() == len(driver.model)


@settings(derandomize=True, max_examples=30, deadline=None)
@given(OPS)
def test_valid_counts_match_valid_pages(ops):
    driver = _Driver()
    for op, lpn in ops:
        driver.apply(op, lpn)
    for chip_id in range(GEOMETRY.n_chips):
        for block in range(GEOMETRY.blocks_per_chip):
            listed = driver.mapper.valid_pages_of_block(chip_id, block)
            assert len(listed) == driver.mapper.valid_count(chip_id, block)
            for ppn, lpn in listed:
                assert driver.mapper.lookup(lpn) == ppn
