"""Structured logging: format, parsing, configuration, stall events."""

import io
import logging

import pytest

from repro.obs.log import (
    PREFIX,
    configure_logging,
    format_fields,
    get_logger,
    log_event,
    parse_line,
)


class TestFormat:
    def test_fields_in_insertion_order(self):
        line = format_fields("stall", completed=3, pending=2)
        assert line == "event=stall completed=3 pending=2"

    def test_whitespace_values_quoted(self):
        line = format_fields("note", msg="two words")
        assert line == "event=note msg='two words'"

    def test_round_trip_through_parse(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        log_event(get_logger("test"), "info", "thing", a=1, b="x")
        parsed = parse_line(stream.getvalue())
        assert parsed["level"] == "INFO"
        assert parsed["logger"] == "repro.test"
        assert parsed["event"] == "thing"
        assert parsed["a"] == "1"

    def test_parse_rejects_foreign_lines(self):
        assert parse_line("some random output") is None
        assert parse_line("") is None


class TestConfigure:
    def test_line_has_machine_parseable_prefix(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        log_event(get_logger("x"), "error", "boom", code=7)
        assert stream.getvalue().startswith(f"{PREFIX} level=ERROR ")

    def test_threshold_filters(self):
        stream = io.StringIO()
        configure_logging("error", stream=stream)
        log_event(get_logger("x"), "warning", "quiet")
        assert stream.getvalue() == ""

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        log_event(get_logger("x"), "info", "once")
        assert stream.getvalue().count("event=once") == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")


class TestStallEvent:
    def test_stall_emits_structured_event(self, caplog):
        from repro.ssd.config import SSDConfig
        from repro.ssd.controller import SimulationStalledError, SSDSimulation
        from repro.workloads.synthetic import uniform_random_trace

        # ensure the repro root propagates to pytest's capture handler
        logging.getLogger("repro").propagate = True
        sim = SSDSimulation(SSDConfig.small(), ftl="page")
        sim.prefill(0.2)
        sim.ftl.submit = lambda request, on_complete: None
        trace = uniform_random_trace(sim.config.logical_pages, 10, seed=1)
        with caplog.at_level(logging.ERROR, logger="repro"):
            with pytest.raises(SimulationStalledError):
                sim.run(trace, queue_depth=4)
        stalls = [
            parse_line(f"{PREFIX} level=ERROR logger=x {record.getMessage()}")
            for record in caplog.records
        ]
        assert any(parsed["event"] == "stall" for parsed in stalls)
