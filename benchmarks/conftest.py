"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates the data behind one table/figure of the
paper, prints the same rows/series the paper plots, saves them under
``benchmarks/results/``, and asserts the qualitative shape.

Scale knobs (environment variables):

- ``REPRO_BENCH_REQUESTS``: host requests per SSD simulation (default 8000)
- ``REPRO_BENCH_WARMUP``: warm-up requests excluded from stats (default 2500)
- ``REPRO_BENCH_BLOCKS``: blocks per chip of the simulated SSD (default 48;
  the paper's full device uses 428 -- set it for paper-scale runs)
"""

import os
from pathlib import Path

import pytest

from repro.characterization.harness import CharacterizationStudy, StudyConfig

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "8000"))
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "2500"))
BENCH_BLOCKS = int(os.environ.get("REPRO_BENCH_BLOCKS", "48"))
BENCH_QUEUE_DEPTH = int(os.environ.get("REPRO_BENCH_QD", "32"))


def emit(name: str, text: str) -> None:
    """Print a figure's regenerated rows and persist them to disk."""
    banner = f"===== {name} ====="
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def study():
    """A characterization study shared by the Fig. 5/6 benchmarks."""
    return CharacterizationStudy(StudyConfig(n_chips=4, blocks_per_chip=8))


@pytest.fixture(scope="session")
def bench_ssd_config():
    from repro.nand.geometry import BlockGeometry, SSDGeometry
    from repro.ssd.config import SSDConfig

    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=4,
        blocks_per_chip=BENCH_BLOCKS,
        block=BlockGeometry(),
    )
    return SSDConfig(geometry=geometry)
