"""NAND timing parameters.

All times are microseconds.  Default values are calibrated so that the
paper's headline numbers come out of the mechanistic ISPP model:

- average (leader-WL) tPROG of about 700 us with the default 14-loop ISPP
  schedule (Section 5.1 cites tPROG ~= 700 us),
- base tREAD of about 80 us and one extra sense per read retry,
- per-operation parameter setting (ONFI Set-Features) below 1 us
  (Section 4.1.4 / 5.1 cite < 1 us).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NandTiming:
    """Latency and bandwidth parameters of the NAND device and its bus."""

    #: latency of one ISPP program pulse (the PGM box of Fig. 3(a))
    t_pgm_us: float = 38.0
    #: latency of one verify operation (the VFY box of Fig. 3(a))
    t_vfy_us: float = 4.1
    #: latency of sensing one page once (no retries)
    t_read_us: float = 80.0
    #: extra latency per read retry (one more sense with shifted V_ref)
    t_retry_us: float = 80.0
    #: block erase latency
    t_erase_us: float = 3500.0
    #: ONFI Set/Get-Features latency for adjusting operating parameters
    t_param_set_us: float = 0.7
    #: channel (bus) bandwidth for page transfers, MB/s
    bus_mb_per_s: float = 800.0
    #: fixed command/addressing overhead per bus transaction
    t_cmd_us: float = 2.0

    def transfer_us(self, n_bytes: int) -> float:
        """Bus time to move ``n_bytes`` of data, including command overhead."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        return self.t_cmd_us + n_bytes / self.bus_mb_per_s

    def read_us(self, num_retry: int) -> float:
        """Array-sense time of a read that needed ``num_retry`` retries."""
        if num_retry < 0:
            raise ValueError("num_retry must be >= 0")
        return self.t_read_us + num_retry * self.t_retry_us
