"""Property-based tests of the event engine and FIFO resources."""

from hypothesis import given, strategies as st

from repro.sim.engine import Engine
from repro.sim.resources import FifoResource


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=60))
def test_events_execute_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=40
    )
)
def test_fifo_resource_serializes_all_jobs(durations):
    """Completion times are the prefix sums of the service durations."""
    engine = Engine()
    resource = FifoResource(engine)
    completions = []
    for duration in durations:
        resource.submit(
            lambda d=duration: (d, None),
            lambda _p: completions.append(engine.now),
        )
    engine.run()
    expected = []
    now = 0.0
    for duration in durations:
        now += duration
        expected.append(now)
    assert len(completions) == len(expected)
    for got, want in zip(completions, expected):
        assert abs(got - want) < 1e-6 * max(1.0, want)
    assert abs(resource.busy_time_us - sum(durations)) < 1e-6 * max(
        1.0, sum(durations)
    )


@given(
    schedule=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),  # submission time
            st.floats(min_value=0.0, max_value=50.0),   # duration
        ),
        max_size=30,
    )
)
def test_fifo_resource_with_staggered_submissions(schedule):
    """Jobs submitted over time still complete in submission order."""
    engine = Engine()
    resource = FifoResource(engine)
    order = []

    for index, (at, duration) in enumerate(schedule):
        def submit(index=index, duration=duration):
            resource.submit(
                lambda: (duration, None), lambda _p: order.append(index)
            )

        engine.schedule(at, submit)
    engine.run()
    assert len(order) == len(schedule)
    submitted_order = sorted(
        range(len(schedule)), key=lambda i: (schedule[i][0], i)
    )
    assert order == submitted_order
