"""Tests for NAND timing parameters."""

import pytest

from repro.nand.timing import NandTiming


class TestNandTiming:
    def test_defaults_reproduce_paper_anchors(self, timing, ispp):
        """Default leader tPROG lands near the paper's nominal 700 us."""
        t_prog = ispp.default_t_prog_us(0.0)
        assert 650 <= t_prog <= 760

    def test_read_time_grows_linearly_with_retries(self, timing):
        base = timing.read_us(0)
        assert base == timing.t_read_us
        assert timing.read_us(3) == pytest.approx(base + 3 * timing.t_retry_us)

    def test_read_rejects_negative_retries(self, timing):
        with pytest.raises(ValueError):
            timing.read_us(-1)

    def test_transfer_includes_command_overhead(self, timing):
        assert timing.transfer_us(0) == timing.t_cmd_us

    def test_transfer_scales_with_size(self, timing):
        one_page = timing.transfer_us(16 * 1024)
        two_pages = timing.transfer_us(32 * 1024)
        assert two_pages - one_page == pytest.approx(one_page - timing.t_cmd_us)

    def test_transfer_rejects_negative(self, timing):
        with pytest.raises(ValueError):
            timing.transfer_us(-1)

    def test_param_set_below_one_microsecond(self, timing):
        """Section 5.1: parameter setting takes < 1 us."""
        assert timing.t_param_set_us < 1.0

    def test_frozen(self, timing):
        with pytest.raises(Exception):
            timing.t_pgm_us = 1.0
