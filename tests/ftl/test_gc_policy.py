"""Unit-level tests of the GC policy (trigger, victim guard, accounting)."""


from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.base import IORequest, Trace
from repro.workloads.synthetic import uniform_random_trace


def gc_config(**overrides):
    defaults = dict(logical_fraction=0.6, gc_trigger_blocks=3)
    defaults.update(overrides)
    return SSDConfig.small(**defaults)


class TestGCTriggering:
    def test_no_gc_with_plentiful_free_blocks(self):
        sim = SSDSimulation(gc_config(), ftl="page")
        trace = uniform_random_trace(
            sim.config.logical_pages, 300, read_fraction=0.5, seed=1
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.counters.erases == 0

    def test_gc_starts_when_pool_shrinks(self):
        sim = SSDSimulation(gc_config(), ftl="page")
        sim.prefill(1.0)
        trace = uniform_random_trace(
            sim.config.logical_pages, 2500, read_fraction=0.1, seed=2
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.counters.erases > 0
        # the pool recovered to (at least near) the trigger level
        for chip in range(sim.config.geometry.n_chips):
            assert sim.ftl.blocks.free_count(chip) >= 1

    def test_min_invalid_guard_avoids_full_valid_victims(self):
        """With cold 100 %-valid blocks and a healthy pool, GC waits
        rather than migrating blocks with nothing to reclaim."""
        sim = SSDSimulation(gc_config(gc_min_invalid_fraction=0.10), ftl="page")
        sim.prefill(1.0)
        # write only a few pages: not enough invalidation anywhere
        trace = Trace("w", sim.config.logical_pages,
                      [IORequest("W", lpn, 1) for lpn in range(24)])
        stats = sim.run(trace, queue_depth=4)
        assert stats.counters.gc_programs == 0


class TestGCAccounting:
    def test_gc_counters_consistent(self):
        sim = SSDSimulation(gc_config(), ftl="cube")
        sim.prefill(1.0)
        trace = uniform_random_trace(
            sim.config.logical_pages, 2500, read_fraction=0.1, seed=3
        )
        stats = sim.run(trace, queue_depth=8)
        counters = stats.counters
        assert counters.erases > 0
        assert counters.gc_reads > 0
        assert counters.gc_programs > 0
        # each GC program carries at most pages_per_wl migrated reads
        pages_per_wl = sim.config.geometry.block.pages_per_wl
        assert counters.gc_reads <= counters.gc_programs * pages_per_wl

    def test_write_amplification_bounded(self):
        sim = SSDSimulation(gc_config(), ftl="page")
        sim.prefill(1.0)
        trace = uniform_random_trace(
            sim.config.logical_pages, 2500, read_fraction=0.1, seed=4
        )
        stats = sim.run(trace, queue_depth=8)
        counters = stats.counters
        wa = (counters.flash_programs + counters.gc_programs) / max(
            1, counters.flash_programs
        )
        assert 1.0 <= wa < 25.0
