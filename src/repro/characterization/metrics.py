"""Process-variability metrics (Section 3.1).

For a WL grid ``N_ret(w_ij, x, t)`` under a fixed aging condition
``(x, t)``:

- :func:`delta_v` -- the inter-layer variability of one v-layer *j*:
  the ratio of the maximum to the minimum retention-error count among
  the WLs stacked along *j*;
- :func:`delta_h` -- the intra-layer variability of one h-layer *i*:
  the same ratio among the WLs lying on *i*.

Values close to 1 indicate strong process similarity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _ratio(values: Sequence[float]) -> float:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("need at least one value")
    minimum = array.min()
    if minimum <= 0:
        raise ValueError("error counts must be positive to form a ratio")
    return float(array.max() / minimum)


def delta_v(vlayer_errors: Sequence[float]) -> float:
    """Inter-layer variability: max/min N_ret along one v-layer."""
    return _ratio(vlayer_errors)


def delta_h(hlayer_errors: Sequence[float]) -> float:
    """Intra-layer variability: max/min N_ret among one h-layer's WLs."""
    return _ratio(hlayer_errors)


def normalize_over_best(values: Sequence[float]) -> np.ndarray:
    """Normalize a series over its smallest element (paper-style BER
    plots are normalized over the most reliable h-layer)."""
    array = np.asarray(values, dtype=float)
    best = array.min()
    if best <= 0:
        raise ValueError("values must be positive")
    return array / best
