"""Tests for the Optimal Parameter Manager (Section 5.1)."""

import pytest

from repro.core.opm import OptimalParameterManager
from repro.core.safety import SafetyVerdict
from repro.nand.chip import NandChip
from repro.nand.reliability import AgingState


@pytest.fixture
def opm(quiet_chip):
    return OptimalParameterManager(quiet_chip.ispp)


class TestLeaderRecording:
    def test_record_and_query(self, quiet_chip, opm):
        result = quiet_chip.program_wl(0, 10, 0)
        assert not opm.has_leader(0, 0, 10)
        observation = opm.record_leader(0, 0, 10, result)
        assert opm.has_leader(0, 0, 10)
        assert observation.s_m > 0
        assert observation.margin_mv > 0
        assert opm.leader_observation(0, 0, 10) is observation

    def test_margin_zero_when_window_adjust_disabled(self, quiet_chip):
        opm = OptimalParameterManager(quiet_chip.ispp, enable_window_adjust=False)
        result = quiet_chip.program_wl(0, 10, 0)
        observation = opm.record_leader(0, 0, 10, result)
        assert observation.margin_mv == 0.0

    def test_aged_leader_smaller_margin(self, opm):
        chip_fresh = NandChip(chip_id=0, n_blocks=2, env_shift_prob=0.0)
        chip_aged = NandChip(chip_id=0, n_blocks=2, env_shift_prob=0.0)
        chip_aged.set_baseline_aging(AgingState(2000, 12.0))
        layer = chip_fresh.reliability.layer_kappa
        fresh_obs = opm.record_leader(0, 0, layer, chip_fresh.program_wl(0, layer, 0))
        aged_obs = opm.record_leader(0, 1, layer, chip_aged.program_wl(1, layer, 0))
        assert aged_obs.margin_mv < fresh_obs.margin_mv


class TestFollowerParams:
    def test_follower_faster_than_leader(self, quiet_chip, opm):
        leader = quiet_chip.program_wl(0, 10, 0)
        opm.record_leader(0, 0, 10, leader)
        params = opm.follower_params(0, 0, 10)
        follower = quiet_chip.program_wl(0, 10, 1, params=params)
        assert follower.ispp.clean
        assert follower.t_prog_us < leader.t_prog_us
        reduction = 1.0 - follower.t_prog_us / leader.t_prog_us
        assert 0.2 <= reduction <= 0.42

    def test_missing_leader_raises(self, opm):
        with pytest.raises(KeyError):
            opm.follower_params(0, 0, 10)

    def test_params_cached(self, quiet_chip, opm):
        opm.record_leader(0, 0, 10, quiet_chip.program_wl(0, 10, 0))
        assert opm.follower_params(0, 0, 10) is opm.follower_params(0, 0, 10)

    def test_vfy_skip_can_be_disabled(self, quiet_chip):
        opm = OptimalParameterManager(quiet_chip.ispp, enable_vfy_skip=False)
        opm.record_leader(0, 0, 10, quiet_chip.program_wl(0, 10, 0))
        params = opm.follower_params(0, 0, 10)
        assert all(start == 1 for start in params.verify_plan.start_loops)
        assert params.window_squeeze_mv > 0

    def test_follower_count_tracked(self, quiet_chip, opm):
        opm.record_leader(0, 0, 10, quiet_chip.program_wl(0, 10, 0))
        opm.follower_params(0, 0, 10)
        opm.follower_params(0, 0, 10)
        assert opm.follower_program_count == 2


class TestSafetyIntegration:
    def test_clean_follower_passes(self, quiet_chip, opm):
        opm.record_leader(0, 0, 10, quiet_chip.program_wl(0, 10, 0))
        params = opm.follower_params(0, 0, 10)
        follower = quiet_chip.program_wl(0, 10, 1, params=params)
        verdict = opm.check_program(0, 0, 10, follower, params.window_squeeze_mv)
        assert verdict is SafetyVerdict.OK

    def test_env_shift_triggers_reprogram_and_invalidation(self, opm):
        quiet = NandChip(chip_id=0, n_blocks=2, env_shift_prob=0.0)
        shifty = NandChip(chip_id=0, n_blocks=2, env_shift_prob=1.0)
        leader = quiet.program_wl(0, 10, 0)
        opm.record_leader(0, 0, 10, leader)
        params = opm.follower_params(0, 0, 10)
        # the follower program hits a sudden environmental shift
        follower = shifty.program_wl(0, 10, 1, params=params)
        verdict = opm.check_program(0, 0, 10, follower, params.window_squeeze_mv)
        assert verdict is SafetyVerdict.REPROGRAM
        assert not opm.has_leader(0, 0, 10)
        assert opm.reprogram_count == 1

    def test_unknown_layer_check_is_ok(self, quiet_chip, opm):
        result = quiet_chip.program_wl(0, 10, 0)
        assert opm.check_program(0, 0, 10, result, 0) is SafetyVerdict.OK


class TestReadSide:
    def test_read_params_default_then_learned(self, opm):
        assert opm.read_params(0, 0, 5).offset_hint == 0

    def test_note_read_updates_ort(self, quiet_chip, opm):
        quiet_chip.set_baseline_aging(AgingState(2000, 12.0))
        quiet_chip.program_wl(0, 30, 0)
        first = quiet_chip.read_page(0, 30, 0, 0, opm.read_params(0, 0, 30))
        opm.note_read(0, 0, 30, first)
        hint = opm.read_params(0, 0, 30).offset_hint
        assert hint == first.final_offset
        second = quiet_chip.read_page(0, 30, 0, 1, opm.read_params(0, 0, 30))
        assert second.num_retry <= first.num_retry


class TestInvalidation:
    def test_invalidate_block_clears_everything(self, quiet_chip, opm):
        opm.record_leader(0, 0, 10, quiet_chip.program_wl(0, 10, 0))
        opm.ort.update(0, 0, 10, 3)
        opm.invalidate_block(0, 0, 48)
        assert not opm.has_leader(0, 0, 10)
        assert opm.ort.get(0, 0, 10) == 0
