"""The windowed, delta-compressed telemetry time-series recorder."""

import pytest

from repro.obs.registry import TelemetryRegistry
from repro.obs.timeseries import (
    DEFAULT_INTERVAL_US,
    TimeSeriesRecorder,
    expand_records,
    flatten_snapshot,
)


class FakeRecurring:
    def __init__(self, engine):
        self.engine = engine
        self.stopped = False

    def stop(self):
        self.stopped = True


class FakeEngine:
    """Just enough engine: a clock and a hand-cranked recurring event."""

    def __init__(self):
        self.now = 0.0
        self.recurring = []

    def every(self, interval_us, fn):
        event = FakeRecurring(self)
        event.interval_us = interval_us
        event.fn = fn
        self.recurring.append(event)
        return event

    def advance(self, dt):
        self.now += dt
        for event in self.recurring:
            if not event.stopped:
                event.fn()


@pytest.fixture
def registry():
    return TelemetryRegistry()


class TestFlattenSnapshot:
    def test_counter_flattens_to_value_key(self, registry):
        registry.counter("ops_total", "ops").inc(3)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["ops_total.value"] == 3

    def test_labelled_series_sorted_into_keys(self, registry):
        counter = registry.counter("per_chip", "per chip", labelnames=("chip",))
        counter.labels(chip=1).inc(2)
        counter.labels(chip=0).inc(5)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["per_chip{chip=0}.value"] == 5
        assert flat["per_chip{chip=1}.value"] == 2
        assert list(flat) == sorted(flat)

    def test_flatten_is_deterministic(self, registry):
        counter = registry.counter("c", "c", labelnames=("k",))
        for key in ("b", "a", "z"):
            counter.labels(k=key).inc()
        first = flatten_snapshot(registry.snapshot())
        second = flatten_snapshot(registry.snapshot())
        assert first == second
        assert list(first) == list(second)


class TestDeltaCompression:
    def test_first_window_full_later_windows_delta(self, registry):
        counter = registry.counter("a", "a")
        other = registry.counter("b", "b")
        counter.inc()
        other.inc()
        engine = FakeEngine()
        recorder = TimeSeriesRecorder(registry, engine, interval_us=10.0)
        recorder.start()
        assert recorder.records[0]["full"] is True
        assert recorder.records[0]["values"] == {"a.value": 1, "b.value": 1}
        counter.inc()  # only a changes
        engine.advance(10.0)
        assert recorder.records[1]["full"] is False
        assert recorder.records[1]["values"] == {"a.value": 2}
        engine.advance(10.0)  # nothing changed: empty delta
        assert recorder.records[2]["values"] == {}

    def test_expand_records_roundtrips(self, registry):
        counter = registry.counter("a", "a")
        engine = FakeEngine()
        recorder = TimeSeriesRecorder(registry, engine, interval_us=5.0)
        recorder.start()
        expected = []
        expected.append(flatten_snapshot(registry.snapshot()))
        for _ in range(4):
            counter.inc()
            engine.advance(5.0)
            expected.append(flatten_snapshot(registry.snapshot()))
        times, windows = expand_records(recorder.records)
        assert times == [0.0, 5.0, 10.0, 15.0, 20.0]
        assert windows == expected

    def test_finalize_replaces_same_timestamp_window(self, registry):
        counter = registry.counter("a", "a")
        engine = FakeEngine()
        recorder = TimeSeriesRecorder(registry, engine, interval_us=5.0)
        recorder.start()
        engine.advance(5.0)  # periodic window at t=5
        counter.inc()  # state changes after the periodic snapshot
        records = recorder.finalize()  # end-of-run also at t=5
        assert [r["t_us"] for r in records] == [0.0, 5.0]
        _, windows = expand_records(records)
        assert windows[-1]["a.value"] == 1  # final window sees the inc

    def test_stop_cancels_recurring_event(self, registry):
        engine = FakeEngine()
        recorder = TimeSeriesRecorder(registry, engine)
        recorder.start()
        recorder.stop()
        assert engine.recurring[0].stopped
        n = len(recorder.records)
        engine.advance(DEFAULT_INTERVAL_US)
        assert len(recorder.records) == n

    def test_rejects_nonpositive_interval(self, registry):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, FakeEngine(), interval_us=0.0)
