"""Tests for ASCII charts."""

import pytest

from repro.analysis.ascii_plot import bar_chart, cdf_chart, series_chart


class TestBarChart:
    def test_basic(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0])
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")
        assert "bb" in lines[1]

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0])

    def test_unit_suffix(self):
        assert "us" in bar_chart(["a"], [5.0], unit="us")


class TestCdfChart:
    def test_renders_axis_and_legend(self):
        chart = cdf_chart({"page": [1, 2, 3], "cube": [1, 1, 2]})
        assert "* = page" in chart
        assert "o = cube" in chart
        assert "1.00 |" in chart

    def test_empty(self):
        assert cdf_chart({}) == ""
        assert cdf_chart({"a": []}) == ""

    def test_constant_samples(self):
        chart = cdf_chart({"a": [5.0, 5.0]})
        assert chart  # no crash on degenerate range


class TestSeriesChart:
    def test_basic(self):
        chart = series_chart([0, 1, 2], {"y": [0.0, 1.0, 4.0]})
        assert "* = y" in chart
        assert "+" in chart  # axis corner

    def test_mismatched_series(self):
        with pytest.raises(ValueError):
            series_chart([0, 1], {"y": [1.0]})

    def test_empty(self):
        assert series_chart([], {}) == ""
