"""Trace primitives: I/O requests and traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

READ = "R"
WRITE = "W"


@dataclass(frozen=True)
class IORequest:
    """One host request: operation, starting logical page, page count.

    ``arrival_us`` is optional: traces without arrival times replay
    closed-loop at a fixed queue depth; traces with arrival times can be
    replayed open-loop (requests issue at their timestamps).

    ``tenant`` names the stream the request belongs to in a multi-tenant
    scenario (see :mod:`repro.workloads.tenants`); single-stream traces
    leave it ``None`` and nothing downstream ever looks at it.
    """

    op: str
    lpn: int
    n_pages: int = 1
    arrival_us: Optional[float] = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ValueError(f"op must be {READ!r} or {WRITE!r}")
        if self.lpn < 0:
            raise ValueError("lpn must be >= 0")
        if self.n_pages < 1:
            raise ValueError("n_pages must be >= 1")
        if self.arrival_us is not None and self.arrival_us < 0:
            raise ValueError("arrival_us must be >= 0")

    def at(self, arrival_us: float) -> "IORequest":
        """A copy of this request stamped with an arrival time."""
        return IORequest(self.op, self.lpn, self.n_pages, arrival_us, self.tenant)

    def tagged(self, tenant: str) -> "IORequest":
        """A copy of this request tagged with a tenant name."""
        return IORequest(self.op, self.lpn, self.n_pages, self.arrival_us, tenant)

    @property
    def is_read(self) -> bool:
        return self.op == READ

    @property
    def is_write(self) -> bool:
        return self.op == WRITE

    @property
    def end_lpn(self) -> int:
        """One past the last page touched."""
        return self.lpn + self.n_pages


@dataclass
class Trace:
    """A named sequence of host requests over a logical page space."""

    name: str
    logical_pages: int
    requests: List[IORequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        for request in self.requests:
            self._check(request)

    def _check(self, request: IORequest) -> None:
        if request.end_lpn > self.logical_pages:
            raise ValueError(
                f"request {request} exceeds logical space {self.logical_pages}"
            )

    def append(self, request: IORequest) -> None:
        self._check(request)
        self.requests.append(request)

    @property
    def has_arrivals(self) -> bool:
        """True when every request carries an arrival timestamp.

        The host model dispatches on this property (open-loop replay is
        only defined for fully-stamped traces) instead of scattering
        per-request ``is not None`` checks.
        """
        return bool(self.requests) and all(
            request.arrival_us is not None for request in self.requests
        )

    @property
    def tenants(self) -> List[str]:
        """Distinct tenant tags, in first-appearance order."""
        seen: Dict[str, None] = {}
        for request in self.requests:
            if request.tenant is not None and request.tenant not in seen:
                seen[request.tenant] = None
        return list(seen)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]


def with_arrivals(
    trace: Trace,
    rate_iops: float,
    burstiness: float = 1.0,
    seed: int = 1,
) -> Trace:
    """Stamp a trace with arrival times for open-loop replay.

    Inter-arrival gaps are exponential with mean ``1/rate_iops``; a
    ``burstiness`` above 1 alternates between dense bursts and idle gaps
    of the same average rate (a simple on/off burst model).
    """
    if rate_iops <= 0:
        raise ValueError("rate_iops must be positive")
    if burstiness < 1.0:
        raise ValueError("burstiness must be >= 1")
    import numpy as np

    rng = np.random.default_rng(seed)
    mean_gap_us = 1e6 / rate_iops
    now = 0.0
    stamped = Trace(trace.name, trace.logical_pages)
    for index, request in enumerate(trace):
        if burstiness > 1.0 and rng.random() < 0.5:
            gap = rng.exponential(mean_gap_us / burstiness)
        else:
            gap = rng.exponential(mean_gap_us * burstiness) if burstiness > 1.0 \
                else rng.exponential(mean_gap_us)
        now += gap
        stamped.append(request.at(now))
    return stamped


def trace_summary(trace: Trace) -> Dict[str, float]:
    """Aggregate statistics of a trace (used in docs and tests)."""
    reads = [r for r in trace if r.is_read]
    writes = [r for r in trace if r.is_write]
    read_pages = sum(r.n_pages for r in reads)
    write_pages = sum(r.n_pages for r in writes)
    total_pages = read_pages + write_pages
    lpns = {r.lpn for r in trace}
    return {
        "requests": len(trace),
        "read_requests": len(reads),
        "write_requests": len(writes),
        "read_fraction": len(reads) / len(trace) if trace else 0.0,
        "read_page_fraction": read_pages / total_pages if total_pages else 0.0,
        "mean_read_pages": read_pages / len(reads) if reads else 0.0,
        "mean_write_pages": write_pages / len(writes) if writes else 0.0,
        "unique_start_lpns": len(lpns),
    }
