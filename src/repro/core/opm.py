"""Optimal Parameter Manager (OPM) -- Section 5.1.

The OPM is the module of cubeFTL that makes program and read operations
finish faster by exploiting the intra-layer process similarity:

- when a *leader* WL (the first WL programmed on an h-layer) completes,
  the OPM records the monitored per-state loop intervals and the E<->P1
  BER, converts the latter into the spare margin S_M and a window
  adjustment, and keeps everything until the h-layer's followers are
  written;
- when a *follower* WL is about to be programmed, the OPM hands the FTL
  a :class:`~repro.nand.ispp.ProgramParams` with the verify-skip plan and
  the tightened (V_start, V_final) window;
- after every program it runs the Section 4.1.4 safety check;
- for reads it maintains the ORT and supplies per-h-layer offset hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.maxloop import (
    DEFAULT_BER_EP1_MAX,
    DEFAULT_MARGIN_TABLE,
    MarginTable,
    spare_margin,
)
from repro.core.ort import OptimalReadTable
from repro.core.safety import SafetyChecker, SafetyVerdict
from repro.nand.chip import ProgramResult, ReadResult
from repro.nand.ispp import IsppEngine, ProgramParams, WLProgramProfile
from repro.nand.read_retry import ReadParams

#: device-memory cost of one leader observation: 7 states x [L_min, L_max]
#: in nibbles (7 bytes), plus quantized margin (2 bytes) and the safety
#: reference (4 bytes) -- rounded up to 16 bytes
LEADER_OBSERVATION_BYTES = 16


@dataclass(frozen=True)
class LeaderObservation:
    """Everything monitored from a leader-WL program."""

    monitored: WLProgramProfile
    ber_ep1: float
    s_m: float
    margin_mv: float
    #: squeeze-normalized post-program BER, the h-layer's safety reference
    reference_ber: float


class OptimalParameterManager:
    """Per-h-layer parameter monitoring, reuse, and safety checking."""

    def __init__(
        self,
        ispp: IsppEngine,
        margin_table: MarginTable = DEFAULT_MARGIN_TABLE,
        ber_ep1_max: float = DEFAULT_BER_EP1_MAX,
        safety: SafetyChecker = SafetyChecker(),
        ort: Optional[OptimalReadTable] = None,
        guard: int = 0,
        enable_window_adjust: bool = True,
        enable_vfy_skip: bool = True,
    ) -> None:
        self.ispp = ispp
        self.margin_table = margin_table
        self.ber_ep1_max = ber_ep1_max
        self.safety = safety
        self.ort = ort if ort is not None else OptimalReadTable()
        self.guard = guard
        self.enable_window_adjust = enable_window_adjust
        self.enable_vfy_skip = enable_vfy_skip
        self._leaders: Dict[Tuple[int, int, int], LeaderObservation] = {}
        self._params_cache: Dict[Tuple[int, int, int], ProgramParams] = {}
        # running counters for evaluation
        self.reprogram_count = 0
        self.follower_program_count = 0
        self.leader_program_count = 0

    # ------------------------------------------------------------------
    # program-side
    # ------------------------------------------------------------------

    def has_leader(self, chip_id: int, block: int, layer: int) -> bool:
        return (chip_id, block, layer) in self._leaders

    def leader_observation(
        self, chip_id: int, block: int, layer: int
    ) -> LeaderObservation:
        return self._leaders[(chip_id, block, layer)]

    def record_leader(
        self, chip_id: int, block: int, layer: int, result: ProgramResult
    ) -> LeaderObservation:
        """Store the parameters monitored from a leader-WL program."""
        s_m = spare_margin(result.ber_ep1, self.ber_ep1_max)
        margin = self.margin_table.margin_mv(s_m) if self.enable_window_adjust else 0.0
        observation = LeaderObservation(
            monitored=result.monitored,
            ber_ep1=result.ber_ep1,
            s_m=s_m,
            margin_mv=margin,
            reference_ber=result.post_program_ber,
        )
        self._leaders[(chip_id, block, layer)] = observation
        self._params_cache.pop((chip_id, block, layer), None)
        self.leader_program_count += 1
        return observation

    def follower_params(self, chip_id: int, block: int, layer: int) -> ProgramParams:
        """Program parameters for a follower WL of a monitored h-layer."""
        key = (chip_id, block, layer)
        observation = self._leaders[key]
        self.follower_program_count += 1
        cached = self._params_cache.get(key)
        if cached is not None:
            return cached
        squeeze = int(round(observation.margin_mv))
        params = self.ispp.follower_params(
            observation.monitored,
            window_squeeze_mv=squeeze,
            start_fraction=self.margin_table.start_fraction,
            guard=self.guard,
        )
        if not self.enable_vfy_skip:
            params = ProgramParams(
                v_start_mv=params.v_start_mv,
                v_final_mv=params.v_final_mv,
                dv_ispp_mv=params.dv_ispp_mv,
            )
        self._params_cache[key] = params
        return params

    def check_program(
        self,
        chip_id: int,
        block: int,
        layer: int,
        result: ProgramResult,
        window_squeeze_mv: float,
    ) -> SafetyVerdict:
        """Section 4.1.4 safety check on a just-completed WL program.

        Compares the measured post-program BER against the h-layer's
        stored reference (squeeze-normalized).  On OK the reference is
        refreshed; on REPROGRAM the caller must re-write the data on
        another WL and re-monitor.
        """
        key = (chip_id, block, layer)
        observation = self._leaders.get(key)
        if observation is None:
            return SafetyVerdict.OK
        verdict = self.safety.check(
            observation.reference_ber, result.post_program_ber, window_squeeze_mv
        )
        if verdict is SafetyVerdict.REPROGRAM:
            self.reprogram_count += 1
            # stale parameters must not be reused
            del self._leaders[key]
            self._params_cache.pop(key, None)
        return verdict

    @property
    def ort_hit_rate(self) -> float:
        """Fraction of read-offset lookups served by a learned entry
        (the Fig. 14 signal, exposed for the metrics sampler)."""
        return self.ort.hit_rate

    def memory_bytes(self) -> int:
        """Controller-memory footprint of the monitored state.

        Section 5.2 notes the memory/flexibility trade-off of keeping
        more active blocks: each active block can hold one observation
        per h-layer awaiting its followers, plus the ORT entries.
        """
        from repro.core.ort import BYTES_PER_ENTRY

        return (
            len(self._leaders) * LEADER_OBSERVATION_BYTES
            + len(self.ort) * BYTES_PER_ENTRY
        )

    def invalidate_block(self, chip_id: int, block: int, n_layers: int) -> None:
        """Forget a block's monitored parameters and ORT entries (erase)."""
        for layer in range(n_layers):
            self._leaders.pop((chip_id, block, layer), None)
            self._params_cache.pop((chip_id, block, layer), None)
        self.ort.invalidate_block(chip_id, block, n_layers)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable monitored state.

        ``_params_cache`` is a pure derivation of the leader observations
        and is rebuilt on demand, so it is not serialized (and must be
        cleared on load).  Observations are frozen dataclasses, so a
        shallow dict copy suffices.
        """
        return {
            "leaders": dict(self._leaders),
            "ort": self.ort.state_dict(),
            "reprogram_count": self.reprogram_count,
            "follower_program_count": self.follower_program_count,
            "leader_program_count": self.leader_program_count,
        }

    def load_state_dict(self, state: dict) -> None:
        self._leaders = dict(state["leaders"])
        self._params_cache = {}
        self.ort.load_state_dict(state["ort"])
        self.reprogram_count = state["reprogram_count"]
        self.follower_program_count = state["follower_program_count"]
        self.leader_program_count = state["leader_program_count"]

    def reset_monitored(self) -> None:
        """Drop every monitored observation and cached parameter (SPOR:
        the OPM state lives in controller RAM and does not survive a
        power cut; the ORT is dropped too and relearns from reads)."""
        self._leaders = {}
        self._params_cache = {}
        self.ort._entries = {}

    # ------------------------------------------------------------------
    # read-side
    # ------------------------------------------------------------------

    def read_params(self, chip_id: int, block: int, layer: int) -> ReadParams:
        """Offset hint for a read, from the ORT (Section 4.2)."""
        return ReadParams(offset_hint=self.ort.get(chip_id, block, layer))

    def invalidate_read_entry(self, chip_id: int, block: int, layer: int) -> bool:
        """Drop one h-layer's ORT entry after its offset hint failed to
        decode a read (graceful ORT degradation: the next read of the
        h-layer starts from the paper-default references and relearns).
        Returns whether an entry existed."""
        return self.ort.invalidate_entry(chip_id, block, layer)

    def note_read(
        self, chip_id: int, block: int, layer: int, result: ReadResult
    ) -> None:
        """Feed a completed read back into the ORT.

        The ORT always tracks the most recent offsets that decoded
        successfully -- both after retries (learning) and after clean
        reads (keeping the entry fresh)."""
        self.ort.update(chip_id, block, layer, result.final_offset)
