"""Incremental step pulse programming (ISPP) engine.

Implements the program-operation model of Section 2.2 at the
micro-operation (PGM / VFY) level, including everything the paper's
optimizations manipulate:

- per-state completion-loop intervals ``[L_min, L_max]`` (fast vs. slow
  cells of a WL),
- the verify schedule and its per-loop verify counts ``k_i`` (Eq. 1),
- the program-voltage window ``(V_start, V_final)`` whose width divided by
  ``dV_ISPP`` bounds ``MaxLoop``,
- verify skipping for follower WLs (Section 4.1.1),
- window tightening from the spare BER margin (Section 4.1.2), and
- the resulting over-/under-program reliability penalties.

Loop indices are 1-based absolute ISPP loop numbers.  With the default
calibration a TLC WL programs in 12 executed loops with 63 verifies, i.e.
``tPROG = 12 x 38.75 us + 63 x 3.75 us ~= 701 us`` -- the paper's nominal
700 us.  A follower WL that skips every safe verify saves
``sum_s (A_min(s) - 1) = 28`` verifies (105 us, ~16 % -- the paper reports
16.2 %), and each 120-mV window reduction removes roughly one loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.nand.errors import ProgramWindowError
from repro.nand.timing import NandTiming

#: number of programmed states for TLC (P1..P7; E is not programmed)
TLC_STATES = 7

#: default ISPP voltage step (mV)
DV_ISPP_DEFAULT_MV = 120

#: default (conservative) program start voltage (mV)
V_START_DEFAULT_MV = 15_000

#: default (conservative) MaxLoop -- sized for the slowest layer under the
#: worst aging condition (2 extra loops over the nominal 12)
MAXLOOP_DEFAULT = 14

#: default (conservative) final program voltage (mV)
V_FINAL_DEFAULT_MV = V_START_DEFAULT_MV + MAXLOOP_DEFAULT * DV_ISPP_DEFAULT_MV

#: BER growth scale of window tightening: squeezing the (V_start, V_final)
#: window by ``x`` mV compresses the V_th state separation and multiplies
#: the raw BER by ``exp(x / WINDOW_SQUEEZE_TAU_MV)`` (the error-balancing
#: trade-off of Fig. 9)
WINDOW_SQUEEZE_TAU_MV = 400.0


def window_squeeze_ber_multiplier(squeeze_mv: float) -> float:
    """BER multiplier caused by tightening the program window."""
    if squeeze_mv < 0:
        raise ValueError("squeeze_mv must be >= 0")
    return math.exp(squeeze_mv / WINDOW_SQUEEZE_TAU_MV)


@dataclass(frozen=True)
class LoopInterval:
    """Completion-loop interval ``[l_min, l_max]`` for one program state.

    Fast cells of the state reach their target window at loop ``l_min``;
    the slowest cells need ``l_max`` loops.
    """

    l_min: int
    l_max: int

    def __post_init__(self) -> None:
        if self.l_min < 1:
            raise ValueError("l_min must be >= 1")
        if self.l_max < self.l_min:
            raise ValueError("l_max must be >= l_min")

    def shifted(self, delta: int) -> "LoopInterval":
        """Shift both bounds by ``delta`` loops, clamping at loop 1."""
        return LoopInterval(max(1, self.l_min + delta), max(1, self.l_max + delta))

    @property
    def width(self) -> int:
        return self.l_max - self.l_min


@dataclass(frozen=True)
class WLProgramProfile:
    """Ground-truth ISPP behaviour of one WL: per-state loop intervals.

    Because of the intra-layer similarity, all WLs of an h-layer share the
    same profile (barring rare environmental shifts); this is exactly what
    makes leader-WL monitoring safe to reuse.
    """

    intervals: Tuple[LoopInterval, ...]

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError("profile must cover at least one state")
        previous = 0
        for interval in self.intervals:
            if interval.l_max < previous:
                raise ValueError("state completion must be non-decreasing")
            previous = interval.l_max
        # profiles key the ISPP memo tables, so they are hashed on every
        # program operation; hashing the interval tuple lazily per lookup
        # dominated the cache-hit cost
        object.__setattr__(self, "_hash", hash(self.intervals))

    def __hash__(self) -> int:
        return self._hash

    @property
    def n_states(self) -> int:
        return len(self.intervals)

    @property
    def loops_needed(self) -> int:
        """Number of ISPP loops needed to finish the slowest state."""
        return max(interval.l_max for interval in self.intervals)

    def interval(self, state: int) -> LoopInterval:
        """Interval of program state ``state`` (1-based: P1..Pm)."""
        if not 1 <= state <= self.n_states:
            raise ValueError(f"state {state} out of range")
        return self.intervals[state - 1]


@dataclass(frozen=True)
class VerifyPlan:
    """Per-state loop at which verify operations begin.

    ``start_loops[s-1] = k`` means state ``Ps`` is not verified before
    loop ``k``; the PS-unaware default is ``k = 1`` for every state
    (verify from the first loop, as in Fig. 3(a)).  A follower plan built
    from leader monitoring starts each state's verifies at the leader's
    observed ``l_min``, skipping ``l_min - 1`` verifies per state.
    """

    start_loops: Tuple[int, ...]

    def __post_init__(self) -> None:
        for start in self.start_loops:
            if start < 1:
                raise ValueError("verify start loops must be >= 1")

    @classmethod
    def default(cls, n_states: int = TLC_STATES) -> "VerifyPlan":
        return cls(tuple([1] * n_states))

    @classmethod
    def from_profile(cls, profile: WLProgramProfile, guard: int = 0) -> "VerifyPlan":
        """Build the skip plan of Section 4.1.1 from a monitored profile.

        ``guard`` extra early loops may be kept as a safety cushion
        (``guard = 0`` reproduces the paper's scheme where verification
        begins exactly at the monitored ``L_min``).
        """
        if guard < 0:
            raise ValueError("guard must be >= 0")
        return cls(
            tuple(max(1, interval.l_min - guard) for interval in profile.intervals)
        )

    @property
    def n_states(self) -> int:
        return len(self.start_loops)

    def skipped_before(self, state: int) -> int:
        """Number of verifies skipped for ``state`` relative to the
        PS-unaware plan (the paper's N_skip)."""
        if not 1 <= state <= self.n_states:
            raise ValueError(f"state {state} out of range")
        return self.start_loops[state - 1] - 1


@dataclass(frozen=True)
class ProgramParams:
    """Operating parameters of one WL program operation."""

    v_start_mv: int = V_START_DEFAULT_MV
    v_final_mv: int = V_FINAL_DEFAULT_MV
    dv_ispp_mv: int = DV_ISPP_DEFAULT_MV
    verify_plan: VerifyPlan = field(default_factory=VerifyPlan.default)

    def __post_init__(self) -> None:
        if self.dv_ispp_mv <= 0:
            raise ProgramWindowError("dV_ISPP must be positive")
        if self.v_final_mv - self.v_start_mv < self.dv_ispp_mv:
            raise ProgramWindowError(
                "program window narrower than one ISPP step: "
                f"[{self.v_start_mv}, {self.v_final_mv}] mV"
            )

    @classmethod
    def default(cls, n_states: int = TLC_STATES) -> "ProgramParams":
        return cls(verify_plan=VerifyPlan.default(n_states))

    @property
    def max_loop(self) -> int:
        """MaxLoop = (V_final - V_start) / dV_ISPP (Section 2.2)."""
        return (self.v_final_mv - self.v_start_mv) // self.dv_ispp_mv

    @property
    def start_shift_loops(self) -> int:
        """Loops removed at the front by raising V_start."""
        return round((self.v_start_mv - V_START_DEFAULT_MV) / self.dv_ispp_mv)

    @property
    def final_shift_loops(self) -> int:
        """Loops removed at the back by lowering V_final."""
        return round((V_FINAL_DEFAULT_MV - self.v_final_mv) / self.dv_ispp_mv)

    @property
    def window_squeeze_mv(self) -> int:
        """Total window tightening relative to the conservative default."""
        return (V_FINAL_DEFAULT_MV - self.v_final_mv) + (
            self.v_start_mv - V_START_DEFAULT_MV
        )


@dataclass(frozen=True)
class IsppResult:
    """Outcome of simulating one WL program operation."""

    #: total program latency (Eq. 1)
    t_prog_us: float
    #: number of executed ISPP loops
    executed_loops: int
    #: number of verify operations performed
    vfy_count: int
    #: number of verify operations skipped vs. the PS-unaware schedule
    vfy_skipped: int
    #: per-state count of verifies skipped *beyond* the safe point --
    #: each over-skip leaves fast cells unprotected for one extra loop
    over_skips: Tuple[int, ...]
    #: per-state count of loops the window was too short to execute --
    #: slow cells of these states end under-programmed
    under_loops: Tuple[int, ...]
    #: multiplicative reliability penalty (1.0 = clean program)
    ber_penalty: float
    #: monitored completion intervals, as observable via Get-Features
    monitored: WLProgramProfile

    @property
    def clean(self) -> bool:
        """True when no state was over- or under-programmed."""
        return all(o == 0 for o in self.over_skips) and all(
            u == 0 for u in self.under_loops
        )


def default_state_intervals(n_states: int = TLC_STATES) -> Tuple[LoopInterval, ...]:
    """Nominal per-state completion intervals of the modelled chip.

    State ``Ps`` completes between loops ``s + 1`` and ``s + 5``; thus the
    nominal WL needs 12 loops and, verified PS-unaware from loop 1, costs
    ``sum_s (s + 5) = 63`` verifies.  A full skip plan removes
    ``sum_s s = 28`` of them, and states skip ``1, 2, ..., 7`` verifies
    respectively -- matching Fig. 8 where P1 can skip 1 VFY and P7 can
    skip 7.
    """
    return tuple(LoopInterval(s + 1, s + 5) for s in range(1, n_states + 1))


class IsppEngine:
    """Mechanistic ISPP program simulator.

    The engine maps a WL's physical condition (its h-layer's program
    slowdown plus any transient environmental shift) to a
    :class:`WLProgramProfile`, then executes a program operation under
    given :class:`ProgramParams`, producing latency (Eq. 1/2) and
    reliability outcomes.
    """

    def __init__(
        self,
        timing: NandTiming = NandTiming(),
        n_states: int = TLC_STATES,
        base_intervals: Optional[Sequence[LoopInterval]] = None,
        over_skip_penalty: float = 0.8,
        under_loop_penalty: float = 3.0,
    ) -> None:
        self.timing = timing
        self.n_states = n_states
        if base_intervals is None:
            base_intervals = default_state_intervals(n_states)
        if len(base_intervals) != n_states:
            raise ValueError("base_intervals must cover every state")
        self.base_intervals = tuple(base_intervals)
        self.over_skip_penalty = over_skip_penalty
        self.under_loop_penalty = under_loop_penalty
        # profiles and program outcomes are pure functions of small
        # discrete inputs -- memoize aggressively
        self._profile_cache: dict = {}
        self._effective_cache: dict = {}
        self._simulate_cache: dict = {}

    # ------------------------------------------------------------------
    # profiles
    # ------------------------------------------------------------------

    def wl_profile(self, slowdown: float, env_shift: int = 0) -> WLProgramProfile:
        """Ground-truth profile of a WL.

        ``slowdown`` in [0, 1] is the h-layer's program-speed handicap
        (from :meth:`repro.nand.reliability.ReliabilityModel.program_slowdown`);
        it adds up to 2 extra loops.  ``env_shift`` models a sudden change
        in operating conditions (Section 4.1.4) that moves the whole
        profile by a loop or two, invalidating previously monitored
        parameters.
        """
        if not 0.0 <= slowdown <= 1.0:
            raise ValueError("slowdown must be in [0, 1]")
        delta = round(2.0 * slowdown) + env_shift
        cached = self._profile_cache.get(delta)
        if cached is None:
            cached = WLProgramProfile(
                tuple(interval.shifted(delta) for interval in self.base_intervals)
            )
            self._profile_cache[delta] = cached
        return cached

    def effective_profile(
        self, profile: WLProgramProfile, params: ProgramParams
    ) -> WLProgramProfile:
        """Profile as seen under a shifted/tightened program window.

        Raising ``V_start`` by *k* steps makes every state complete *k*
        loops earlier; lowering ``V_final`` compresses the upper states
        proportionally (state ``Ps`` saves ``round(k_final * s / m)``
        loops).
        """
        k_start = params.start_shift_loops
        k_final = params.final_shift_loops
        if k_start == 0 and k_final == 0:
            return profile
        # two equal-intervals profiles are equal, so keying on the
        # profile (with its precomputed hash) memoizes exactly as the
        # interval tuple did, without re-hashing every LoopInterval
        key = (profile, k_start, k_final)
        cached = self._effective_cache.get(key)
        if cached is not None:
            return cached
        m = profile.n_states
        shifted = []
        prev_min = 1
        prev_max = 1
        for s, interval in enumerate(profile.intervals, start=1):
            reduction = k_start + round(k_final * s / m)
            moved = interval.shifted(-reduction)
            # states may merge into the same loop under extreme squeezes
            # but can never complete before a lower state
            l_min = max(moved.l_min, prev_min)
            l_max = max(moved.l_max, prev_max, l_min)
            shifted.append(LoopInterval(l_min, l_max))
            prev_min, prev_max = l_min, l_max
        result = WLProgramProfile(tuple(shifted))
        self._effective_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # program simulation
    # ------------------------------------------------------------------

    def simulate(
        self, profile: WLProgramProfile, params: ProgramParams
    ) -> IsppResult:
        """Execute one WL program operation.

        Returns the latency per Eq. 1 -- the sum over executed loops of
        ``tPGM + k_i * tVFY`` -- along with reliability outcomes.
        """
        if profile.n_states != params.verify_plan.n_states:
            raise ValueError("verify plan does not match profile states")
        cache_key = (
            profile,
            params.v_start_mv,
            params.v_final_mv,
            params.dv_ispp_mv,
            params.verify_plan.start_loops,
        )
        cached = self._simulate_cache.get(cache_key)
        if cached is not None:
            return cached
        effective = self.effective_profile(profile, params)
        max_loop = params.max_loop
        needed = effective.loops_needed
        executed = min(needed, max_loop)

        vfy_count = 0
        vfy_skipped = 0
        over_skips = []
        under_loops = []
        for s in range(1, effective.n_states + 1):
            interval = effective.interval(s)
            start = params.verify_plan.start_loops[s - 1]
            # the state is verified in loops [start, min(l_max, executed)]
            last = min(interval.l_max, executed)
            performed = max(0, last - start + 1)
            baseline = last  # PS-unaware: verified in loops 1..last
            vfy_count += performed
            vfy_skipped += baseline - performed
            # verifies skipped past the state's true l_min leave fast cells
            # pulsed while unverified -> over-program errors
            over_skips.append(max(0, start - interval.l_min))
            # loops the window could not supply -> under-program errors
            under_loops.append(max(0, interval.l_max - max_loop))

        penalty = window_squeeze_ber_multiplier(max(0, params.window_squeeze_mv))
        for over in over_skips:
            penalty *= 1.0 + self.over_skip_penalty * over
        for under in under_loops:
            penalty *= 1.0 + self.under_loop_penalty * under

        t_prog = executed * self.timing.t_pgm_us + vfy_count * self.timing.t_vfy_us
        result = IsppResult(
            t_prog_us=t_prog,
            executed_loops=executed,
            vfy_count=vfy_count,
            vfy_skipped=vfy_skipped,
            over_skips=tuple(over_skips),
            under_loops=tuple(under_loops),
            ber_penalty=penalty,
            monitored=effective,
        )
        self._simulate_cache[cache_key] = result
        return result

    # ------------------------------------------------------------------
    # closed-form helpers used by benchmarks and the OPM
    # ------------------------------------------------------------------

    def default_t_prog_us(self, slowdown: float = 0.0) -> float:
        """tPROG of a PS-unaware (leader) program on a layer."""
        profile = self.wl_profile(slowdown)
        return self.simulate(profile, ProgramParams.default(self.n_states)).t_prog_us

    def follower_params(
        self,
        monitored: WLProgramProfile,
        window_squeeze_mv: int = 0,
        start_fraction: float = 0.6,
        guard: int = 0,
        dv_ispp_mv: int = DV_ISPP_DEFAULT_MV,
    ) -> ProgramParams:
        """Build follower-WL parameters from a leader's monitored profile.

        ``window_squeeze_mv`` is the total (V_start, V_final) adjustment
        margin granted by the spare BER margin S_M (Section 4.1.2); it is
        split ``start_fraction`` : ``1 - start_fraction`` between raising
        V_start and lowering V_final, quantized to ISPP steps.  The verify
        plan is derived from the monitored profile *after* translating it
        into the tightened window, so skips stay aligned with the shifted
        completion loops.
        """
        if window_squeeze_mv < 0:
            raise ValueError("window_squeeze_mv must be >= 0")
        start_mv = int(round(window_squeeze_mv * start_fraction / dv_ispp_mv)) * dv_ispp_mv
        final_mv = (
            int(round(window_squeeze_mv * (1.0 - start_fraction) / dv_ispp_mv))
            * dv_ispp_mv
        )
        params_window = ProgramParams(
            v_start_mv=V_START_DEFAULT_MV + start_mv,
            v_final_mv=V_FINAL_DEFAULT_MV - final_mv,
            dv_ispp_mv=dv_ispp_mv,
            verify_plan=VerifyPlan.default(monitored.n_states),
        )
        expected = self.effective_profile(monitored, params_window)
        return ProgramParams(
            v_start_mv=params_window.v_start_mv,
            v_final_mv=params_window.v_final_mv,
            dv_ispp_mv=dv_ispp_mv,
            verify_plan=VerifyPlan.from_profile(expected, guard=guard),
        )


def require_valid_window(v_start_mv: int, v_final_mv: int, dv_ispp_mv: int) -> None:
    """Validate a program window, raising :class:`ProgramWindowError`."""
    if dv_ispp_mv <= 0:
        raise ProgramWindowError("dV_ISPP must be positive")
    if v_final_mv - v_start_mv < dv_ispp_mv:
        raise ProgramWindowError("window narrower than one ISPP step")


def t_prog_equation_1(
    timing: NandTiming, loop_vfy_counts: Sequence[int]
) -> float:
    """Direct evaluation of the paper's Eq. 1:
    ``tPROG = sum_i (tPGM + k_i * tVFY)``."""
    return sum(timing.t_pgm_us + k * timing.t_vfy_us for k in loop_vfy_counts)


def t_prog_equation_2(
    timing: NandTiming,
    phase_loops: Sequence[int],
    phase_vfys: Sequence[int],
) -> float:
    """Direct evaluation of the paper's Eq. 2:
    ``tPROG = sum_s L_s * (tPGM + V_s * tVFY)``."""
    if len(phase_loops) != len(phase_vfys):
        raise ValueError("phase_loops and phase_vfys must align")
    return sum(
        loops * (timing.t_pgm_us + vfys * timing.t_vfy_us)
        for loops, vfys in zip(phase_loops, phase_vfys)
    )
