"""Ablation: which OPM mechanism buys what.

DESIGN.md calls out three independent latency mechanisms inside cubeFTL:
verify skipping (Sec. 4.1.1), window adjustment (Sec. 4.1.2), and the ORT
(Sec. 4.2).  This bench disables them one at a time and measures the IOPS
contribution of each on a write-heavy workload (fresh -- program-side
mechanisms matter) and a read-heavy workload at end of life (the ORT
matters).

Expected shape: fresh OLTP gains come from the two program mechanisms and
stack roughly additively; aged Proxy gains come almost entirely from the
ORT.
"""

import pytest

from benchmarks.conftest import BENCH_QUEUE_DEPTH, BENCH_REQUESTS, BENCH_WARMUP, emit
from repro.analysis.tables import format_table
from repro.nand.reliability import AgingState
from repro.ssd.controller import SSDSimulation
from repro.workloads import make_workload

VARIANTS = {
    "pageFTL (none)": dict(ftl="page"),
    "vfy-skip only": dict(
        ftl="cube", enable_window_adjust=False, enable_ort=False
    ),
    "window only": dict(ftl="cube", enable_vfy_skip=False, enable_ort=False),
    "program both": dict(ftl="cube", enable_ort=False),
    "full cubeFTL": dict(ftl="cube"),
    "oracleFTL (bound)": dict(ftl="oracle"),
}


def _run(config, workload, aging, variant_kwargs):
    kwargs = dict(variant_kwargs)
    ftl = kwargs.pop("ftl")
    sim = SSDSimulation(config.with_aging(aging), ftl=ftl, **kwargs)
    sim.prefill(0.9)
    trace = make_workload(workload, sim.config.logical_pages, BENCH_REQUESTS, seed=7)
    return sim.run(
        trace, queue_depth=BENCH_QUEUE_DEPTH, warmup_requests=BENCH_WARMUP
    )


@pytest.fixture(scope="module")
def ablation(bench_ssd_config):
    fresh = {
        name: _run(bench_ssd_config, "OLTP", AgingState(0, 0), kwargs)
        for name, kwargs in VARIANTS.items()
    }
    aged = {
        name: _run(bench_ssd_config, "Proxy", AgingState(2000, 12.0), kwargs)
        for name, kwargs in VARIANTS.items()
    }
    return fresh, aged


def _render(fresh, aged):
    base_fresh = fresh["pageFTL (none)"].iops
    base_aged = aged["pageFTL (none)"].iops
    rows = [
        [
            name,
            round(fresh[name].iops / base_fresh, 2),
            round(fresh[name].counters.mean_t_prog_us),
            round(aged[name].iops / base_aged, 2),
            round(aged[name].counters.mean_num_retry, 2),
        ]
        for name in VARIANTS
    ]
    return "OPM mechanism ablation:\n" + format_table(
        [
            "variant",
            "OLTP fresh (norm IOPS)",
            "tPROG us",
            "Proxy 2K+1yr (norm IOPS)",
            "retries/read",
        ],
        rows,
    )


def test_ablation_opm_mechanisms(benchmark, ablation):
    fresh, aged = benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    emit("ablation_opm", _render(fresh, aged))

    base = fresh["pageFTL (none)"].iops
    skip_gain = fresh["vfy-skip only"].iops / base
    window_gain = fresh["window only"].iops / base
    both_gain = fresh["program both"].iops / base
    # each program-side mechanism contributes on the write-heavy workload
    assert skip_gain > 1.02
    assert window_gain > 1.02
    # combined beats either alone
    assert both_gain > max(skip_gain, window_gain)

    base_aged = aged["pageFTL (none)"].iops
    # without the ORT, aged read-heavy gains are modest ...
    no_ort = aged["program both"].iops / base_aged
    full = aged["full cubeFTL"].iops / base_aged
    # ... the ORT provides the bulk of the end-of-life improvement
    assert full > no_ort * 1.15
    assert aged["full cubeFTL"].counters.mean_num_retry < (
        aged["program both"].counters.mean_num_retry * 0.75
    )
    # the oracle bounds the program-side mechanisms from above: it beats
    # "program both" (no leader overhead) but not by much -- monitoring
    # leaders costs only 1-in-4 default-latency programs
    oracle_gain = fresh["oracleFTL (bound)"].iops / base
    assert oracle_gain >= both_gain - 0.02
    assert oracle_gain <= both_gain * 1.35
