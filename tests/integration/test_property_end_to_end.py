"""Property-based end-to-end test: arbitrary traces, invariant state."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.base import IORequest, Trace

LOGICAL_LIMIT = 512  # keep traces inside a small prefix of the space


@st.composite
def small_traces(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    requests = []
    for _ in range(n):
        op = draw(st.sampled_from(["R", "W"]))
        lpn = draw(st.integers(min_value=0, max_value=LOGICAL_LIMIT - 8))
        pages = draw(st.integers(min_value=1, max_value=8))
        requests.append(IORequest(op, lpn, pages))
    return requests


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(requests=small_traces(), ftl=st.sampled_from(["page", "cube"]))
def test_any_trace_completes_with_consistent_state(requests, ftl):
    """For any request sequence and FTL: every request completes, the
    mapper's invariants hold, and written pages read back as themselves."""
    config = SSDConfig.small(store_tags=True, env_shift_prob=0.0)
    sim = SSDSimulation(config, ftl=ftl)
    trace = Trace("prop", config.logical_pages, requests)
    stats = sim.run(trace, queue_depth=4)
    assert stats.completed_requests == len(requests)
    mapper = sim.ftl.mapper
    mapper.check_invariants()
    written = set()
    for request in requests:
        if request.is_write:
            written.update(range(request.lpn, request.end_lpn))
    for lpn in written:
        ppn = mapper.lookup(lpn)
        assert ppn != -1, f"written LPN {lpn} lost"
        chip_id, address = config.geometry.ppn_to_address(ppn)
        result = sim.controller.chip(chip_id).read_page(
            address.block, address.layer, address.wl, address.page
        )
        assert result.data == lpn
