"""Shared FTL machinery: the host datapath, buffer flushing, and GC.

:class:`BaseFTL` implements everything the three evaluated FTLs have in
common -- page-level mapping, write buffering and WL-group flushing,
read coherence, greedy garbage collection -- and exposes policy hooks
that the variants override:

=====================  =====================================================
hook                   policy it controls
=====================  =====================================================
``install_block``      how a fresh active block's WLs will be ordered
``allocate_wl``        which WL serves the next flush (WAM vs. sequential)
``program_params``     operating parameters per WL (PS-aware or default)
``after_program``      post-program bookkeeping (leader recording, safety)
``read_params``        read offset hints (ORT vs. defaults)
``after_read``         read bookkeeping (ORT updates)
=====================  =====================================================

All latencies emerge from the device model and the FIFO resources; the
FTL itself adds no magic numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.wam import Allocation, SequentialCursor
from repro.faults.counters import RecoveryCounters
from repro.ftl.blockmgr import (
    DATA_KIND,
    BlockManager,
    BlockState,
    OutOfSpaceError,
)
from repro.ftl.mapping import UNMAPPED, PageMapper
from repro.nand.chip import ProgramResult, ReadResult
from repro.nand.errors import EraseFailError, ProgramFailError, WearOutError
from repro.nand.geometry import PageAddress
from repro.nand.ispp import ProgramParams
from repro.nand.read_retry import ReadParams
from repro.ssd.config import SSDConfig
from repro.ssd.write_buffer import BufferEntry, WriteBuffer
from repro.workloads.base import IORequest


@dataclass
class FTLCounters:
    """Operation counters exposed for evaluation and tests."""

    host_read_pages: int = 0
    host_write_pages: int = 0
    buffer_read_hits: int = 0
    flash_reads: int = 0
    flash_programs: int = 0
    leader_programs: int = 0
    follower_programs: int = 0
    gc_reads: int = 0
    gc_programs: int = 0
    erases: int = 0
    retired_blocks: int = 0
    reprograms: int = 0
    read_retries: int = 0
    retried_reads: int = 0
    vfy_skipped: int = 0
    program_time_us: float = 0.0
    read_time_us: float = 0.0

    @property
    def mean_t_prog_us(self) -> float:
        total = self.flash_programs + self.gc_programs
        return self.program_time_us / total if total else 0.0

    @property
    def mean_num_retry(self) -> float:
        total = self.flash_reads + self.gc_reads
        return self.read_retries / total if total else 0.0

    def to_dict(self) -> dict:
        """Explicitly typed serialization (result schema v2)."""
        return {
            "host_read_pages": self.host_read_pages,
            "host_write_pages": self.host_write_pages,
            "buffer_read_hits": self.buffer_read_hits,
            "flash_reads": self.flash_reads,
            "flash_programs": self.flash_programs,
            "leader_programs": self.leader_programs,
            "follower_programs": self.follower_programs,
            "gc_reads": self.gc_reads,
            "gc_programs": self.gc_programs,
            "erases": self.erases,
            "retired_blocks": self.retired_blocks,
            "reprograms": self.reprograms,
            "read_retries": self.read_retries,
            "retried_reads": self.retried_reads,
            "vfy_skipped": self.vfy_skipped,
            "program_time_us": self.program_time_us,
            "read_time_us": self.read_time_us,
            "mean_t_prog_us": self.mean_t_prog_us,
            "mean_num_retry": self.mean_num_retry,
        }


class _ActiveRequest:
    """Runtime completion tracking for one host request."""

    __slots__ = ("spec", "issued_us", "remaining", "on_complete", "req_id")

    def __init__(
        self,
        spec: IORequest,
        issued_us: float,
        on_complete: Callable[["_ActiveRequest", float], None],
    ) -> None:
        self.spec = spec
        self.issued_us = issued_us
        self.remaining = spec.n_pages
        self.on_complete = on_complete
        #: tracer-assigned id; None when tracing is disabled
        self.req_id = None

    def page_done(self, now_us: float) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.on_complete(self, now_us)


class _GCJob:
    """State of one in-progress garbage collection on a chip."""

    __slots__ = ("victim", "pending", "staged")

    def __init__(self, victim: int, pending: List[Tuple[int, int]]) -> None:
        self.victim = victim
        #: (ppn, lpn) pairs still to migrate
        self.pending = pending
        #: (lpn, data, old_ppn) triples read out and awaiting program
        self.staged: List[Tuple[int, object, int]] = []


class BaseFTL:
    """Page-level FTL with pluggable PS-awareness."""

    name = "base"

    def __init__(self, config: SSDConfig, controller) -> None:
        self.config = config
        self.controller = controller
        geometry = config.geometry
        self.geometry = geometry
        self.mapper = PageMapper(geometry, config.logical_pages)
        self.blocks = BlockManager(geometry)
        self.buffer = WriteBuffer(config.buffer_capacity_pages)
        self.counters = FTLCounters()
        self.recovery = RecoveryCounters()
        # fault injector shared with the chips; None on fault-free runs,
        # which keeps every recovery path dormant (zero behavioral drift)
        self.faults = getattr(controller, "faults", None)
        # lifecycle tracer shared with the controller; None keeps every
        # hook down to a single pointer comparison (tracing records but
        # never schedules, so the event sequence is identical either way)
        self.tracer = getattr(controller, "tracer", None)
        # runtime invariant checker shared with the controller; None
        # keeps every hook down to a single pointer comparison (checking
        # records and verifies but never schedules events, so the event
        # sequence is identical either way)
        self.checker = getattr(controller, "checker", None)
        self._scrubbed_lpns: set = set()
        self._pending_writes: Deque[Tuple[_ActiveRequest, int]] = deque()
        self._inflight_programs: Dict[int, int] = {
            chip: 0 for chip in range(geometry.n_chips)
        }
        self._gc_jobs: Dict[int, Optional[_GCJob]] = {
            chip: None for chip in range(geometry.n_chips)
        }
        # GC migrations get their own active block per chip (hot/cold
        # separation: host-written and GC-relocated data do not mix)
        self._gc_cursors: Dict[int, Optional[SequentialCursor]] = {
            chip: None for chip in range(geometry.n_chips)
        }
        self._rr_chip = 0
        # SPOR support: every host write carries a monotonic FTL-global
        # sequence number, programmed into the page's OOB area so that
        # recovery can order an LPN's surviving copies.  Page data under
        # store_oob is the sequence number itself (unique per write),
        # which lets the integrity oracle distinguish stale copies.
        self._store_oob = config.store_oob
        self._write_seq = 0

    # ------------------------------------------------------------------
    # policy hooks (overridden by FTL variants)
    # ------------------------------------------------------------------

    def install_block(self, chip_id: int, block: int) -> None:
        """Register a fresh active block with the allocation policy."""
        raise NotImplementedError

    def active_cursor_space(self, chip_id: int) -> int:
        """Free WLs currently available through the allocation policy."""
        raise NotImplementedError

    def cursor_count(self, chip_id: int) -> int:
        """Number of active blocks currently registered."""
        raise NotImplementedError

    def allocate_wl(self, chip_id: int) -> Allocation:
        """Pick the WL for the next program on a chip."""
        raise NotImplementedError

    def program_params(
        self, chip_id: int, allocation: Allocation
    ) -> Tuple[ProgramParams, float]:
        """Operating parameters for a program: (params, squeeze_mv)."""
        return ProgramParams.default(), 0.0

    def after_program(
        self,
        chip_id: int,
        allocation: Allocation,
        result: ProgramResult,
        squeeze_mv: float,
    ) -> bool:
        """Post-program bookkeeping.  Return False to demand a
        reprogram of the same data on another WL (Section 4.1.4)."""
        return True

    def read_params(self, chip_id: int, block: int, layer: int) -> ReadParams:
        """Offset hint for a read, fetched at die-service time."""
        return ReadParams()

    def after_read(
        self, chip_id: int, block: int, layer: int, result: ReadResult
    ) -> None:
        """Read bookkeeping (ORT updates for the PS-aware FTL)."""

    def on_block_erased(self, chip_id: int, block: int) -> None:
        """Invalidate any per-block monitored state."""

    def discard_block(self, chip_id: int, block: int) -> None:
        """Remove any allocation cursor referencing ``block``.

        Called when a block leaves service early (program-status
        failure): its remaining free WLs must never be allocated.
        Variants extend this for their own cursor structures.
        """
        cursor = self._gc_cursors[chip_id]
        if cursor is not None and cursor.block == block:
            self._gc_cursors[chip_id] = None

    def on_uncorrectable(self, chip_id: int, block: int, layer: int) -> bool:
        """Read-recovery hook: drop any cached read parameters of the
        h-layer before the conservative re-read.  Returns True when a
        stale entry existed (counted as an ORT invalidation)."""
        return False

    def after_prefill(self, n_pages: int) -> None:
        """Post-prefill hook: the untimed fill bound ``n_pages`` LPNs
        directly through :attr:`mapper`.  Demand-paged variants override
        this to persist the matching translation metadata (also untimed)
        so their coverage invariant holds from the first timed request."""

    # ------------------------------------------------------------------
    # introspection for the invariant checker
    # ------------------------------------------------------------------

    def mappers(self) -> Dict[str, PageMapper]:
        """Every mapper whose bijection the deep audit must verify."""
        return {"l2p": self.mapper}

    def block_valid_count(self, chip_id: int, block: int) -> int:
        """Valid pages a block holds *in the mapper accounting its
        kind* -- the number that must be zero before the block may leave
        service.  Demand-paged variants dispatch on the block kind."""
        return self.mapper.valid_count(chip_id, block)

    def audit_variant(self) -> Optional[dict]:
        """Variant-specific deep-audit hook: return ``None`` when every
        variant invariant holds, else a finding dict shaped like
        :meth:`~repro.ftl.mapping.PageMapper.audit` (``message`` plus
        optional ``lpn``/``ppn``/``chip``/``block`` context)."""
        return None

    # ------------------------------------------------------------------
    # host interface
    # ------------------------------------------------------------------

    def submit(
        self,
        request: IORequest,
        on_complete: Callable[[_ActiveRequest, float], None],
    ) -> None:
        """Accept one host request; ``on_complete(active, time)`` fires
        when all its pages are done."""
        active = _ActiveRequest(request, self.controller.now, on_complete)
        tracer = self.tracer
        if tracer is not None:
            active.req_id = tracer.begin_request()

            def traced_complete(done: _ActiveRequest, now_us: float) -> None:
                tracer.end_request(
                    done.req_id,
                    done.spec.is_read,
                    done.spec.lpn,
                    done.spec.n_pages,
                    done.issued_us,
                    now_us,
                    tenant=done.spec.tenant,
                )
                on_complete(done, now_us)

            active.on_complete = traced_complete
        checker = self.checker
        if checker is not None:
            inner_complete = active.on_complete

            def checked_complete(done: _ActiveRequest, now_us: float) -> None:
                inner_complete(done, now_us)
                checker.on_request_complete(done.spec, now_us)

            active.on_complete = checked_complete
        if request.is_read:
            self._start_read(active)
        else:
            self._start_write(active)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _start_write(self, active: _ActiveRequest) -> None:
        self.counters.host_write_pages += active.spec.n_pages
        self._pending_writes.append((active, 0))
        self._drain_pending_writes()

    def _drain_pending_writes(self) -> None:
        """Admit pending host-write pages into the buffer while slots
        last, then try to flush."""
        progressed = False
        tracer = self.tracer
        checker = self.checker
        while self._pending_writes:
            active, next_page = self._pending_writes[0]
            spec = active.spec
            while next_page < spec.n_pages:
                lpn = spec.lpn + next_page
                if not self.buffer.can_admit(lpn):
                    break
                if self._store_oob:
                    self._write_seq += 1
                    data = self._write_seq
                    self.buffer.admit(
                        lpn, data=data, waiter=active, seq=self._write_seq
                    )
                else:
                    data = lpn
                    self.buffer.admit(lpn, data=lpn, waiter=active)
                if checker is not None:
                    checker.on_host_write(lpn, data)
                if tracer is not None:
                    now = self.controller.now
                    tracer.span(
                        active.req_id, lpn, "buffer_wait", active.issued_us, now
                    )
                    tracer.note_admit(active.req_id, lpn, now)
                next_page += 1
                progressed = True
            if next_page >= spec.n_pages:
                self._pending_writes.popleft()
            else:
                self._pending_writes[0] = (active, next_page)
                break
        if progressed:
            self._maybe_flush()

    def _maybe_flush(self) -> None:
        """Dispatch WL-group programs to eligible chips, round-robin.

        Full WL groups dispatch eagerly; a partial tail group only goes
        out when nothing else is in flight and no admissions are pending
        (otherwise we wait for more pages to coalesce into the group,
        avoiding degenerate one-page WL programs)."""
        n_chips = self.geometry.n_chips
        group = self.geometry.block.pages_per_wl
        made_progress = True
        while made_progress and self.buffer.staged_pages > 0:
            made_progress = False
            if self.buffer.staged_pages < group and not self._allow_partial_flush():
                return
            for offset in range(n_chips):
                chip_id = (self._rr_chip + offset) % n_chips
                if self.buffer.staged_pages == 0:
                    break
                if self.buffer.staged_pages < group and not self._allow_partial_flush():
                    break
                if not self._chip_eligible(chip_id):
                    continue
                self._rr_chip = (chip_id + 1) % n_chips
                self._dispatch_group(chip_id)
                made_progress = True

    def _allow_partial_flush(self) -> bool:
        if self._pending_writes:
            return False
        total_inflight = sum(self._inflight_programs.values())
        return total_inflight == 0 and self.buffer.inflight_pages == 0

    def _chip_eligible(self, chip_id: int) -> bool:
        if self._inflight_programs[chip_id] >= self.config.max_inflight_programs:
            return False
        return self._can_allocate(chip_id, for_gc=False)

    def _can_allocate(self, chip_id: int, for_gc: bool) -> bool:
        """Whether a WL can be allocated without starving GC of blocks."""
        if for_gc:
            cursor = self._gc_cursors[chip_id]
            if cursor is not None and not cursor.exhausted:
                return True
            return self.blocks.free_count(chip_id) > 0
        if self.active_cursor_space(chip_id) > 0:
            return True
        return self.blocks.free_count(chip_id) > 1

    def _take_free_block(self, chip_id: int, kind: str = DATA_KIND) -> int:
        """Draw a free block, wear-aware when configured."""
        key = None
        if self.config.wear_aware_allocation:
            chip = self.controller.chip(chip_id)
            key = chip.block_pe
        return self.blocks.take_free(chip_id, key=key, kind=kind)

    def _ensure_active_blocks(self, chip_id: int) -> None:
        """Top up the chip's active blocks from the free pool."""
        while (
            self.cursor_count(chip_id) < self.config.active_blocks_per_chip
            and self.blocks.free_count(chip_id) > 1
        ):
            self.install_block(chip_id, self._take_free_block(chip_id))
        if self.cursor_count(chip_id) == 0:
            if self.blocks.free_count(chip_id) == 0:
                raise OutOfSpaceError(f"chip {chip_id}: no active block available")
            self.install_block(chip_id, self._take_free_block(chip_id))

    def _dispatch_group(self, chip_id: int) -> None:
        entries = self.buffer.pop_group(self.geometry.block.pages_per_wl)
        if not entries:
            return
        self._program_entries(chip_id, entries, is_gc=False)

    def _gc_allocate(self, chip_id: int) -> Allocation:
        """Allocate a WL from the chip's dedicated GC block."""
        cursor = self._gc_cursors[chip_id]
        if cursor is None or cursor.exhausted:
            block = self._take_free_block(chip_id)
            cursor = SequentialCursor(block, self.geometry.block)
            self._gc_cursors[chip_id] = cursor
        return cursor.take()

    def _program_entries(
        self,
        chip_id: int,
        entries: List[BufferEntry],
        is_gc: bool,
        gc_payload: Optional[List[Tuple[int, object, int]]] = None,
    ) -> None:
        """Program one WL worth of pages (host flush or GC migration)."""
        if is_gc:
            allocation = self._gc_allocate(chip_id)
        else:
            self._ensure_active_blocks(chip_id)
            allocation = self.allocate_wl(chip_id)
        pages_per_wl = self.geometry.block.pages_per_wl
        oob: Optional[List[Optional[Tuple[int, int]]]] = None
        if is_gc:
            if self._store_oob:
                # relocations keep the read-back content and carry the
                # original write's sequence number forward: GC moves
                # data, it never reorders writes
                data = [tag for _lpn, tag, _old in gc_payload]
                oob = [
                    (lpn, self._oob_seq_of(old_ppn))
                    for lpn, _tag, old_ppn in gc_payload
                ]
            else:
                data = [lpn for lpn, _tag, _old in gc_payload]
        else:
            if self._store_oob:
                data = [entry.data for entry in entries]
                oob = [(entry.lpn, entry.seq) for entry in entries]
            else:
                data = [entry.lpn for entry in entries]
        data += [None] * (pages_per_wl - len(data))
        if oob is not None:
            oob += [None] * (pages_per_wl - len(oob))
        self._inflight_programs[chip_id] += 1

        tracer = self.tracer
        trace_ctx = None
        chip_submit = None
        if tracer is not None:
            now = self.controller.now
            if not is_gc:
                # close each page's staging interval; a re-dispatch after
                # a failed/unsafe attempt has no open interval (its next
                # stage starts right where the failed attempt ended)
                trace_ctx = [
                    (waiter.req_id, entry.lpn)
                    for entry in entries
                    for waiter in entry.waiters
                ]
                for req, lpn in trace_ctx:
                    admitted = tracer.pop_admit(req, lpn)
                    if admitted is not None:
                        tracer.span(
                            req, lpn, "buffer_staged", admitted, now, chip=chip_id
                        )
            # service-start bookkeeping shared by the closures below
            chip_submit = {"t": now}

        def job():
            # parameters bind when the die starts the program (the
            # Set-Features immediately preceding the program command), so
            # a follower queued behind its layer's leader sees the
            # leader's freshly monitored values
            params, squeeze_mv = self.program_params(chip_id, allocation)
            try:
                result = self.controller.chip(chip_id).program_wl(
                    allocation.block,
                    allocation.address.layer,
                    allocation.address.wl,
                    params=params,
                    data=data,
                    oob=oob,
                )
            except ProgramFailError as fail:
                # the failed attempt still occupied the die
                return fail.t_us, (None, params, squeeze_mv, fail.t_us)
            return result.t_prog_us, (result, params, squeeze_mv, result.t_prog_us)

        def on_done(payload) -> None:
            result, params, squeeze_mv, t_us = payload
            if tracer is not None:
                end = self.controller.now
                # clamp: float roundoff in end - t_us must not move the
                # service start before the recorded submit time (it would
                # produce negative-duration queue spans)
                start = max(end - t_us, chip_submit["t"])
                if is_gc:
                    tracer.span(
                        None, None, "gc_program", start, end, chip=chip_id,
                        fail=result is None,
                    )
                else:
                    info = {"fail": True} if result is None else {
                        "vfy_skipped": result.ispp.vfy_skipped,
                        "loops": result.ispp.executed_loops,
                        "leader": allocation.is_leader,
                    }
                    for req, lpn in trace_ctx:
                        tracer.span(
                            req, lpn, "chip_queue", chip_submit["t"], start,
                            chip=chip_id,
                        )
                        tracer.span(
                            req, lpn, "nand_program", start, end, chip=chip_id,
                            **info,
                        )
                        # exemplar side channel only: never emits a span
                        tracer.annotate(
                            req, lpn, layer=allocation.address.layer
                        )
            if result is None:
                self._on_program_fail(
                    chip_id, allocation, entries, is_gc=is_gc,
                    gc_payload=gc_payload,
                )
                return
            self._on_program_complete(
                chip_id, allocation, params, squeeze_mv, entries, result,
                is_gc=is_gc, gc_payload=gc_payload,
            )

        # host flushes move data over the channel first; GC migrations
        # stay on-chip (copyback style)
        if is_gc:
            self.controller.chip_resource(chip_id).submit(job, on_done)
        else:
            n_bytes = len(entries) * self.geometry.block.page_size_bytes
            transfer = self.config.timing.transfer_us(n_bytes)
            bus = self.controller.bus_resource(chip_id)

            def after_bus(_ignored) -> None:
                if tracer is not None:
                    end = self.controller.now
                    mid = max(end - transfer, chip_submit["t"])
                    for req, lpn in trace_ctx:
                        tracer.span(
                            req, lpn, "bus_queue", chip_submit["t"], mid,
                            chip=chip_id,
                        )
                        tracer.span(req, lpn, "bus_xfer", mid, end, chip=chip_id)
                    chip_submit["t"] = end
                self.controller.chip_resource(chip_id).submit(job, on_done)

            bus.submit(lambda: (transfer, None), after_bus)

    def _on_program_complete(
        self,
        chip_id: int,
        allocation: Allocation,
        params: ProgramParams,
        squeeze_mv: float,
        entries: List[BufferEntry],
        result: ProgramResult,
        is_gc: bool,
        gc_payload: Optional[List[Tuple[int, object, int]]],
    ) -> None:
        self._inflight_programs[chip_id] -= 1
        self.counters.program_time_us += result.t_prog_us
        self.counters.vfy_skipped += result.ispp.vfy_skipped
        if is_gc:
            self.counters.gc_programs += 1
        else:
            self.counters.flash_programs += 1
        fast_params = squeeze_mv > 0 or any(
            start > 1 for start in params.verify_plan.start_loops
        )
        if fast_params:
            self.counters.follower_programs += 1
        else:
            self.counters.leader_programs += 1

        if self.blocks.is_failing(chip_id, allocation.block):
            # a sibling in-flight program on this block reported FAIL
            # while ours was executing; the block is leaving service, so
            # its pages must not be mapped -- rewrite on a fresh WL
            if is_gc:
                self._program_entries(chip_id, [], is_gc=True, gc_payload=gc_payload)
            else:
                self._program_entries(chip_id, entries, is_gc=False)
            return

        ok = self.after_program(chip_id, allocation, result, squeeze_mv)
        if not ok:
            # Section 4.1.4: improperly programmed -- re-program the same
            # data on the next WL with default (monitoring) parameters
            self.counters.reprograms += 1
            if is_gc:
                self._program_entries(chip_id, [], is_gc=True, gc_payload=gc_payload)
            else:
                self._program_entries(chip_id, entries, is_gc=False)
            return

        if is_gc:
            self._bind_gc_pages(chip_id, allocation, gc_payload)
            self._gc_continue(chip_id)
        else:
            self._bind_host_pages(chip_id, allocation, entries)
            self.buffer.complete(entries)
            now = self.controller.now
            for entry in entries:
                for waiter in entry.waiters:
                    waiter.page_done(now)
        self._maybe_mark_full(chip_id, allocation.block)
        self._maybe_gc(chip_id)
        self._drain_pending_writes()
        self._maybe_flush()

    def _on_program_fail(
        self,
        chip_id: int,
        allocation: Allocation,
        entries: List[BufferEntry],
        is_gc: bool,
        gc_payload: Optional[List[Tuple[int, object, int]]],
    ) -> None:
        """A program reported a FAIL status: the in-flight data never
        landed.  Pull the block out of service (its remaining WLs are
        suspect) and re-dispatch the same data to a fresh WL; the block's
        already-written pages are migrated by prioritized GC and the
        block is then retired."""
        self._inflight_programs[chip_id] -= 1
        self.recovery.program_fails += 1
        self.note_program_fail(chip_id, allocation.block)
        if is_gc:
            self._program_entries(chip_id, [], is_gc=True, gc_payload=gc_payload)
        else:
            self._program_entries(chip_id, entries, is_gc=False)
        self._maybe_gc(chip_id)

    def note_program_fail(self, chip_id: int, block: int) -> None:
        """Route a failed block toward retirement: drop its allocation
        cursors, freeze it FULL, and flag it for prioritized GC."""
        self.discard_block(chip_id, block)
        state = self.blocks.state(chip_id, block)
        if state is BlockState.ACTIVE:
            self.blocks.mark_full(chip_id, block)
            state = BlockState.FULL
        if state is BlockState.FULL:
            self.blocks.mark_failing(chip_id, block)

    def _bind_host_pages(
        self, chip_id: int, allocation: Allocation, entries: List[BufferEntry]
    ) -> None:
        base_ppn = self.geometry.wl_ppn(
            chip_id,
            allocation.block,
            allocation.address.layer,
            allocation.address.wl,
        )
        for page_index, entry in enumerate(entries):
            if entry.version != self.buffer.latest_version(entry.lpn):
                continue  # a newer write of this LPN exists or is staged
            self.mapper.bind(entry.lpn, base_ppn + page_index)

    def _bind_gc_pages(
        self,
        chip_id: int,
        allocation: Allocation,
        gc_payload: List[Tuple[int, object, int]],
    ) -> None:
        base_ppn = self.geometry.wl_ppn(
            chip_id,
            allocation.block,
            allocation.address.layer,
            allocation.address.wl,
        )
        for page_index, (lpn, _tag, old_ppn) in enumerate(gc_payload):
            if self.mapper.lookup(lpn) != old_ppn:
                continue  # host rewrote the page during migration
            if self.buffer.contains(lpn):
                # a fresher copy is staged/in flight; it will bind when it
                # lands -- drop the victim's stale mapping now so the
                # erase finds the block clean
                self.mapper.invalidate_lpn(lpn)
                continue
            self.mapper.bind(lpn, base_ppn + page_index)

    def _maybe_mark_full(self, chip_id: int, block: int) -> None:
        """A block leaves the active set once its cursor is exhausted; the
        cursor structures drop exhausted blocks themselves, so here we
        only flip the lifecycle state when all WLs are programmed."""
        if self.blocks.state(chip_id, block) is not BlockState.ACTIVE:
            return
        chip = self.controller.chip(chip_id)
        if chip.programmed_wl_count(block) == self.geometry.block.wls_per_block:
            self.blocks.mark_full(chip_id, block)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def _start_read(self, active: _ActiveRequest) -> None:
        spec = active.spec
        self.counters.host_read_pages += spec.n_pages
        for offset in range(spec.n_pages):
            self._read_lpn(spec.lpn + offset, active)

    def _read_lpn(self, lpn: int, active: _ActiveRequest) -> None:
        if self.buffer.contains(lpn):
            self._buffer_read(lpn, active)
            return
        if self.mapper.lookup(lpn) == UNMAPPED:
            self._unmapped_read(lpn, active)
            return
        self._translate_read(lpn, active)

    def _controller_read(self, lpn: int, active: _ActiveRequest) -> None:
        """Serve a read from controller RAM (buffer hit / unmapped)."""
        tracer = self.tracer

        def buffer_done() -> None:
            now = self.controller.now
            if tracer is not None:
                tracer.span(
                    active.req_id, lpn, "buffer_read",
                    now - self.config.buffer_read_us, now,
                )
            active.page_done(now)

        self.controller.engine.schedule(self.config.buffer_read_us, buffer_done)

    def _buffer_read(self, lpn: int, active: _ActiveRequest) -> None:
        self.counters.buffer_read_hits += 1
        if self.checker is not None:
            self.checker.on_buffer_read(lpn, self.buffer.latest_data(lpn))
        self._controller_read(lpn, active)

    def _unmapped_read(self, lpn: int, active: _ActiveRequest) -> None:
        # never-written page: served from the mapping table directly
        if self.checker is not None:
            self.checker.on_unmapped_read(lpn)
        self._controller_read(lpn, active)

    def _translate_read(self, lpn: int, active: _ActiveRequest) -> None:
        """Resolve the LPN's physical location, then issue the flash
        read.  The RAM-resident FTLs resolve for free and immediately;
        demand-paged variants override this to consult their cached
        mapping table first (a miss costs a translation-page flash read
        before :meth:`_mapped_read` proceeds)."""
        self._mapped_read(lpn, active)

    def _mapped_read(self, lpn: int, active: _ActiveRequest) -> None:
        tracer = self.tracer
        checker = self.checker
        # translation may have taken simulated time: re-resolve against
        # anything that landed meanwhile (a newer buffered copy, a moved
        # or dropped mapping).  On the synchronous path these re-checks
        # see exactly the state _read_lpn already saw.
        if self.buffer.contains(lpn):
            self._buffer_read(lpn, active)
            return
        ppn = self.mapper.lookup(lpn)
        if ppn == UNMAPPED:
            self._unmapped_read(lpn, active)
            return
        chip_id, address = self.geometry.ppn_to_address(ppn)
        # the expected content is pinned at issue time: a concurrent
        # overwrite may legally land after the flash read was issued
        expected = checker.pin_read(lpn) if checker is not None else None

        def on_data(result: ReadResult, lpn: int = lpn, ppn: int = ppn) -> None:
            if checker is not None:
                checker.on_flash_read(lpn, ppn, expected, result)
            if self.faults is not None:
                self._maybe_scrub(lpn, ppn, result)
            active.page_done(self.controller.now)

        trace_ctx = (active.req_id, lpn) if tracer is not None else None
        if tracer is not None:
            # exemplar side channel only: never emits a span
            tracer.annotate(active.req_id, lpn, layer=address.layer)
        self._flash_read(
            chip_id, address, is_gc=False, on_data=on_data, trace_ctx=trace_ctx
        )

    def _maybe_scrub(self, lpn: int, ppn: int, result: ReadResult) -> None:
        """Background scrub: a read that decoded with little ECC margin
        left gets its page migrated (re-admitted through the write
        buffer) before it degrades into an uncorrectable read.

        Each LPN is scrubbed at most once per run: the device model ties
        retention to the baseline aging state, so a refreshed copy can
        land in a region with the same marginal BER and re-trigger."""
        if not result.correctable:
            return
        if self.controller.ecc.margin(result.ber) >= self.config.scrub_margin_threshold:
            return
        if lpn in self._scrubbed_lpns:
            return
        if self.mapper.lookup(lpn) != ppn:
            return  # the host rewrote the page while the read was in flight
        if self.buffer.contains(lpn) or not self.buffer.can_admit(lpn):
            return
        self._scrubbed_lpns.add(lpn)
        if self._store_oob:
            # the refreshed copy keeps the read-back content but gets a
            # fresh sequence number: after SPOR, recovery must prefer it
            # over the marginal original
            self._write_seq += 1
            data = result.data
            self.buffer.admit(lpn, data=data, waiter=None, seq=self._write_seq)
        else:
            data = lpn
            self.buffer.admit(lpn, data=lpn, waiter=None)
        if self.checker is not None:
            self.checker.on_host_write(lpn, data)
        self.recovery.scrubs += 1
        self._maybe_flush()

    def _flash_read(
        self,
        chip_id: int,
        address: PageAddress,
        is_gc: bool,
        on_data: Callable[[ReadResult], None],
        trace_ctx: Optional[Tuple[Optional[int], int]] = None,
    ) -> None:
        """One page read: die sense (with retries) then, for host reads,
        the channel transfer out."""
        tracer = self.tracer
        t_submit = self.controller.now if tracer is not None else 0.0

        def job():
            params = self.read_params(chip_id, address.block, address.layer)
            result = self.controller.chip(chip_id).read_page(
                address.block, address.layer, address.wl, address.page, params
            )
            return result.t_read_us, result

        def on_done(result: ReadResult) -> None:
            if tracer is not None:
                end = self.controller.now
                start = max(end - result.t_read_us, t_submit)
                if trace_ctx is not None:
                    req, lpn = trace_ctx
                    tracer.span(req, lpn, "chip_queue", t_submit, start, chip=chip_id)
                    tracer.span(
                        req, lpn, "nand_read", start, end - result.t_retry_us,
                        chip=chip_id, retries=result.num_retry,
                    )
                    if result.t_retry_us:
                        tracer.span(
                            req, lpn, "read_retry", end - result.t_retry_us, end,
                            chip=chip_id, retries=result.num_retry,
                        )
                elif is_gc:
                    tracer.span(None, None, "gc_read", start, end, chip=chip_id)
            self._account_read(result, is_gc)
            if self.faults is not None and not result.correctable:
                self._recover_read(
                    chip_id, address, is_gc, on_data,
                    self.config.read_recovery_attempts,
                    trace_ctx=trace_ctx,
                )
                return
            self.after_read(chip_id, address.block, address.layer, result)
            self._deliver_read(chip_id, result, is_gc, on_data, trace_ctx=trace_ctx)

        self.controller.chip_resource(chip_id).submit(job, on_done)

    def _account_read(self, result: ReadResult, is_gc: bool) -> None:
        self.counters.read_time_us += result.t_read_us
        if is_gc:
            self.counters.gc_reads += 1
        else:
            self.counters.flash_reads += 1
        if result.num_retry:
            self.counters.read_retries += result.num_retry
            self.counters.retried_reads += 1

    def _deliver_read(
        self,
        chip_id: int,
        result: ReadResult,
        is_gc: bool,
        on_data: Callable[[ReadResult], None],
        trace_ctx: Optional[Tuple[Optional[int], int]] = None,
    ) -> None:
        if is_gc:
            on_data(result)
            return
        transfer = self.config.timing.transfer_us(self.geometry.block.page_size_bytes)
        tracer = self.tracer
        if tracer is not None and trace_ctx is not None:
            t_submit = self.controller.now

            def after_bus(_ignored) -> None:
                end = self.controller.now
                mid = max(end - transfer, t_submit)
                req, lpn = trace_ctx
                tracer.span(req, lpn, "bus_queue", t_submit, mid, chip=chip_id)
                tracer.span(req, lpn, "bus_xfer", mid, end, chip=chip_id)
                on_data(result)

            self.controller.bus_resource(chip_id).submit(
                lambda: (transfer, None), after_bus
            )
        else:
            self.controller.bus_resource(chip_id).submit(
                lambda: (transfer, None), lambda _ignored: on_data(result)
            )

    def _recover_read(
        self,
        chip_id: int,
        address: PageAddress,
        is_gc: bool,
        on_data: Callable[[ReadResult], None],
        attempts_left: int,
        trace_ctx: Optional[Tuple[Optional[int], int]] = None,
    ) -> None:
        """Bounded re-read with conservative nominal parameters after an
        uncorrectable read.

        Any cached read hint for the h-layer is dropped first (the hint
        may be why the retry sweep never reached the optimum -- graceful
        ORT degradation), then the page is re-sensed starting from the
        paper-default references with the full retry search available."""
        if self.on_uncorrectable(chip_id, address.block, address.layer):
            self.recovery.ort_invalidations += 1
        tracer = self.tracer
        t_submit = self.controller.now if tracer is not None else 0.0

        def job():
            result = self.controller.chip(chip_id).read_page(
                address.block,
                address.layer,
                address.wl,
                address.page,
                ReadParams(),
            )
            return result.t_read_us, result

        def on_done(result: ReadResult) -> None:
            if tracer is not None:
                end = self.controller.now
                start = max(end - result.t_read_us, t_submit)
                if trace_ctx is not None:
                    req, lpn = trace_ctx
                    tracer.span(req, lpn, "chip_queue", t_submit, start, chip=chip_id)
                    tracer.span(
                        req, lpn, "recovery_read", start, end, chip=chip_id,
                        retries=result.num_retry, correctable=result.correctable,
                    )
                elif is_gc:
                    tracer.span(None, None, "gc_read", start, end, chip=chip_id)
            self._account_read(result, is_gc)
            if result.correctable:
                self.recovery.recovered_reads += 1
                self.after_read(chip_id, address.block, address.layer, result)
                self._deliver_read(chip_id, result, is_gc, on_data, trace_ctx=trace_ctx)
            elif attempts_left > 1:
                self._recover_read(
                    chip_id, address, is_gc, on_data, attempts_left - 1,
                    trace_ctx=trace_ctx,
                )
            else:
                # data loss in a real device; the simulation completes the
                # request and records the escape
                self.recovery.uncorrectable_after_recovery += 1
                self._deliver_read(chip_id, result, is_gc, on_data, trace_ctx=trace_ctx)

        self.controller.chip_resource(chip_id).submit(job, on_done)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def _maybe_gc(self, chip_id: int) -> None:
        if self._gc_jobs[chip_id] is not None:
            return
        free = self.blocks.free_count(chip_id)
        if (
            free >= self.config.gc_trigger_blocks
            and not self.blocks.failing_of_kind(chip_id, DATA_KIND)
        ):
            return
        # data GC only: translation blocks are accounted in a different
        # mapper, so a demand-paged FTL reclaims them through its own
        # translation-GC state machine
        full = self.blocks.full_blocks(chip_id, kind=DATA_KIND)
        if not full:
            return
        victim = self.blocks.select_victim(chip_id, self.mapper, kind=DATA_KIND)
        if not self.blocks.is_failing(chip_id, victim):
            pages_per_block = self.geometry.block.pages_per_block
            invalid = pages_per_block - self.mapper.valid_count(chip_id, victim)
            min_invalid = int(pages_per_block * self.config.gc_min_invalid_fraction)
            # migrating a nearly-full-valid block reclaims almost nothing
            # while consuming a free block for the migrated copies; wait for
            # the host to invalidate more pages first -- unless the pool is
            # critical (failing victims skip this: they must leave service)
            if invalid < max(1, min_invalid) and free > 1:
                return
            # the migration's final partial WL is padded with dead pages;
            # unless the victim's invalid count exceeds that padding the
            # move reclaims nothing net, and with no host writes arriving
            # to invalidate pages (e.g. at a drain barrier) the
            # erase -> _maybe_gc chain would ping-pong forever
            valid = pages_per_block - invalid
            waste = (-valid) % self.geometry.block.pages_per_wl
            if invalid <= waste:
                return
        job = _GCJob(victim, self.mapper.valid_pages_of_block(chip_id, victim))
        self._gc_jobs[chip_id] = job
        self._gc_continue(chip_id)

    def _gc_continue(self, chip_id: int) -> None:
        """Advance the chip's GC state machine by one batch."""
        job = self._gc_jobs[chip_id]
        if job is None:
            return
        if job.staged:
            payload, job.staged = job.staged, []
            self._program_entries(chip_id, [], is_gc=True, gc_payload=payload)
            return
        if not job.pending:
            self._gc_erase(chip_id, job)
            return
        batch_size = min(self.geometry.block.pages_per_wl, len(job.pending))
        batch, job.pending = job.pending[:batch_size], job.pending[batch_size:]
        outstanding = {"count": len(batch)}

        def make_on_data(ppn: int, lpn: int):
            def on_data(result: ReadResult) -> None:
                job.staged.append((lpn, result.data, ppn))
                outstanding["count"] -= 1
                if outstanding["count"] == 0:
                    self._gc_continue(chip_id)

            return on_data

        for ppn, lpn in batch:
            _chip, address = self.geometry.ppn_to_address(ppn)
            self._flash_read(chip_id, address, is_gc=True, on_data=make_on_data(ppn, lpn))

    def _gc_erase(self, chip_id: int, job: _GCJob) -> None:
        victim = job.victim
        failing = self.blocks.is_failing(chip_id, victim)

        def erase_job():
            if failing:
                # a program already failed on this block: skip the erase
                # attempt and send it straight to the grown-bad table
                return 0.0, ("program_fail", 0.0)
            try:
                t_erase = self.controller.chip(chip_id).erase_block(victim)
                return t_erase, ("erased", t_erase)
            except WearOutError:
                # worn out: the block's data is already migrated; retire
                # it instead of returning it to the free pool
                return 0.0, ("wear", 0.0)
            except EraseFailError as fail:
                # erase reported a FAIL status: grown bad block
                return fail.t_us, ("erase_fail", fail.t_us)

        def on_done(payload: Tuple[str, float]) -> None:
            outcome, t_us = payload
            if self.tracer is not None and t_us:
                end = self.controller.now
                self.tracer.span(
                    None, None, "erase", end - t_us, end, chip=chip_id,
                    block=victim, outcome=outcome,
                )
            self.mapper.clear_block(chip_id, victim)
            if outcome == "erased":
                self.counters.erases += 1
                self.blocks.mark_free(chip_id, victim)
            else:
                if outcome == "erase_fail":
                    self.recovery.erase_fails += 1
                if outcome != "wear":
                    # wear retirement is normal endurance, not recovery
                    self.recovery.blocks_retired += 1
                self.counters.retired_blocks += 1
                self.blocks.retire(chip_id, victim, reason=outcome)
            self.on_block_erased(chip_id, victim)
            self._gc_jobs[chip_id] = None
            self._maybe_gc(chip_id)
            self._drain_pending_writes()
            self._maybe_flush()

        self.controller.chip_resource(chip_id).submit(erase_job, on_done)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def _oob_seq_of(self, ppn: int) -> int:
        """Sequence number stamped in a physical page's OOB record (0
        when the page carries none, e.g. programmed before OOB support
        was enabled)."""
        chip_id, address = self.geometry.ppn_to_address(ppn)
        record = self.controller.chip(chip_id).peek_oob(
            address.block, address.layer, address.wl, address.page
        )
        return record[1] if record is not None else 0

    def variant_state_dict(self) -> dict:
        """Serializable policy-specific state (allocation cursors,
        monitored parameters); overridden by the FTL variants."""
        return {}

    def load_variant_state(self, state: dict) -> None:
        """Restore :meth:`variant_state_dict` output."""

    def state_dict(self) -> dict:
        """Serializable FTL state at a quiescent barrier.

        Requires that no request is mid-flight: no pending host-write
        admissions, no in-flight WL programs, no active GC job (the
        component ``state_dict`` calls below additionally assert the
        buffer and resource barriers).  The driver in
        :mod:`repro.persist` only checkpoints at event-queue drain, where
        all of this holds by construction.
        """
        if self._pending_writes:
            raise RuntimeError(
                f"FTL not quiescent: {len(self._pending_writes)} host "
                "writes awaiting buffer admission"
            )
        inflight = sum(self._inflight_programs.values())
        if inflight:
            raise RuntimeError(
                f"FTL not quiescent: {inflight} WL programs in flight"
            )
        active_gc = sorted(
            chip for chip, job in self._gc_jobs.items() if job is not None
        )
        if active_gc:
            raise RuntimeError(
                f"FTL not quiescent: GC active on chips {active_gc}"
            )
        return {
            "mapper": self.mapper.state_dict(),
            "blocks": self.blocks.state_dict(),
            "buffer": self.buffer.state_dict(),
            "counters": asdict(self.counters),
            "recovery": asdict(self.recovery),
            "scrubbed_lpns": sorted(self._scrubbed_lpns),
            "gc_cursors": {
                chip: (cursor.state_dict() if cursor is not None else None)
                for chip, cursor in self._gc_cursors.items()
            },
            "rr_chip": self._rr_chip,
            "write_seq": self._write_seq,
            "variant": self.variant_state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.mapper.load_state_dict(state["mapper"])
        self.blocks.load_state_dict(state["blocks"])
        self.buffer.load_state_dict(state["buffer"])
        self.counters = FTLCounters(**state["counters"])
        self.recovery = RecoveryCounters(**state["recovery"])
        self._scrubbed_lpns = set(state["scrubbed_lpns"])
        self._gc_cursors = {
            chip: (
                SequentialCursor.from_state(cursor_state, self.geometry.block)
                if cursor_state is not None
                else None
            )
            for chip, cursor_state in state["gc_cursors"].items()
        }
        self._rr_chip = state["rr_chip"]
        self._write_seq = state["write_seq"]
        self.load_variant_state(state["variant"])

    # ------------------------------------------------------------------
    # SPOR recovery
    # ------------------------------------------------------------------

    def _post_spor_reset(self) -> None:
        """Clear every volatile allocation structure after recovery (all
        blocks come back sealed FULL or FREE, so no cursor survives).
        Variants extend this for their own cursor structures."""
        for chip_id in self._gc_cursors:
            self._gc_cursors[chip_id] = None
        self._rr_chip = 0
        self._scrubbed_lpns = set()

    def spor_recover(self) -> dict:
        """Rebuild the volatile FTL state from chip-durable contents
        after a sudden power-off.

        Called on a freshly constructed FTL whose chips were restored to
        their at-the-cut state.  Controller RAM (mapping tables, block
        lifecycle, write buffer, monitored parameters) is lost; the only
        durable inputs are the per-page OOB records ``(lpn, seq)`` and
        the programmed/wear arrays of the chip model.

        Rebuild rules:

        - **L2P**: for every LPN the surviving copy with the highest
          sequence number wins; ties (GC duplicates of the same write,
          which hold identical content) break to the lowest PPN;
        - **blocks**: a block with any programmed WL is sealed FULL --
          conservatively, a half-written active block is never appended
          to after recovery -- and all others are FREE.  Failing/retired
          status is rediscovered operationally: a bad block's next erase
          fails again and re-retires it;
        - cursors, buffer, and monitored parameters restart empty, and
          the write sequence resumes above the highest recovered value.

        Returns a summary dict (``oob_records``, ``mapped_lpns``,
        ``full_blocks``, ``max_seq``).
        """
        if not self._store_oob:
            raise RuntimeError("SPOR recovery requires store_oob=True")
        if self.mapper.mapped_lpn_count():
            raise RuntimeError("spor_recover requires a freshly built FTL")
        geometry = self.geometry
        winners: Dict[int, Tuple[int, int]] = {}  # lpn -> (seq, ppn)
        records = 0
        max_seq = 0
        for chip_id in range(geometry.n_chips):
            chip = self.controller.chip(chip_id)
            for (block, wl_index, page), (lpn, seq) in chip.iter_oob():
                records += 1
                if seq > max_seq:
                    max_seq = seq
                address = geometry.block.wl_from_index(wl_index)
                ppn = geometry.ppn(
                    chip_id,
                    PageAddress(block, address.layer, address.wl, page),
                )
                best = winners.get(lpn)
                if best is None or (seq, -ppn) > (best[0], -best[1]):
                    winners[lpn] = (seq, ppn)
        for lpn in sorted(winners):
            self.mapper.bind(lpn, winners[lpn][1])
        free: Dict[int, List[int]] = {}
        states: Dict[int, List[str]] = {}
        full_blocks = 0
        for chip_id in range(geometry.n_chips):
            chip = self.controller.chip(chip_id)
            chip_states: List[str] = []
            chip_free: List[int] = []
            for block in range(geometry.blocks_per_chip):
                if chip.programmed_wl_count(block) > 0:
                    chip_states.append(BlockState.FULL.value)
                    full_blocks += 1
                else:
                    chip_states.append(BlockState.FREE.value)
                    chip_free.append(block)
            states[chip_id] = chip_states
            free[chip_id] = chip_free
        self.blocks.load_state_dict(
            {
                "free": free,
                "state": states,
                "failing": {chip: [] for chip in free},
                "retired_reasons": {chip: {} for chip in free},
            }
        )
        self._post_spor_reset()
        self._write_seq = max_seq
        return {
            "oob_records": records,
            "mapped_lpns": len(winners),
            "full_blocks": full_blocks,
            "max_seq": max_seq,
        }
