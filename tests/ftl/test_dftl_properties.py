"""Property-based tests for the demand-paged (DFTL) mapping FTL.

Four properties, driven by hypothesis with ``derandomize=True`` so CI
runs are seeded and deterministic:

- the CMT never exceeds its configured capacity, checked after every
  CMT mutation (an instance-level spy on the eviction hook);
- on a fault-free run every dirty CMT eviction produces exactly one
  translation-page program (the writeback ledger balances);
- the CMT is a *pure cache*: the same trace replayed under CMT
  capacities of 1 slot, 25% and 100% of the translation space yields a
  byte-identical final logical state under the strict checker (so no
  read ever returned different data);
- both mapping tables (host L2P and the GTD) pass ``audit()`` and the
  variant invariant after every fuzz-style run.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_simulation
from repro.check import InvariantChecker, parse_check_level
from repro.check.fuzz import random_trace
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation

CONFIG = SSDConfig.small(logical_fraction=0.4)
# the strict checker's data-integrity oracle reads content tags back
CHECKED_CONFIG = dataclasses.replace(CONFIG, store_tags=True)
MAPPINGS_PER_TPAGE = 64
N_TPAGES = -(-CONFIG.logical_pages // MAPPINGS_PER_TPAGE)


def _drive(seed, cmt_capacity, ops=200, prefill=0.4):
    """One checked closed-loop run; returns (sim, checker report)."""
    checker = InvariantChecker(parse_check_level("strict"))
    sim = SSDSimulation(
        CHECKED_CONFIG, ftl="dftl", checker=checker,
        cmt_capacity=cmt_capacity,
    )
    if prefill:
        sim.prefill(prefill)
    trace = random_trace(CONFIG.logical_pages, ops, seed)
    sim.run(trace, queue_depth=8)
    return sim, checker.finalize()


@settings(derandomize=True, max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    capacity=st.sampled_from([1, 2, 5, 16, 64]),
)
def test_cmt_never_exceeds_capacity(seed, capacity):
    checker = InvariantChecker(parse_check_level("strict"))
    sim = SSDSimulation(
        CHECKED_CONFIG, ftl="dftl", checker=checker, cmt_capacity=capacity
    )
    high_water = {"max": 0}
    original = sim.ftl._cmt_evict_overflow

    def spy():
        original()
        high_water["max"] = max(high_water["max"], len(sim.ftl._cmt))

    sim.ftl._cmt_evict_overflow = spy
    sim.prefill(0.4)
    trace = random_trace(CONFIG.logical_pages, 150, seed)
    sim.run(trace, queue_depth=8)
    checker.finalize()
    assert high_water["max"] <= capacity
    assert len(sim.ftl._cmt) <= capacity


@settings(derandomize=True, max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    capacity=st.sampled_from([1, 4, 16]),
)
def test_dirty_evictions_balance_translation_programs(seed, capacity):
    sim, report = _drive(seed, capacity)
    stats = sim.ftl.dftl_stats
    # fault-free: no recovery rewrites, so the only demand-path
    # translation programs are dirty-eviction writebacks, one each
    assert stats.trans_recovered_pages == 0
    assert stats.cmt_evictions_dirty == stats.trans_programs
    assert report["violations"] == 0


@settings(derandomize=True, max_examples=4, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_cmt_capacity_is_pure_cache(seed):
    """Metamorphic: CMT sizing is a performance knob, never a
    correctness knob.  1 slot, a quarter of the translation space, and
    a full-coverage CMT must agree byte-for-byte on the final logical
    state (and the strict oracle verified every read along the way)."""
    trace = random_trace(
        CONFIG.logical_pages, 200, seed, hot_fraction=0.1, hot_weight=0.7
    )
    digests = set()
    for capacity in (1, max(1, N_TPAGES // 4), N_TPAGES * MAPPINGS_PER_TPAGE):
        result = run_simulation(
            CONFIG, trace, ftl="dftl",
            cmt_capacity=capacity,
            queue_depth=8, prefill=0.4, seed=seed, check="strict",
        )
        assert result.check["violations"] == 0
        digests.add(result.check["state_digest"])
    assert len(digests) == 1, f"CMT capacity changed results: {digests}"


@settings(derandomize=True, max_examples=5, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    capacity=st.sampled_from([1, 3, 8, 64]),
)
def test_both_mappers_audit_clean_after_fuzz_run(seed, capacity):
    sim, report = _drive(seed, capacity, ops=150)
    assert report["violations"] == 0
    assert sim.ftl.mapper.audit() is None
    assert sim.ftl.tmapper.audit() is None
    assert sim.ftl.audit_variant() is None
