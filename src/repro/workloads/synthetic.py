"""Building-block trace generators: uniform, sequential, Zipf, mixtures."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.workloads.base import READ, WRITE, IORequest, Trace


class ZipfSampler:
    """Bounded Zipf(theta) sampler over ``n`` items with rank scrambling.

    Rank *k* (1-based) has probability proportional to ``1 / k**theta``;
    ranks are mapped through a pseudo-random permutation so hot pages are
    scattered across the address space (as YCSB does).
    """

    def __init__(self, n: int, theta: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.n = n
        self.theta = theta
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** theta
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._permutation = rng.permutation(n)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        ranks = np.searchsorted(self._cdf, rng.random(size), side="left")
        return self._permutation[ranks]


def uniform_random_trace(
    logical_pages: int,
    n_requests: int,
    read_fraction: float = 0.5,
    n_pages: int = 1,
    seed: int = 1,
    name: str = "uniform",
    region: Optional[Sequence[int]] = None,
) -> Trace:
    """Uniformly random single-size requests over a region of the space."""
    rng = np.random.default_rng(seed)
    lo, hi = region if region is not None else (0, logical_pages)
    span = hi - lo - n_pages
    if span < 1:
        raise ValueError("region too small for the request size")
    trace = Trace(name, logical_pages)
    ops = rng.random(n_requests) < read_fraction
    lpns = lo + rng.integers(0, span, n_requests)
    for is_read, lpn in zip(ops, lpns):
        trace.append(IORequest(READ if is_read else WRITE, int(lpn), n_pages))
    return trace


def sequential_trace(
    logical_pages: int,
    n_requests: int,
    op: str = WRITE,
    n_pages: int = 4,
    seed: int = 1,
    name: str = "sequential",
    start: int = 0,
) -> Trace:
    """Sequential stream wrapping around the logical space."""
    trace = Trace(name, logical_pages)
    lpn = start
    for _ in range(n_requests):
        if lpn + n_pages > logical_pages:
            lpn = 0
        trace.append(IORequest(op, lpn, n_pages))
        lpn += n_pages
    return trace


def zipf_trace(
    logical_pages: int,
    n_requests: int,
    read_fraction: float = 0.5,
    theta: float = 0.99,
    n_pages: int = 1,
    seed: int = 1,
    name: str = "zipf",
) -> Trace:
    """Zipf-skewed random requests (YCSB-style hot set)."""
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(max(1, logical_pages - n_pages), theta, rng)
    lpns = sampler.sample(rng, n_requests)
    ops = rng.random(n_requests) < read_fraction
    trace = Trace(name, logical_pages)
    for is_read, lpn in zip(ops, lpns):
        trace.append(IORequest(READ if is_read else WRITE, int(lpn), n_pages))
    return trace


def mixed_trace(traces: Sequence[Trace], weights: Sequence[float], seed: int = 1,
                name: str = "mixed") -> Trace:
    """Probabilistic interleaving of several traces (consumed in order)."""
    if len(traces) != len(weights):
        raise ValueError("traces and weights must align")
    if not traces:
        raise ValueError("need at least one trace")
    logical_pages = traces[0].logical_pages
    if any(t.logical_pages != logical_pages for t in traces):
        raise ValueError("traces must share a logical space")
    rng = np.random.default_rng(seed)
    probabilities = np.asarray(weights, dtype=float)
    probabilities /= probabilities.sum()
    cursors = [0] * len(traces)
    out = Trace(name, logical_pages)
    total = sum(len(t) for t in traces)
    for _ in range(total):
        live = [i for i, t in enumerate(traces) if cursors[i] < len(t)]
        if not live:
            break
        p = probabilities[live]
        p = p / p.sum()
        choice = int(rng.choice(live, p=p))
        out.append(traces[choice][cursors[choice]])
        cursors[choice] += 1
    return out
