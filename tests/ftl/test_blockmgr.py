"""Tests for the block lifecycle manager."""

import pytest

from repro.ftl.blockmgr import (
    BlockManager,
    BlockState,
    OutOfSpaceError,
    _FreePool,
)
from repro.ftl.mapping import PageMapper


@pytest.fixture
def manager(ssd_geometry):
    return BlockManager(ssd_geometry)


@pytest.fixture
def mapper(ssd_geometry):
    return PageMapper(ssd_geometry, ssd_geometry.total_pages // 2)


class TestLifecycle:
    def test_all_free_initially(self, manager, ssd_geometry):
        assert manager.free_count(0) == ssd_geometry.blocks_per_chip
        assert manager.state(0, 0) is BlockState.FREE

    def test_take_free_activates(self, manager):
        block = manager.take_free(0)
        assert manager.state(0, block) is BlockState.ACTIVE
        assert manager.free_count(0) == manager.geometry.blocks_per_chip - 1

    def test_full_and_free_cycle(self, manager):
        block = manager.take_free(0)
        manager.mark_full(0, block)
        assert manager.state(0, block) is BlockState.FULL
        manager.mark_free(0, block)
        assert manager.state(0, block) is BlockState.FREE

    def test_mark_full_requires_active(self, manager):
        with pytest.raises(ValueError):
            manager.mark_full(0, 0)

    def test_mark_free_requires_not_free(self, manager):
        with pytest.raises(ValueError):
            manager.mark_free(0, 0)

    def test_exhaustion(self, manager, ssd_geometry):
        for _ in range(ssd_geometry.blocks_per_chip):
            manager.take_free(0)
        with pytest.raises(OutOfSpaceError):
            manager.take_free(0)

    def test_chips_independent(self, manager, ssd_geometry):
        manager.take_free(0)
        assert manager.free_count(1) == ssd_geometry.blocks_per_chip

    def test_counts(self, manager, ssd_geometry):
        block = manager.take_free(0)
        manager.mark_full(0, block)
        counts = manager.counts(0)
        assert counts[BlockState.FULL] == 1
        assert counts[BlockState.FREE] == ssd_geometry.blocks_per_chip - 1


class TestFreePool:
    def test_fifo_order(self):
        pool = _FreePool(range(6))
        assert [pool.take_fifo() for _ in range(6)] == list(range(6))

    def test_fifo_order_survives_keyed_removals(self):
        pool = _FreePool(range(8))
        pool.remove(0)
        pool.remove(3)
        assert pool.take_min(key=lambda b: 0) == 1  # oldest wins ties
        assert [pool.take_fifo() for _ in range(len(pool))] == [2, 4, 5, 6, 7]

    def test_keyed_take_picks_minimum(self):
        pool = _FreePool(range(5))
        erase_counts = {0: 9, 1: 2, 2: 7, 3: 2, 4: 5}
        # blocks 1 and 3 tie on the key; the older (1) wins
        assert pool.take_min(key=erase_counts.__getitem__) == 1
        assert pool.take_min(key=erase_counts.__getitem__) == 3

    def test_recycled_block_goes_to_the_back(self):
        pool = _FreePool(range(3))
        block = pool.take_fifo()
        pool.append(block)
        assert [pool.take_fifo() for _ in range(3)] == [1, 2, 0]

    def test_double_append_rejected(self):
        pool = _FreePool(range(3))
        with pytest.raises(ValueError):
            pool.append(1)

    def test_compaction_preserves_contents(self):
        pool = _FreePool(range(64))
        for block in range(0, 64, 2):
            pool.remove(block)
        pool.check_invariants()
        for block in range(0, 64, 2):
            pool.append(block)
        pool.check_invariants()
        assert len(pool) == 64
        assert sorted(pool) == list(range(64))

    def test_heavy_churn_stays_consistent(self):
        pool = _FreePool(range(16))
        for round_no in range(50):
            taken = [pool.take_fifo() for _ in range(8)]
            for block in taken:
                pool.append(block)
            pool.check_invariants()
        assert len(pool) == 16


class TestFailingBlocks:
    def test_mark_failing_requires_full(self, manager):
        block = manager.take_free(0)
        with pytest.raises(ValueError):
            manager.mark_failing(0, block)  # still ACTIVE
        manager.mark_full(0, block)
        manager.mark_failing(0, block)
        assert manager.is_failing(0, block)
        assert manager.failing_count(0) == 1
        assert manager.failing_blocks(0) == [block]

    def test_failing_block_prioritized_as_victim(self, manager, mapper, ssd_geometry):
        a = manager.take_free(0)
        b = manager.take_free(0)
        manager.mark_full(0, a)
        manager.mark_full(0, b)
        per_block = ssd_geometry.block.pages_per_block
        # block a is empty (the cheapest victim); block b is fully valid
        # but failing -- it must still be taken first
        for page in range(per_block):
            mapper.bind(page, b * per_block + page)
        manager.mark_failing(0, b)
        assert manager.select_victim(0, mapper) == b

    def test_mark_free_clears_failing(self, manager):
        block = manager.take_free(0)
        manager.mark_full(0, block)
        manager.mark_failing(0, block)
        manager.mark_free(0, block)
        assert not manager.is_failing(0, block)

    def test_retire_clears_failing_and_records_reason(self, manager):
        block = manager.take_free(0)
        manager.mark_full(0, block)
        manager.mark_failing(0, block)
        manager.retire(0, block, reason="program_fail")
        assert not manager.is_failing(0, block)
        assert manager.grown_bad_table(0) == {block: "program_fail"}

    def test_retire_active_block_is_an_error(self, manager):
        block = manager.take_free(0)
        with pytest.raises(ValueError, match="active"):
            manager.retire(0, block)


class TestVictimSelection:
    def test_greedy_min_valid(self, manager, mapper, ssd_geometry):
        a = manager.take_free(0)
        b = manager.take_free(0)
        manager.mark_full(0, a)
        manager.mark_full(0, b)
        per_block = ssd_geometry.block.pages_per_block
        # block a: 2 valid pages; block b: 1 valid page
        mapper.bind(0, a * per_block)
        mapper.bind(1, a * per_block + 1)
        mapper.bind(2, b * per_block)
        assert manager.select_victim(0, mapper) == b

    def test_no_victim_raises(self, manager, mapper):
        with pytest.raises(OutOfSpaceError):
            manager.select_victim(0, mapper)

    def test_active_blocks_not_victims(self, manager, mapper):
        manager.take_free(0)  # active, never marked full
        with pytest.raises(OutOfSpaceError):
            manager.select_victim(0, mapper)
