"""Fig. 14 -- effect of the PS-aware read.

Regenerates the NumRetry distributions of the PS-unaware scheme (every
read starts from the default references) and the PS-aware scheme (reads
start from the ORT entry of the page's h-layer), on end-of-life blocks.

Paper result: the PS-aware scheme concentrates the distribution at 0-1
retries, reducing the mean NumRetry by ~66 %.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.characterization import experiments as exp
from repro.nand.reliability import AgingState


def regenerate():
    data = exp.fig14_read_retry_distribution(
        aging=AgingState(2000, 12.0), n_blocks=10
    )
    length = max(len(data["unaware_histogram"]), len(data["aware_histogram"]))
    unaware = data["unaware_histogram"] + [0] * (length - len(data["unaware_histogram"]))
    aware = data["aware_histogram"] + [0] * (length - len(data["aware_histogram"]))
    total = sum(unaware)
    rows = [
        [retries, f"{100 * unaware[retries] / total:.1f} %",
         f"{100 * aware[retries] / total:.1f} %"]
        for retries in range(length)
    ]
    lines = ["Fig 14 -- NumRetry distribution at 2K P/E + 1-year retention:"]
    lines.append(format_table(["NumRetry", "PS-unaware", "PS-aware (ORT)"], rows))
    lines.append("")
    lines.append(
        f"mean NumRetry: {data['unaware_mean']:.2f} -> {data['aware_mean']:.2f} "
        f"({100 * data['reduction']:.1f} % reduction; paper: 66 %)"
    )
    return "\n".join(lines), data


def test_fig14_read_retry_reduction(benchmark):
    text, data = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("fig14_read_retry", text)
    assert 0.5 <= data["reduction"] <= 0.9
    assert data["aware_mean"] < data["unaware_mean"]
    aware = data["aware_histogram"]
    assert sum(aware[:2]) / sum(aware) > 0.8
