"""Per-chip block lifecycle: free pool, active blocks, full blocks,
failing blocks, GC victim selection, and the grown-bad-block table."""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Set

from repro.ftl.mapping import PageMapper
from repro.nand.geometry import SSDGeometry


class OutOfSpaceError(RuntimeError):
    """A chip ran out of free blocks (GC could not keep up)."""


class BlockState(enum.Enum):
    FREE = "free"
    ACTIVE = "active"
    FULL = "full"
    RETIRED = "retired"


class _FreePool:
    """FIFO pool of free blocks with O(1) amortized take, O(1) removal,
    and single-scan keyed selection.

    Blocks live in an append-only order list with a position index;
    removals tombstone their slot (``None``) and the list compacts once
    tombstones dominate.  Iteration order (oldest first) matches the
    original deque semantics, including the first-minimum tie-break of
    keyed selection.
    """

    __slots__ = ("_order", "_head", "_pos")

    def __init__(self, blocks) -> None:
        self._order: List[Optional[int]] = list(blocks)
        self._head = 0
        self._pos: Dict[int, int] = {
            block: index for index, block in enumerate(self._order)
        }

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, block: int) -> bool:
        return block in self._pos

    def __iter__(self):
        """Live blocks, oldest first."""
        for index in range(self._head, len(self._order)):
            block = self._order[index]
            if block is not None:
                yield block

    def append(self, block: int) -> None:
        if block in self._pos:
            raise ValueError(f"block {block} is already in the free pool")
        self._pos[block] = len(self._order)
        self._order.append(block)

    def remove(self, block: int) -> None:
        index = self._pos.pop(block)
        self._order[index] = None
        self._maybe_compact()

    def take_fifo(self) -> int:
        """Pop the oldest free block."""
        while True:
            block = self._order[self._head]
            self._head += 1
            if block is not None:
                del self._pos[block]
                self._maybe_compact()
                return block

    def take_min(self, key: Callable[[int], int]) -> int:
        """Pop the block minimizing ``key`` (oldest wins ties)."""
        best: Optional[int] = None
        best_key = None
        for block in self:
            block_key = key(block)
            if best is None or block_key < best_key:
                best, best_key = block, block_key
        assert best is not None
        self.remove(best)
        return best

    def _maybe_compact(self) -> None:
        """Rebuild once dead slots (tombstones + consumed head prefix)
        outnumber live entries."""
        if len(self._order) - len(self._pos) <= max(8, len(self._pos)):
            return
        self._order = [block for block in self]
        self._head = 0
        self._pos = {block: index for index, block in enumerate(self._order)}

    def check_invariants(self) -> None:
        live = [block for block in self]
        assert len(live) == len(self._pos)
        for block in live:
            assert self._order[self._pos[block]] == block


#: block kinds -- what an in-service block holds.  FREE blocks are
#: kindless (reported as DATA_KIND until taken); the kind is assigned at
#: ``take_free`` time and reset when the block returns to the pool.
DATA_KIND = "data"
TRANS_KIND = "trans"


class BlockManager:
    """Tracks every block's lifecycle state per chip.

    Beyond the FREE/ACTIVE/FULL cycle the manager keeps two fault-
    related structures:

    - the **failing set**: FULL blocks flagged for prioritized GC and
      retirement (e.g. after a program-status failure) -- they still
      hold valid data, so they are migrated before being retired;
    - the **grown-bad table**: retired blocks with the reason they left
      service (``"wear"``, ``"erase_fail"``, ``"program_fail"``).

    Blocks additionally carry an explicit **kind** (``"data"`` vs
    ``"trans"``): demand-paged FTLs keep translation pages in dedicated
    blocks whose valid-page accounting lives in a *different* mapper, so
    GC victim selection and lifecycle auditing must never infer "all
    open blocks hold host data" from the lifecycle state alone.
    """

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        #: optional lifecycle observer (the runtime invariant checker).
        #: Called with (chip_id, block, old_state, new_state) after every
        #: transition; ``None`` (the default) costs one pointer test.
        self.observer = None
        self._free: Dict[int, _FreePool] = {}
        self._state: Dict[int, List[BlockState]] = {}
        self._failing: Dict[int, Set[int]] = {}
        self._retired_reasons: Dict[int, Dict[int, str]] = {}
        self._kind: Dict[int, List[str]] = {}
        for chip_id in range(geometry.n_chips):
            self._free[chip_id] = _FreePool(range(geometry.blocks_per_chip))
            self._state[chip_id] = [BlockState.FREE] * geometry.blocks_per_chip
            self._failing[chip_id] = set()
            self._retired_reasons[chip_id] = {}
            self._kind[chip_id] = [DATA_KIND] * geometry.blocks_per_chip

    def state(self, chip_id: int, block: int) -> BlockState:
        return self._state[chip_id][block]

    def kind_of(self, chip_id: int, block: int) -> str:
        """The block's assigned kind (``"data"`` for free blocks)."""
        return self._kind[chip_id][block]

    def free_count(self, chip_id: int) -> int:
        return len(self._free[chip_id])

    def take_free(
        self,
        chip_id: int,
        key: Optional[Callable[[int], int]] = None,
        kind: str = DATA_KIND,
    ) -> int:
        """Pop a free block and mark it active with the given ``kind``.

        Without ``key`` blocks recycle FIFO; with a ``key`` (e.g. the
        erase count, for dynamic wear leveling) the free block minimizing
        it is chosen, oldest first on ties.
        """
        if kind not in (DATA_KIND, TRANS_KIND):
            raise ValueError(f"unknown block kind {kind!r}")
        free = self._free[chip_id]
        if not free:
            raise OutOfSpaceError(f"chip {chip_id} has no free blocks")
        if key is None:
            block = free.take_fifo()
        else:
            block = free.take_min(key)
        self._state[chip_id][block] = BlockState.ACTIVE
        self._kind[chip_id][block] = kind
        if self.observer is not None:
            self.observer.on_block_transition(
                chip_id, block, BlockState.FREE, BlockState.ACTIVE
            )
        return block

    def mark_full(self, chip_id: int, block: int) -> None:
        if self._state[chip_id][block] is not BlockState.ACTIVE:
            raise ValueError(f"block {block} is not active")
        self._state[chip_id][block] = BlockState.FULL
        if self.observer is not None:
            self.observer.on_block_transition(
                chip_id, block, BlockState.ACTIVE, BlockState.FULL
            )

    def mark_free(self, chip_id: int, block: int) -> None:
        """Return an erased block to the free pool."""
        state = self._state[chip_id][block]
        if state is BlockState.FREE:
            raise ValueError(f"block {block} is already free")
        if state is BlockState.RETIRED:
            raise ValueError(f"block {block} is retired")
        self._state[chip_id][block] = BlockState.FREE
        self._failing[chip_id].discard(block)
        self._free[chip_id].append(block)
        if self.observer is not None:
            # the observer audits against the *outgoing* kind's mapper
            # (the block must be empty in it), so the kind resets after
            self.observer.on_block_transition(
                chip_id, block, state, BlockState.FREE
            )
        self._kind[chip_id][block] = DATA_KIND

    # ------------------------------------------------------------------
    # failing blocks and retirement
    # ------------------------------------------------------------------

    def mark_failing(self, chip_id: int, block: int) -> None:
        """Flag a FULL block for prioritized migration and retirement.

        Used when an operation on the block reported a failure status
        while it still holds valid data: GC migrates the data first,
        then retires the block instead of erasing it.
        """
        if self._state[chip_id][block] is not BlockState.FULL:
            raise ValueError(f"block {block} is not full")
        self._failing[chip_id].add(block)
        if self.observer is not None:
            self.observer.on_block_failing(chip_id, block)

    def is_failing(self, chip_id: int, block: int) -> bool:
        return block in self._failing[chip_id]

    def failing_count(self, chip_id: int) -> int:
        return len(self._failing[chip_id])

    def failing_blocks(self, chip_id: int) -> List[int]:
        return sorted(self._failing[chip_id])

    def retire(self, chip_id: int, block: int, reason: str = "wear") -> None:
        """Permanently remove a block from service.

        The block must hold no valid data (it is retired after its
        contents were migrated and its final erase failed or its
        endurance limit was reached).  Retiring an ACTIVE block is an
        error: active blocks are still wired into allocation cursors and
        must be discarded from them (and marked full) first.
        """
        state = self._state[chip_id][block]
        if state is BlockState.RETIRED:
            return
        if state is BlockState.ACTIVE:
            raise ValueError(
                f"block {block} is active; discard it from the allocation "
                "cursors and mark it full before retiring"
            )
        if state is BlockState.FREE:
            self._free[chip_id].remove(block)
        self._failing[chip_id].discard(block)
        self._state[chip_id][block] = BlockState.RETIRED
        self._retired_reasons[chip_id][block] = reason
        if self.observer is not None:
            self.observer.on_block_transition(
                chip_id, block, state, BlockState.RETIRED
            )

    def retired_count(self, chip_id: int) -> int:
        return sum(
            1 for state in self._state[chip_id] if state is BlockState.RETIRED
        )

    def grown_bad_table(self, chip_id: int) -> Dict[int, str]:
        """Retired blocks and why they left service (the bad-block table
        a production FTL persists)."""
        return dict(self._retired_reasons[chip_id])

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable lifecycle state.

        Free pools serialize as their live iteration order (oldest
        first): rebuilding a fresh pool from that list reproduces FIFO
        take order and keyed tie-breaks exactly, without persisting the
        tombstone/compaction internals.  The ``observer`` hook is wiring,
        not state, and is re-attached by the owning simulation.
        """
        return {
            "free": {
                chip_id: list(pool) for chip_id, pool in self._free.items()
            },
            "state": {
                chip_id: [state.value for state in states]
                for chip_id, states in self._state.items()
            },
            "failing": {
                chip_id: sorted(blocks)
                for chip_id, blocks in self._failing.items()
            },
            "retired_reasons": {
                chip_id: dict(reasons)
                for chip_id, reasons in self._retired_reasons.items()
            },
            "kind": {
                chip_id: list(kinds) for chip_id, kinds in self._kind.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        kinds = state.get("kind")
        for chip_id in range(self.geometry.n_chips):
            self._free[chip_id] = _FreePool(state["free"][chip_id])
            self._state[chip_id] = [
                BlockState(value) for value in state["state"][chip_id]
            ]
            self._failing[chip_id] = set(state["failing"][chip_id])
            self._retired_reasons[chip_id] = dict(
                state["retired_reasons"][chip_id]
            )
            # absent in pre-kind checkpoints: every block held host data
            self._kind[chip_id] = (
                list(kinds[chip_id])
                if kinds is not None
                else [DATA_KIND] * self.geometry.blocks_per_chip
            )

    # ------------------------------------------------------------------
    # GC victim selection
    # ------------------------------------------------------------------

    def full_blocks(self, chip_id: int, kind: Optional[str] = None) -> List[int]:
        """FULL blocks of a chip, optionally restricted to one kind."""
        kinds = self._kind[chip_id]
        return [
            block
            for block, state in enumerate(self._state[chip_id])
            if state is BlockState.FULL
            and (kind is None or kinds[block] == kind)
        ]

    def failing_of_kind(self, chip_id: int, kind: str) -> List[int]:
        """Failing blocks of one kind, sorted."""
        kinds = self._kind[chip_id]
        return sorted(
            block for block in self._failing[chip_id] if kinds[block] == kind
        )

    def select_victim(
        self, chip_id: int, mapper: PageMapper, kind: Optional[str] = None
    ) -> int:
        """Greedy GC victim: the full block with the fewest valid pages.

        Failing blocks take absolute priority -- they must leave service
        as soon as their data can be moved, regardless of how many valid
        pages they still hold.  ``kind`` restricts selection to blocks of
        one kind; ``mapper`` must be the mapper accounting that kind's
        valid pages (a block of another kind counts zero there, which
        would make it look like a free win).
        """
        kinds = self._kind[chip_id]
        failing = [
            block
            for block in sorted(self._failing[chip_id])
            if kind is None or kinds[block] == kind
        ]
        if failing:
            return min(
                failing,
                key=lambda block: mapper.valid_count(chip_id, block),
            )
        candidates = self.full_blocks(chip_id, kind=kind)
        if not candidates:
            raise OutOfSpaceError(f"chip {chip_id} has no GC victim")
        return min(candidates, key=lambda block: mapper.valid_count(chip_id, block))

    def counts(self, chip_id: int) -> Dict[BlockState, int]:
        result = {state: 0 for state in BlockState}
        for state in self._state[chip_id]:
            result[state] += 1
        return result

    def totals(self) -> Dict[BlockState, int]:
        """Lifecycle-state counts summed over every chip (the
        metrics sampler's free-block / retirement gauges)."""
        result = {state: 0 for state in BlockState}
        for chip_id in self._state:
            for state, count in self.counts(chip_id).items():
                result[state] += count
        return result
