"""pageFTL: the PS-unaware baseline (Section 6.1).

A page-level mapping FTL with no 3D-NAND-specific optimization: every WL
programs with the conservative default parameters, blocks fill in the
conventional horizontal-first order, and every read starts from the
default read references (paying the full retry sweep on aged blocks).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.wam import Allocation, SequentialCursor
from repro.ftl.base import BaseFTL
from repro.ssd.config import SSDConfig


class PageFTL(BaseFTL):
    """Baseline page-mapping FTL without process-similarity awareness."""

    name = "pageFTL"

    def __init__(self, config: SSDConfig, controller) -> None:
        super().__init__(config, controller)
        self._cursors: Dict[int, List[SequentialCursor]] = {
            chip: [] for chip in range(config.geometry.n_chips)
        }

    # -- allocation policy: plain horizontal-first ----------------------

    def install_block(self, chip_id: int, block: int) -> None:
        self._cursors[chip_id].append(SequentialCursor(block, self.geometry.block))

    def cursor_count(self, chip_id: int) -> int:
        return len(self._cursors[chip_id])

    def active_cursor_space(self, chip_id: int) -> int:
        return sum(cursor.free_wls() for cursor in self._cursors[chip_id])

    def allocate_wl(self, chip_id: int) -> Allocation:
        cursors = self._cursors[chip_id]
        for cursor in cursors:
            if not cursor.exhausted:
                allocation = cursor.take()
                if cursor.exhausted:
                    cursors.remove(cursor)
                return allocation
        raise LookupError(f"chip {chip_id}: no active cursor space")

    def discard_block(self, chip_id: int, block: int) -> None:
        super().discard_block(chip_id, block)
        self._cursors[chip_id] = [
            cursor for cursor in self._cursors[chip_id] if cursor.block != block
        ]

    # -- checkpointing ---------------------------------------------------

    def variant_state_dict(self) -> dict:
        return {
            "cursors": {
                chip_id: [cursor.state_dict() for cursor in cursors]
                for chip_id, cursors in self._cursors.items()
            }
        }

    def load_variant_state(self, state: dict) -> None:
        self._cursors = {
            chip_id: [
                SequentialCursor.from_state(cursor_state, self.geometry.block)
                for cursor_state in cursor_states
            ]
            for chip_id, cursor_states in state["cursors"].items()
        }

    def _post_spor_reset(self) -> None:
        super()._post_spor_reset()
        self._cursors = {
            chip: [] for chip in range(self.geometry.n_chips)
        }

    # program_params / read_params / after_* inherit the PS-unaware
    # defaults from BaseFTL.
