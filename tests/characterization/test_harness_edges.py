"""Harness edge cases: block-row addressing and custom geometries."""


from repro.characterization.harness import CharacterizationStudy, StudyConfig
from repro.nand.geometry import BlockGeometry
from repro.nand.reliability import AgingState


class TestBlockRowAddressing:
    def test_rows_span_chips(self):
        study = CharacterizationStudy(StudyConfig(n_chips=2, blocks_per_chip=2))
        grid = study.measure(AgingState(1000, 1.0))
        assert grid.shape[0] == 4
        # rows from different chips are genuinely different silicon
        assert not (grid[0] == grid[2]).all()

    def test_t_prog_row_on_second_chip(self):
        study = CharacterizationStudy(StudyConfig(n_chips=2, blocks_per_chip=2))
        first = study.t_prog_per_wl(0)
        third = study.t_prog_per_wl(2)  # first block of chip 1
        assert first.shape == third.shape


class TestCustomGeometry:
    def test_small_block_shape(self):
        config = StudyConfig(
            n_chips=1,
            blocks_per_chip=2,
            geometry=BlockGeometry(n_layers=8, wls_per_layer=2),
        )
        study = CharacterizationStudy(config)
        grid = study.measure(AgingState(2000, 6.0))
        assert grid.shape == (2, 8, 2)
        delta_h = study.delta_h_values(AgingState(2000, 6.0))
        assert delta_h.max() < 1.06


class TestMetricsShapes:
    def test_delta_v_shape_is_per_vlayer(self):
        study = CharacterizationStudy(StudyConfig(n_chips=1, blocks_per_chip=2))
        values = study.delta_v_values(AgingState(1000, 1.0))
        assert values.shape == (2, 4)

    def test_measure_values_scale_with_aging(self):
        study = CharacterizationStudy(StudyConfig(n_chips=1, blocks_per_chip=1))
        mild = study.measure(AgingState(500, 1.0))
        harsh = study.measure(AgingState(2000, 12.0))
        assert (harsh >= mild).all()
        assert harsh.sum() > 2 * mild.sum()
