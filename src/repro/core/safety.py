"""Post-program safety check for PS-aware optimizations (Section 4.1.4).

The optimizations assume the parameters monitored on the leading WL still
describe the followers.  A sudden operating-condition change (e.g. an
ambient-temperature surge) can break that assumption; the paper guards
against it by reading the BER of every completed WL program through the
low-level NAND interface and comparing it with the previously programmed
WL of the same h-layer.  A significantly higher BER flags an improperly
programmed WL; the FTL then re-programs the same data on the *next* WL and
re-monitors fresh parameters.

Because follower WLs are legitimately programmed with a tightened window,
their expected BER is the leader's BER times a known squeeze multiplier;
the checker normalizes by it before comparing, so healthy followers do not
trip the check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nand.ispp import window_squeeze_ber_multiplier


class SafetyVerdict(enum.Enum):
    """Outcome of the post-program check."""

    OK = "ok"
    REPROGRAM = "reprogram"


@dataclass(frozen=True)
class SafetyChecker:
    """Compares a completed WL program's BER against its h-layer reference.

    ``ratio_threshold`` is how much higher than expected the normalized
    BER may be before the WL is declared improperly programmed.  The
    device model's RTN noise is ~1 % while a single over-skipped state
    already inflates BER by ~80 %, so the default threshold separates the
    two cleanly.
    """

    ratio_threshold: float = 1.5

    def check(
        self,
        reference_ber: float,
        measured_ber: float,
        window_squeeze_mv: float = 0.0,
    ) -> SafetyVerdict:
        """Judge a WL program.

        Parameters
        ----------
        reference_ber:
            Post-program BER of the previously programmed WL on the same
            h-layer, with any window squeeze of *that* WL already
            normalized out (the OPM stores normalized references).
        measured_ber:
            Post-program BER of the just-completed WL.
        window_squeeze_mv:
            Window tightening applied to the just-completed WL, whose
            legitimate BER impact is divided out before comparing.
        """
        if reference_ber <= 0 or measured_ber <= 0:
            raise ValueError("BER values must be positive")
        expected = reference_ber * window_squeeze_ber_multiplier(
            max(0.0, window_squeeze_mv)
        )
        if measured_ber > self.ratio_threshold * expected:
            return SafetyVerdict.REPROGRAM
        return SafetyVerdict.OK

    def normalize(self, measured_ber: float, window_squeeze_mv: float) -> float:
        """Remove the legitimate squeeze contribution from a measurement,
        producing a reference comparable across WLs of the h-layer."""
        return measured_ber / window_squeeze_ber_multiplier(
            max(0.0, window_squeeze_mv)
        )
