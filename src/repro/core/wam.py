"""WL Allocation Manager (WAM) -- Section 5.2 and Fig. 16.

The WAM chooses which WL serves each incoming write.  It monitors the
write-buffer utilization ``mu``; above the threshold ``mu_TH`` it judges
that high write bandwidth is needed and allocates *fast follower* WLs,
otherwise it prefers *slow leader* WLs, preserving followers for future
bursts.

To allow that freedom the WAM manages its active blocks in a fully mixed
fashion based on the MOS: per active block it keeps two h-layer pointers,
``i_Leader`` (next h-layer with a free leader WL) and ``i_Follower``
(next h-layer with a free follower WL), with followers only allocatable
on h-layers whose leader has already been programmed
(``i_Follower < i_Leader``).

The module also provides the :class:`SequentialCursor` used by the
PS-unaware FTLs and by cubeFTL- (WAM disabled): plain horizontal-first
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.nand.geometry import BlockGeometry, WLAddress


@dataclass(frozen=True)
class Allocation:
    """One allocated WL: where to program and whether it is a leader."""

    block: int
    address: WLAddress
    is_leader: bool


class ActiveBlockCursor:
    """MOS two-pointer cursor over one active block (Fig. 16).

    Leaders are, by convention, WL 0 of each h-layer; followers are
    WLs 1..k of h-layers whose leader is already programmed.
    """

    def __init__(self, block: int, geometry: BlockGeometry) -> None:
        self.block = block
        self.geometry = geometry
        self._leader_layer = 0  # i_Leader: next h-layer with a free leader
        self._follower_layer = 0  # i_Follower: h-layer of the next free follower
        self._follower_wl = 1

    # -- queries -------------------------------------------------------

    @property
    def i_leader(self) -> int:
        return self._leader_layer

    @property
    def i_follower(self) -> int:
        return self._follower_layer

    def leader_available(self) -> bool:
        return self._leader_layer < self.geometry.n_layers

    def follower_available(self) -> bool:
        """Followers exist only behind the leader pointer."""
        return (
            self._follower_layer < self._leader_layer
            and self._follower_layer < self.geometry.n_layers
        )

    @property
    def exhausted(self) -> bool:
        return not self.leader_available() and not self.follower_available()

    def leaders_remaining(self) -> int:
        return self.geometry.n_layers - self._leader_layer

    def followers_remaining(self) -> int:
        """Free follower WLs under h-layers already led (allocatable now)."""
        if not self.follower_available():
            return 0
        per_layer = self.geometry.wls_per_layer - 1
        full_layers = self._leader_layer - self._follower_layer - 1
        current = self.geometry.wls_per_layer - self._follower_wl
        return full_layers * per_layer + current

    def free_wls(self) -> int:
        """All WLs not yet programmed through this cursor."""
        total = self.geometry.wls_per_block
        leaders_used = self._leader_layer
        followers_used = self._follower_layer * (self.geometry.wls_per_layer - 1) + (
            self._follower_wl - 1
        )
        return total - leaders_used - followers_used

    # -- allocation ----------------------------------------------------

    def take_leader(self) -> Allocation:
        if not self.leader_available():
            raise LookupError(f"block {self.block}: no free leader WL")
        address = WLAddress(self._leader_layer, 0)
        self._leader_layer += 1
        return Allocation(self.block, address, is_leader=True)

    def take_follower(self) -> Allocation:
        if not self.follower_available():
            raise LookupError(f"block {self.block}: no allocatable follower WL")
        address = WLAddress(self._follower_layer, self._follower_wl)
        self._follower_wl += 1
        if self._follower_wl >= self.geometry.wls_per_layer:
            self._follower_wl = 1
            self._follower_layer += 1
        return Allocation(self.block, address, is_leader=False)

    def take(self, prefer_follower: bool) -> Allocation:
        """Allocate with preference, falling back to the other group."""
        if prefer_follower:
            if self.follower_available():
                return self.take_follower()
            return self.take_leader()
        if self.leader_available():
            return self.take_leader()
        return self.take_follower()

    # -- checkpointing -------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "block": self.block,
            "leader_layer": self._leader_layer,
            "follower_layer": self._follower_layer,
            "follower_wl": self._follower_wl,
        }

    @classmethod
    def from_state(cls, state: dict, geometry: BlockGeometry) -> "ActiveBlockCursor":
        cursor = cls(state["block"], geometry)
        cursor._leader_layer = state["leader_layer"]
        cursor._follower_layer = state["follower_layer"]
        cursor._follower_wl = state["follower_wl"]
        return cursor


class SequentialCursor:
    """Horizontal-first allocation (conventional FTLs and cubeFTL-).

    WLs are handed out in the Fig. 12(a) order; the first WL of each
    h-layer is the layer's leader.
    """

    def __init__(self, block: int, geometry: BlockGeometry) -> None:
        self.block = block
        self.geometry = geometry
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= self.geometry.wls_per_block

    def free_wls(self) -> int:
        return self.geometry.wls_per_block - self._next

    def take(self, prefer_follower: bool = False) -> Allocation:
        """Allocate the next WL in order (the preference is ignored --
        that is exactly what cubeFTL- gives up)."""
        if self.exhausted:
            raise LookupError(f"block {self.block}: exhausted")
        address = self.geometry.wl_from_index(self._next)
        self._next += 1
        return Allocation(self.block, address, is_leader=address.wl == 0)

    # -- checkpointing -------------------------------------------------

    def state_dict(self) -> dict:
        return {"block": self.block, "next": self._next}

    @classmethod
    def from_state(cls, state: dict, geometry: BlockGeometry) -> "SequentialCursor":
        cursor = cls(state["block"], geometry)
        cursor._next = state["next"]
        return cursor


class WLAllocationManager:
    """Workload-aware WL allocation across a chip's active blocks.

    Each chip keeps ``active_blocks_per_chip`` active blocks (the paper
    uses two as the memory/flexibility compromise) whose WLs are
    allocated through MOS cursors.
    """

    def __init__(
        self,
        geometry: BlockGeometry,
        active_blocks_per_chip: int = 2,
        mu_threshold: float = 0.9,
    ) -> None:
        if active_blocks_per_chip < 1:
            raise ValueError("active_blocks_per_chip must be >= 1")
        if not 0.0 < mu_threshold <= 1.0:
            raise ValueError("mu_threshold must be in (0, 1]")
        self.geometry = geometry
        self.active_blocks_per_chip = active_blocks_per_chip
        self.mu_threshold = mu_threshold
        self._cursors: Dict[int, List[ActiveBlockCursor]] = {}
        self.leader_allocations = 0
        self.follower_allocations = 0

    @property
    def follower_fraction(self) -> float:
        """Share of allocations that used fast follower WLs (the
        burst-absorption signal the metrics sampler tracks)."""
        total = self.leader_allocations + self.follower_allocations
        return self.follower_allocations / total if total else 0.0

    def cursors(self, chip_id: int) -> List[ActiveBlockCursor]:
        return self._cursors.setdefault(chip_id, [])

    def blocks_needed(self, chip_id: int) -> int:
        """How many fresh active blocks the chip should be given."""
        return self.active_blocks_per_chip - len(self.cursors(chip_id))

    def install_block(self, chip_id: int, block: int) -> None:
        """Register an erased block as a new active block."""
        self.cursors(chip_id).append(ActiveBlockCursor(block, self.geometry))

    def discard_block(self, chip_id: int, block: int) -> bool:
        """Drop a block's cursor without exhausting it (the block left
        service early, e.g. after a program-status failure).  Returns
        whether a cursor was removed."""
        cursors = self.cursors(chip_id)
        for index, cursor in enumerate(cursors):
            if cursor.block == block:
                del cursors[index]
                return True
        return False

    def free_wls(self, chip_id: int) -> int:
        return sum(cursor.free_wls() for cursor in self.cursors(chip_id))

    def allocate(self, chip_id: int, utilization: float) -> Optional[Allocation]:
        """Pick the most appropriate WL for the next flush.

        Under pressure (``utilization > mu_TH``) followers are used as
        long as ``i_Follower < i_Leader``; otherwise leaders are used
        even if follower WLs of lower h-layers remain free (Fig. 16).
        Returns ``None`` when every active block is exhausted.
        """
        cursors = self.cursors(chip_id)
        prefer_follower = utilization > self.mu_threshold
        choice: Optional[ActiveBlockCursor] = None
        # first pass: a cursor offering the preferred WL group
        for cursor in cursors:
            if prefer_follower and cursor.follower_available():
                choice = cursor
                break
            if not prefer_follower and cursor.leader_available():
                choice = cursor
                break
        # second pass: anything non-exhausted
        if choice is None:
            for cursor in cursors:
                if not cursor.exhausted:
                    choice = cursor
                    break
        if choice is None:
            return None
        allocation = choice.take(prefer_follower)
        if allocation.is_leader:
            self.leader_allocations += 1
        else:
            self.follower_allocations += 1
        if choice.exhausted:
            cursors.remove(choice)
        return allocation

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Cursor order within a chip is allocation order and must be
        preserved exactly (the first-match scans in :meth:`allocate`
        depend on it)."""
        return {
            "cursors": {
                chip_id: [cursor.state_dict() for cursor in cursors]
                for chip_id, cursors in self._cursors.items()
            },
            "leader_allocations": self.leader_allocations,
            "follower_allocations": self.follower_allocations,
        }

    def load_state_dict(self, state: dict) -> None:
        self._cursors = {
            chip_id: [
                ActiveBlockCursor.from_state(cursor_state, self.geometry)
                for cursor_state in cursor_states
            ]
            for chip_id, cursor_states in state["cursors"].items()
        }
        self.leader_allocations = state["leader_allocations"]
        self.follower_allocations = state["follower_allocations"]

    def reset(self) -> None:
        """Drop every cursor (SPOR: active blocks are sealed on recovery,
        so no cursor survives)."""
        self._cursors = {}
