"""Seeded randomized-workload differential fuzzing across FTLs.

:func:`random_trace` generates a reproducible host trace (mixed
sequential/random reads and writes over a hot/cold-skewed logical
space), :func:`run_fuzz` replays it through several FTL variants with
the runtime invariant checker attached and compares the final logical
state digests -- all FTLs must agree on every (LPN, content) pair.

Every outcome is a pure function of ``(seed, ops, config knobs)``, so
a failing report is replayed by rerunning with the printed seed:

    repro-ssd fuzz --seed <seed> --ops <ops> --check=strict

CI runs a fixed-seed smoke of this on two FTLs (the ``check-fuzz``
job); see docs/TESTING.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check.errors import InvariantViolation
from repro.check.invariants import CheckConfig
from repro.ssd.config import SSDConfig
from repro.workloads.base import READ, WRITE, IORequest, Trace

#: FTL variants fuzzed when the caller does not choose
DEFAULT_FTLS = ("page", "vert", "cube", "oracle", "dftl")


def random_trace(
    logical_pages: int,
    n_ops: int,
    seed: int,
    *,
    read_fraction: float = 0.5,
    hot_fraction: float = 0.2,
    hot_weight: float = 0.6,
    max_pages: int = 8,
    name: Optional[str] = None,
) -> Trace:
    """A seeded random host trace mixing access patterns.

    ``hot_fraction`` of the logical space receives ``hot_weight`` of the
    accesses (skew forces GC and coalescing); request lengths are
    uniform in ``[1, max_pages]``; reads/writes interleave at
    ``read_fraction``.  Deterministic for a given argument tuple.
    """
    if logical_pages < 1:
        raise ValueError("logical_pages must be >= 1")
    if n_ops < 1:
        raise ValueError("n_ops must be >= 1")
    rng = random.Random(seed)
    hot_pages = max(1, int(logical_pages * hot_fraction))
    requests: List[IORequest] = []
    for _ in range(n_ops):
        op = READ if rng.random() < read_fraction else WRITE
        region = hot_pages if rng.random() < hot_weight else logical_pages
        n_pages = rng.randint(1, max_pages)
        lpn = rng.randrange(region)
        n_pages = min(n_pages, logical_pages - lpn)
        requests.append(IORequest(op, lpn, n_pages))
    return Trace(
        name=name or f"fuzz-s{seed}",
        logical_pages=logical_pages,
        requests=requests,
    )


@dataclass
class FuzzReport:
    """Outcome of one differential fuzz run."""

    seed: int
    ops: int
    ftls: List[str]
    #: final-state digest per FTL (absent when the FTL's run failed)
    digests: Dict[str, str] = field(default_factory=dict)
    #: full checker report per FTL
    reports: Dict[str, dict] = field(default_factory=dict)
    #: first invariant violation per failing FTL, rendered
    violations: Dict[str, str] = field(default_factory=dict)
    #: human-readable differential mismatches
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.mismatches

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed} ops={self.ops} "
            f"ftls={','.join(self.ftls)}: "
            + ("OK" if self.ok else "FAILED")
        ]
        for ftl in self.ftls:
            if ftl in self.violations:
                lines.append(f"  {ftl}: VIOLATION {self.violations[ftl]}")
            elif ftl in self.digests:
                report = self.reports.get(ftl, {})
                oracle = report.get("oracle", {})
                lines.append(
                    f"  {ftl}: digest={self.digests[ftl][:16]} "
                    f"reads_verified={oracle.get('reads_verified', 0)} "
                    f"deep_scans={report.get('deep_scans', 0)}"
                )
        for mismatch in self.mismatches:
            lines.append(f"  MISMATCH {mismatch}")
        return "\n".join(lines)


def run_fuzz(
    seed: int = 7,
    ops: int = 400,
    ftls: Sequence[str] = DEFAULT_FTLS,
    *,
    level: str = "strict",
    config: Optional[SSDConfig] = None,
    faults=None,
    queue_depth: int = 8,
    prefill: float = 0.4,
) -> FuzzReport:
    """Replay one seeded random trace through every FTL under the
    invariant checker and diff the final logical state.

    Returns a :class:`FuzzReport`; a violation in one FTL is captured
    there (the remaining FTLs still run) and cross-FTL digest
    disagreements are listed in ``mismatches``.
    """
    from repro.api import run_simulation

    if config is None:
        config = SSDConfig.small(logical_fraction=0.4)
    if faults is not None:
        if isinstance(faults, str):
            from repro.faults import get_campaign

            faults = get_campaign(faults)
        config = config.with_faults(faults)
    trace = random_trace(config.logical_pages, ops, seed)
    report = FuzzReport(seed=seed, ops=ops, ftls=list(ftls))
    check = CheckConfig(level=level) if level == "on" else CheckConfig.strict()
    for ftl in ftls:
        try:
            result = run_simulation(
                config,
                trace,
                ftl=ftl,
                queue_depth=queue_depth,
                prefill=prefill,
                seed=seed,
                check=check,
            )
        except InvariantViolation as violation:
            report.violations[ftl] = str(violation)
            continue
        report.reports[ftl] = result.check
        report.digests[ftl] = result.check["state_digest"]
    digests = sorted(set(report.digests.values()))
    if len(digests) > 1:
        by_digest: Dict[str, List[str]] = {}
        for ftl, digest in report.digests.items():
            by_digest.setdefault(digest, []).append(ftl)
        rendered = "; ".join(
            f"{digest[:16]}: {','.join(sorted(ftl_names))}"
            for digest, ftl_names in sorted(by_digest.items())
        )
        report.mismatches.append(
            f"final logical state diverged across FTLs ({rendered})"
        )
    return report
