"""Tests for the optional read-disturb model."""

import pytest

from repro.nand.chip import NandChip


@pytest.fixture
def disturbed_chip():
    return NandChip(
        n_blocks=2, env_shift_prob=0.0, read_disturb_per_read=1e-5
    )


class TestReadDisturb:
    def test_disabled_by_default(self, quiet_chip):
        quiet_chip.program_wl(0, 10, 0)
        first = quiet_chip.read_page(0, 10, 0, 0).ber
        for _ in range(200):
            quiet_chip.read_page(0, 10, 0, 0)
        assert quiet_chip.read_page(0, 10, 0, 0).ber == pytest.approx(first)

    def test_reads_accumulate_disturb(self, disturbed_chip):
        disturbed_chip.program_wl(0, 10, 0)
        first = disturbed_chip.read_page(0, 10, 0, 0).ber
        for _ in range(5000):
            disturbed_chip.read_page(0, 10, 0, 0)
        later = disturbed_chip.read_page(0, 10, 0, 0).ber
        assert later > first * 1.03

    def test_read_count_tracked_per_block(self, disturbed_chip):
        disturbed_chip.program_wl(0, 10, 0)
        disturbed_chip.program_wl(1, 10, 0)
        for _ in range(7):
            disturbed_chip.read_page(0, 10, 0, 0)
        assert disturbed_chip.block_read_count(0) == 7
        assert disturbed_chip.block_read_count(1) == 0

    def test_erase_resets_disturb(self, disturbed_chip):
        disturbed_chip.program_wl(0, 10, 0)
        for _ in range(100):
            disturbed_chip.read_page(0, 10, 0, 0)
        disturbed_chip.erase_block(0)
        assert disturbed_chip.block_read_count(0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            NandChip(n_blocks=1, read_disturb_per_read=-1e-6)
