"""Fig. 6 -- vertical inter-layer variability.

Regenerates: (a-c) leading-WL BER per h-layer under fresh, cycled, and
cycled+retention states, with Delta-V; (d) per-block Delta-V spread.

Paper result: Delta-V ~= 1.6 fresh growing to ~= 2.3 at 2 K P/E + 1 yr,
nonlinear aging (bad layers degrade faster), and ~18 % per-block spread.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.characterization import experiments as exp
from repro.nand.reliability import AgingState

AGINGS = [
    AgingState(0, 0.0),
    AgingState(2000, 0.0),
    AgingState(2000, 1.0),
    AgingState(2000, 12.0),
]


def regenerate(study):
    data = exp.fig6_inter_layer_ber(study, AGINGS)
    reliability = study.chips[0].reliability
    named = exp.representative_layers(reliability)
    lines = ["Fig 6(a-c) -- normalized leading-WL BER per h-layer:"]
    rows = []
    for (pe, ret), stats in data.items():
        series = stats["normalized_ber"]
        rows.append(
            [f"{pe} P/E, {ret} mo"]
            + [round(series[layer], 2) for layer in named.values()]
            + [round(stats["delta_v"], 2)]
        )
    lines.append(
        format_table(
            ["condition"] + [f"h-{name}" for name in named] + ["dV"], rows
        )
    )
    spread = exp.fig6d_per_block_delta_v(study, AgingState(2000, 1.0))
    lines.append("")
    lines.append("Fig 6(d) -- per-block Delta-V spread (2K P/E + 1 mo):")
    lines.append(
        format_table(
            ["block I (max)", "block II (min)", "spread"],
            [[
                round(spread["delta_v_block_i"], 3),
                round(spread["delta_v_block_ii"], 3),
                round(spread["spread_ratio"], 3),
            ]],
        )
    )
    return "\n".join(lines), data, spread


def test_fig6_inter_layer_variability(benchmark, study):
    text, data, spread = benchmark.pedantic(
        lambda: regenerate(study), rounds=1, iterations=1
    )
    emit("fig06_inter_layer", text)
    fresh_dv = data[(0, 0.0)]["delta_v"]
    aged_dv = data[(2000, 12.0)]["delta_v"]
    # paper anchors: 1.6 fresh -> 2.3 at end of life
    assert 1.4 <= fresh_dv <= 1.9
    assert 2.0 <= aged_dv <= 2.7
    # per-block spread (paper: ~18 %)
    assert 1.05 <= spread["spread_ratio"] <= 1.45
