"""The SSD write buffer.

Host writes land here first; the FTL drains the buffer into the flash in
WL-sized groups.  Its utilization ``mu`` (occupied slots over capacity,
*including* pages already dispatched but not yet durable) is the signal
the WAM uses to detect write-bandwidth pressure (Section 5.2).

The buffer write-coalesces: a second write to a buffered-but-not-yet-
dispatched LPN replaces the staged data in place (no extra slot) and both
host requests complete with the single flash program.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class BufferEntry:
    """One staged logical page and the host requests waiting on it.

    ``version`` is the LPN's global write sequence number at staging
    time; the FTL only binds the mapping for an entry that is still the
    LPN's newest write (flushes to different chips can complete out of
    order).
    """

    lpn: int
    data: object = None
    waiters: List[object] = field(default_factory=list)
    version: int = 0
    #: FTL-global write sequence number, stamped at admission when SPOR
    #: support is on; programmed into the page's OOB record so recovery
    #: can order the copies of an LPN (0 = not stamped)
    seq: int = 0


class WriteBuffer:
    """Fixed-capacity staging buffer with coalescing and in-flight
    tracking."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        self.capacity = capacity_pages
        self._staged: "OrderedDict[int, BufferEntry]" = OrderedDict()
        # per-LPN in-flight copies keyed by write version.  Versions are
        # strictly increasing per LPN and dict order is insertion order,
        # so the last value is always the freshest copy -- and removal
        # by version in :meth:`complete` is O(1) instead of a list scan.
        self._inflight: Dict[int, Dict[int, BufferEntry]] = {}
        self._inflight_count = 0
        # write sequence number per LPN with a staged or in-flight copy.
        # Entries are dropped as soon as the last copy of the LPN leaves
        # the buffer (the mapping is bound by then), so the dict is
        # bounded by the buffer capacity, not by the touched LPN space.
        self._versions: Dict[int, int] = {}
        self.coalesced_writes = 0
        #: high-water mark of :attr:`occupancy` (burst-absorption signal
        #: for the metrics sampler; never read by the simulation)
        self.peak_occupancy = 0

    # ------------------------------------------------------------------

    @property
    def staged_pages(self) -> int:
        return len(self._staged)

    @property
    def inflight_pages(self) -> int:
        return self._inflight_count

    @property
    def occupancy(self) -> int:
        """Slots in use: staged plus dispatched-but-not-durable."""
        return self.staged_pages + self.inflight_pages

    @property
    def utilization(self) -> float:
        """The WAM's mu signal."""
        return self.occupancy / self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    def can_admit(self, lpn: int) -> bool:
        """Whether a write to ``lpn`` can enter now (coalescing is always
        possible; a fresh LPN needs a free slot)."""
        return lpn in self._staged or self.free_slots > 0

    # ------------------------------------------------------------------

    def admit(
        self, lpn: int, data: object, waiter: Optional[object], seq: int = 0
    ) -> bool:
        """Stage a host write.  Returns True if it coalesced into an
        existing staged page."""
        version = self._versions.get(lpn, 0) + 1
        self._versions[lpn] = version
        entry = self._staged.get(lpn)
        if entry is not None:
            entry.data = data
            entry.version = version
            entry.seq = seq
            if waiter is not None:
                entry.waiters.append(waiter)
            self.coalesced_writes += 1
            return True
        if self.free_slots <= 0:
            raise RuntimeError("write buffer full")
        entry = BufferEntry(lpn=lpn, data=data, version=version, seq=seq)
        if waiter is not None:
            entry.waiters.append(waiter)
        self._staged[lpn] = entry
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        return False

    def pop_group(self, max_pages: int) -> List[BufferEntry]:
        """Dequeue up to ``max_pages`` oldest staged pages for a WL
        program; they move to the in-flight set until completed."""
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        group: List[BufferEntry] = []
        while self._staged and len(group) < max_pages:
            _, entry = self._staged.popitem(last=False)
            self._inflight.setdefault(entry.lpn, {})[entry.version] = entry
            self._inflight_count += 1
            group.append(entry)
        return group

    def complete(self, entries: List[BufferEntry]) -> None:
        """Mark dispatched pages durable, freeing their slots.

        An LPN whose last buffered copy just left (nothing staged, no
        other version in flight) also drops its version entry: the FTL
        binds the mapping before completing, so the sequence number has
        no consumer left and keeping it would leak memory over the whole
        touched-LPN space on long runs."""
        for entry in entries:
            lpn = entry.lpn
            bucket = self._inflight.get(lpn)
            if not bucket or bucket.get(entry.version) is not entry:
                raise ValueError(f"LPN {lpn} was not in flight")
            del bucket[entry.version]
            self._inflight_count -= 1
            if not bucket:
                del self._inflight[lpn]
                if lpn not in self._staged:
                    del self._versions[lpn]

    # ------------------------------------------------------------------
    # read coherence
    # ------------------------------------------------------------------

    def contains(self, lpn: int) -> bool:
        """Whether a read of ``lpn`` must be served from the buffer."""
        return lpn in self._staged or lpn in self._inflight

    def latest_data(self, lpn: int) -> object:
        """Freshest staged copy of an LPN (staged beats in-flight)."""
        if lpn in self._staged:
            return self._staged[lpn].data
        bucket = self._inflight.get(lpn)
        if bucket:
            # insertion order == version order, so the last entry wins
            return next(reversed(bucket.values())).data
        raise KeyError(f"LPN {lpn} not buffered")

    def latest_version(self, lpn: int) -> int:
        """Newest write sequence number seen for an LPN (0 = never
        written through this buffer)."""
        return self._versions.get(lpn, 0)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable buffer state at a quiescent barrier.

        At a barrier nothing is in flight and no staged entry has host
        waiters (waiters are live request objects -- only waiter-less
        scrub re-admissions may legally remain staged), so the state is
        the ordered staged pages plus the version table and counters.
        """
        if self._inflight:
            raise RuntimeError(
                f"buffer not quiescent: {self._inflight_count} pages in flight"
            )
        for entry in self._staged.values():
            if entry.waiters:
                raise RuntimeError(
                    f"staged LPN {entry.lpn} still has host waiters"
                )
        return {
            "staged": [
                (entry.lpn, entry.data, entry.version, entry.seq)
                for entry in self._staged.values()
            ],
            "versions": dict(self._versions),
            "coalesced_writes": self.coalesced_writes,
            "peak_occupancy": self.peak_occupancy,
        }

    def load_state_dict(self, state: dict) -> None:
        if self._staged or self._inflight:
            raise RuntimeError("cannot restore state onto a non-empty buffer")
        for lpn, data, version, seq in state["staged"]:
            self._staged[lpn] = BufferEntry(
                lpn=lpn, data=data, version=version, seq=seq
            )
        self._versions = dict(state["versions"])
        self.coalesced_writes = state["coalesced_writes"]
        self.peak_occupancy = state["peak_occupancy"]

    # ------------------------------------------------------------------
    # invariants (runtime checker + property-based tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ValueError if version accounting drifted.

        Checked: the in-flight count matches the buckets; staged entries
        carry their LPN's newest version; in-flight bucket versions are
        strictly increasing and never newer than the version table; the
        version table holds *exactly* the LPNs with a buffered copy
        (bounded -- no leak over the touched-LPN space); occupancy never
        exceeds capacity.
        """
        actual_inflight = sum(len(b) for b in self._inflight.values())
        if actual_inflight != self._inflight_count:
            raise ValueError(
                f"in-flight count {self._inflight_count} but buckets hold "
                f"{actual_inflight} entries"
            )
        for lpn, bucket in self._inflight.items():
            if not bucket:
                raise ValueError(f"LPN {lpn} has an empty in-flight bucket")
            versions = list(bucket)
            if versions != sorted(versions) or len(set(versions)) != len(versions):
                raise ValueError(
                    f"LPN {lpn} in-flight versions {versions} are not "
                    "strictly increasing"
                )
            newest = self._versions.get(lpn)
            if newest is None or versions[-1] > newest:
                raise ValueError(
                    f"LPN {lpn} has in-flight version {versions[-1]} but "
                    f"version table says {newest}"
                )
            for version, entry in bucket.items():
                if entry.lpn != lpn or entry.version != version:
                    raise ValueError(
                        f"in-flight entry under LPN {lpn} v{version} "
                        f"records lpn={entry.lpn} v{entry.version}"
                    )
        for lpn, entry in self._staged.items():
            if entry.lpn != lpn:
                raise ValueError(
                    f"staged entry under LPN {lpn} records lpn={entry.lpn}"
                )
            if entry.version != self._versions.get(lpn):
                raise ValueError(
                    f"staged LPN {lpn} at version {entry.version} but "
                    f"version table says {self._versions.get(lpn)}"
                )
        buffered = set(self._staged) | set(self._inflight)
        if set(self._versions) != buffered:
            stale = set(self._versions) - buffered
            missing = buffered - set(self._versions)
            raise ValueError(
                f"version table drifted: stale LPNs {sorted(stale)}, "
                f"missing LPNs {sorted(missing)}"
            )
        if self.occupancy > self.capacity:
            raise ValueError(
                f"occupancy {self.occupancy} exceeds capacity {self.capacity}"
            )
