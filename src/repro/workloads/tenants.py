"""Multi-tenant stream composition: N independent workloads, one device.

Each :class:`~repro.specs.TenantSpec` names a workload, an arrival rate,
and an optional LPN partition; :func:`compose_tenants` materializes every
tenant's stream independently and interleaves them deterministically by
arrival time into one merged :class:`~repro.workloads.base.Trace` whose
requests carry tenant tags (see :attr:`IORequest.tenant`).

Two determinism rules make tenant scenarios composable:

- **Per-tenant seeds derive from the run seed and the tenant name**
  (the :func:`repro.parallel.derive_seed` rule), never from the tenant's
  position in the list -- adding, removing, or reordering *other*
  tenants leaves this tenant's stream bit-identical.  That is what makes
  the interference matrix meaningful: the solo baseline run replays
  exactly the stream the tenant issued in the shared run.
- **The merge order is a pure function of the streams**: requests sort
  by ``(arrival_us, tenant index, sequence index)``, so ties break the
  same way on every platform.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.parallel.seeds import derive_seed
from repro.workloads import build_workload
from repro.workloads.base import IORequest, Trace, with_arrivals

if TYPE_CHECKING:
    from repro.specs import TenantSpec
    from repro.ssd.config import SSDConfig


def tenant_seed(base_seed: int, name: str) -> int:
    """The workload seed a tenant runs with (unless pinned in its spec)."""
    return derive_seed(base_seed, f"tenant:{name}")


def tenant_arrival_seed(base_seed: int, name: str) -> int:
    """The arrival-stamping seed of a tenant (independent of the
    workload seed, so rate changes never reshuffle the request mix)."""
    return derive_seed(base_seed, f"tenant:{name}:arrivals")


def _partition_pages(tenant: "TenantSpec", logical_pages: int):
    """(base LPN, region size) of a tenant's slice of the logical space."""
    if tenant.partition is None:
        return 0, logical_pages
    lo_fraction, hi_fraction = tenant.partition
    lo = int(lo_fraction * logical_pages)
    hi = int(hi_fraction * logical_pages)
    if hi - lo < 1:
        raise ValueError(
            f"tenant {tenant.name!r}: partition {tenant.partition} spans "
            f"no pages on a {logical_pages}-page device"
        )
    return lo, hi - lo


def tenant_trace(
    tenant: "TenantSpec", config: "SSDConfig", base_seed: int
) -> Trace:
    """One tenant's tagged, arrival-stamped stream over the full device.

    The workload generates over the tenant's partition region (so
    locality structure is preserved inside the slice), then shifts to the
    region's base LPN and tags every request with the tenant name.
    Generated workloads are stamped with exponential arrivals at
    ``rate_iops * rate_scale``; recorded traces that already carry
    arrivals keep their own timeline, compressed by ``rate_scale``.
    """
    logical_pages = config.logical_pages
    base_lpn, region_pages = _partition_pages(tenant, logical_pages)
    spec = tenant.workload
    seed = tenant.seed if tenant.seed is not None else tenant_seed(
        base_seed, tenant.name
    )
    raw = build_workload(
        spec.name,
        region_pages,
        None if spec.is_trace else spec.n_requests,
        seed=seed,
        **spec.params,
    )
    placed = Trace(tenant.name, logical_pages)
    for request in raw:
        placed.append(
            IORequest(
                request.op,
                request.lpn + base_lpn,
                request.n_pages,
                request.arrival_us,
                tenant.name,
            )
        )
    if placed.has_arrivals:
        if tenant.rate_scale == 1.0:
            return placed
        compressed = Trace(tenant.name, logical_pages)
        for request in placed:
            compressed.append(request.at(request.arrival_us / tenant.rate_scale))
        return compressed
    return with_arrivals(
        placed,
        tenant.effective_rate_iops,
        burstiness=tenant.burstiness,
        seed=tenant_arrival_seed(base_seed, tenant.name),
    )


def compose_tenants(
    tenants: Sequence["TenantSpec"], config: "SSDConfig", base_seed: int
) -> Trace:
    """The merged multi-tenant stream, interleaved by arrival time.

    The result always satisfies :attr:`Trace.has_arrivals` (tenant
    scenarios replay open-loop by construction) and every request
    carries its tenant tag.
    """
    if not tenants:
        raise ValueError("compose_tenants needs at least one tenant")
    names = [tenant.name for tenant in tenants]
    if len(names) != len(set(names)):
        raise ValueError(f"tenant names must be unique, got {names}")
    streams = [tenant_trace(tenant, config, base_seed) for tenant in tenants]
    keyed = [
        (request.arrival_us, tenant_index, sequence, request)
        for tenant_index, stream in enumerate(streams)
        for sequence, request in enumerate(stream)
    ]
    keyed.sort(key=lambda entry: entry[:3])
    merged = Trace("+".join(names), config.logical_pages)
    for _, _, _, request in keyed:
        merged.append(request)
    return merged


__all__ = [
    "tenant_seed",
    "tenant_arrival_seed",
    "tenant_trace",
    "compose_tenants",
]
