"""Tests for SSD configuration."""

import dataclasses

import pytest

from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig


class TestSSDConfig:
    def test_default_block_shape_is_papers(self):
        config = SSDConfig()
        assert config.geometry.block.n_layers == 48
        assert config.geometry.block.wls_per_layer == 4
        assert config.geometry.n_channels == 2
        assert config.geometry.chips_per_channel == 4

    def test_paper_scale_is_32gb(self):
        config = SSDConfig.paper_scale()
        assert config.geometry.blocks_per_chip == 428
        assert 30 <= config.geometry.total_bytes / 2**30 <= 34

    def test_logical_space_smaller_than_physical(self):
        config = SSDConfig()
        assert config.logical_pages < config.geometry.total_pages
        assert config.logical_bytes == (
            config.logical_pages * config.geometry.block.page_size_bytes
        )

    def test_with_aging(self):
        config = SSDConfig().with_aging(AgingState(2000, 12.0))
        assert config.aging.pe_cycles == 2000
        assert config.geometry == SSDConfig().geometry

    def test_with_seed(self):
        assert SSDConfig().with_seed(7).seed == 7

    def test_small_config_valid(self):
        config = SSDConfig.small()
        assert config.geometry.n_chips == 2
        assert config.logical_pages > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SSDConfig(), buffer_capacity_pages=2)
        with pytest.raises(ValueError):
            dataclasses.replace(SSDConfig(), logical_fraction=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(SSDConfig(), gc_trigger_blocks=1)
        with pytest.raises(ValueError):
            dataclasses.replace(SSDConfig(), max_inflight_programs=0)
