"""3D NAND flash device model.

This subpackage is the hardware substrate of the reproduction: a mechanistic
model of a 3D TLC NAND flash chip with the cubic organization described in
Section 2 of the paper (horizontal layers stacked along *z*, word lines within
each layer separated by select-line transistors, charge-trap cells formed by a
single vertical etching pass).

The model reproduces, at the level of *observable device parameters*, the
process characteristics reported by the paper's chip characterization:

- **intra-layer similarity** -- WLs on the same h-layer are virtually
  equivalent (BER, loop counts, optimal read offsets) up to RTN-scale noise;
- **inter-layer variability** -- large, aging-dependent layer-to-layer BER
  differences that are hard to predict offline;
- **per-block spread** -- blocks at different die locations have different
  variability magnitudes.
"""

from repro.nand.errors import (
    NandError,
    AddressError,
    ProgramOrderError,
    ProgramWindowError,
    UncorrectableError,
    UnprogrammedReadError,
    WearOutError,
)
from repro.nand.geometry import BlockGeometry, SSDGeometry, PageAddress, WLAddress
from repro.nand.timing import NandTiming
from repro.nand.reliability import AgingState, ReliabilityModel
from repro.nand.ispp import IsppEngine, ProgramParams, LoopInterval, WLProgramProfile
from repro.nand.read_retry import ReadRetryModel, ReadParams
from repro.nand.ecc import EccEngine
from repro.nand.chip import NandChip, ProgramResult, ReadResult

__all__ = [
    "NandError",
    "AddressError",
    "ProgramOrderError",
    "ProgramWindowError",
    "UncorrectableError",
    "UnprogrammedReadError",
    "WearOutError",
    "BlockGeometry",
    "SSDGeometry",
    "PageAddress",
    "WLAddress",
    "NandTiming",
    "AgingState",
    "ReliabilityModel",
    "IsppEngine",
    "ProgramParams",
    "LoopInterval",
    "WLProgramProfile",
    "ReadRetryModel",
    "ReadParams",
    "EccEngine",
    "NandChip",
    "ProgramResult",
    "ReadResult",
]
