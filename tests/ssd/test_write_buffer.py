"""Tests for the write buffer (staging, coalescing, utilization)."""

import pytest
from hypothesis import given, strategies as st

from repro.ssd.write_buffer import WriteBuffer


@pytest.fixture
def buffer():
    return WriteBuffer(capacity_pages=8)


class TestAdmission:
    def test_admit_occupies_slot(self, buffer):
        assert buffer.admit(5, "data", waiter=None) is False
        assert buffer.staged_pages == 1
        assert buffer.occupancy == 1
        assert buffer.free_slots == 7

    def test_coalesce_same_lpn(self, buffer):
        buffer.admit(5, "old", waiter="r1")
        coalesced = buffer.admit(5, "new", waiter="r2")
        assert coalesced is True
        assert buffer.staged_pages == 1
        assert buffer.latest_data(5) == "new"
        assert buffer.coalesced_writes == 1

    def test_full_buffer_rejects(self, buffer):
        for lpn in range(8):
            buffer.admit(lpn, None, None)
        assert not buffer.can_admit(99)
        assert buffer.can_admit(3)  # coalescing still allowed
        with pytest.raises(RuntimeError):
            buffer.admit(99, None, None)

    def test_utilization(self, buffer):
        for lpn in range(4):
            buffer.admit(lpn, None, None)
        assert buffer.utilization == pytest.approx(0.5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)


class TestFlushLifecycle:
    def test_pop_group_fifo(self, buffer):
        for lpn in (9, 3, 7):
            buffer.admit(lpn, None, None)
        group = buffer.pop_group(2)
        assert [entry.lpn for entry in group] == [9, 3]
        assert buffer.staged_pages == 1
        assert buffer.inflight_pages == 2
        assert buffer.occupancy == 3  # in-flight still occupies slots

    def test_complete_frees_slots(self, buffer):
        buffer.admit(1, None, None)
        group = buffer.pop_group(3)
        buffer.complete(group)
        assert buffer.occupancy == 0
        assert not buffer.contains(1)

    def test_complete_unknown_entry_rejected(self, buffer):
        buffer.admit(1, None, None)
        group = buffer.pop_group(1)
        buffer.complete(group)
        with pytest.raises(ValueError):
            buffer.complete(group)

    def test_pop_group_validation(self, buffer):
        with pytest.raises(ValueError):
            buffer.pop_group(0)

    def test_waiters_preserved_through_flush(self, buffer):
        buffer.admit(1, None, waiter="w1")
        buffer.admit(1, None, waiter="w2")
        group = buffer.pop_group(1)
        assert group[0].waiters == ["w1", "w2"]


class TestReadCoherence:
    def test_contains_staged_and_inflight(self, buffer):
        buffer.admit(1, "v1", None)
        assert buffer.contains(1)
        group = buffer.pop_group(1)
        assert buffer.contains(1)
        buffer.complete(group)
        assert not buffer.contains(1)

    def test_staged_beats_inflight(self, buffer):
        buffer.admit(1, "v1", None)
        buffer.pop_group(1)
        buffer.admit(1, "v2", None)  # rewrite while in flight: new slot
        assert buffer.staged_pages == 1
        assert buffer.inflight_pages == 1
        assert buffer.latest_data(1) == "v2"

    def test_latest_data_missing(self, buffer):
        with pytest.raises(KeyError):
            buffer.latest_data(42)


class TestVersioning:
    def test_versions_increment(self, buffer):
        buffer.admit(1, None, None)
        assert buffer.latest_version(1) == 1
        buffer.admit(1, None, None)
        assert buffer.latest_version(1) == 2

    def test_inflight_entry_version_stale_after_rewrite(self, buffer):
        buffer.admit(1, "v1", None)
        group = buffer.pop_group(1)
        buffer.admit(1, "v2", None)
        assert group[0].version == 1
        assert buffer.latest_version(1) == 2

    def test_never_written_version_zero(self, buffer):
        assert buffer.latest_version(77) == 0


class TestVersionPruning:
    """Regression: ``_versions`` grew monotonically over the whole LPN
    space (never pruned) -- an unbounded leak on long runs."""

    def test_version_dropped_when_last_copy_leaves(self, buffer):
        buffer.admit(1, None, None)
        group = buffer.pop_group(1)
        buffer.complete(group)
        assert buffer._versions == {}
        assert buffer.latest_version(1) == 0

    def test_versions_bounded_under_churn(self):
        buffer = WriteBuffer(capacity_pages=4)
        for lpn in range(5000):
            buffer.admit(lpn, None, None)
            buffer.complete(buffer.pop_group(4))
        assert len(buffer._versions) <= buffer.capacity
        assert buffer.occupancy == 0
        assert buffer._versions == {}

    def test_version_survives_while_any_copy_is_buffered(self, buffer):
        buffer.admit(1, "v1", None)
        first = buffer.pop_group(1)
        buffer.admit(1, "v2", None)  # staged again while v1 in flight
        buffer.complete(first)
        # staged copy still present: the version counter must survive so
        # the next coalesce/flush keeps strictly increasing versions
        assert buffer.latest_version(1) == 2
        second = buffer.pop_group(1)
        buffer.complete(second)
        assert buffer.latest_version(1) == 0

    def test_out_of_order_completion_of_two_versions(self, buffer):
        buffer.admit(1, "v1", None)
        first = buffer.pop_group(1)
        buffer.admit(1, "v2", None)
        second = buffer.pop_group(1)
        assert buffer.latest_data(1) == "v2"  # newest in-flight copy wins
        buffer.complete(second)  # flashes can complete out of order
        assert buffer.latest_version(1) == 1 + 1  # v1 still in flight
        buffer.complete(first)
        assert buffer.latest_version(1) == 0
        assert buffer.occupancy == 0

    def test_complete_rejects_entry_completed_twice(self, buffer):
        buffer.admit(1, None, None)
        buffer.admit(2, None, None)
        group = buffer.pop_group(2)
        buffer.complete(group)
        with pytest.raises(ValueError):
            buffer.complete([group[0]])


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["admit", "pop", "complete"]),
                  st.integers(min_value=0, max_value=5)),
        max_size=60,
    )
)
def test_buffer_accounting_invariants(operations):
    """Occupancy == staged + inflight and never exceeds capacity, under
    arbitrary interleavings of admissions, pops, and completions."""
    buffer = WriteBuffer(capacity_pages=6)
    inflight_groups = []
    for op, value in operations:
        if op == "admit":
            if buffer.can_admit(value):
                buffer.admit(value, None, None)
        elif op == "pop":
            group = buffer.pop_group(3)
            if group:
                inflight_groups.append(group)
        elif op == "complete" and inflight_groups:
            buffer.complete(inflight_groups.pop(0))
        assert buffer.occupancy == buffer.staged_pages + buffer.inflight_pages
        assert 0 <= buffer.occupancy <= buffer.capacity
        assert 0.0 <= buffer.utilization <= 1.0
