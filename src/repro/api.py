"""Stable high-level entry point: configure, run, observe.

:func:`run_simulation` is the one call every front end goes through
(CLI, benchmarks, examples, notebooks): it builds the SSD, prefills it,
replays a workload, and optionally attaches the :mod:`repro.obs`
tracer and metrics sampler.  Everything it returns is packed into a
:class:`SimulationResult`, so callers never reach into the simulation
objects themselves -- the facade is the compatibility surface; the
internals behind it are free to move.

Two call forms, verified byte-identical by the golden-trace suite:

- **Spec form** (preferred): pass one
  :class:`~repro.specs.SimulationSpec` --

      spec = SimulationSpec(config=SSDConfig(), workload="OLTP",
                            ftl="cube", seed=7)
      result = run_simulation(spec)

- **Kwarg form** (back-compat shim): the historical flat signature --

      result = run_simulation(SSDConfig(), "OLTP", ftl="cube",
                              n_requests=2000, trace="memory")

  It simply builds the equivalent spec (:func:`spec_from_kwargs`) and
  runs it.

Multi-tenant scenarios, NCQ replay, and trace-file workloads are only
reachable through the spec form (they do not fit flat kwargs -- that is
why the spec API exists).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel import RunSpec

from repro.obs.metrics import MetricsSample
from repro.obs.profile import WallClockProfiler
from repro.obs.registry import TelemetryRegistry
from repro.obs.trace import InMemorySink, JsonlSink, Span, Tracer
from repro.specs import HostSpec, RunOptions, SimulationSpec, WorkloadSpec
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.ssd.stats import SimulationStats
from repro.workloads.base import Trace


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    stats: SimulationStats
    #: recorded spans when ``trace="memory"`` was requested, else None
    spans: Optional[List[Span]] = None
    #: metrics timeline when ``metrics_interval`` was set, else None
    metrics: Optional[List[MetricsSample]] = None
    #: path of the written JSONL trace when ``trace`` was a path
    trace_path: Optional[str] = None
    #: registry snapshot when ``telemetry=True`` was requested, else None
    telemetry: Optional[dict] = None
    #: wall-clock section attribution when ``profile=True``, else None
    profile: Optional[dict] = None
    #: invariant-checker report when ``check=`` was requested, else None
    #: (violation counts, oracle stats, and the ``state_digest`` of the
    #: final logical state for differential comparisons)
    check: Optional[dict] = None
    #: path of the written run-artifact directory when ``artifact_dir``
    #: was set, else None (see :mod:`repro.obs.artifact`)
    artifact: Optional[str] = None

    @property
    def iops(self) -> float:
        return self.stats.iops

    def to_dict(self) -> dict:
        """The schema-v2 result dict (same as ``stats.to_dict()``)."""
        return self.stats.to_dict()

    def breakdown(self) -> str:
        """Per-stage-group latency decomposition of the recorded trace."""
        from repro.obs.analyze import breakdown_report, load_trace

        if self.spans is not None:
            return breakdown_report(self.spans)
        if self.trace_path is not None:
            return breakdown_report(load_trace(self.trace_path))
        raise ValueError("run with trace='memory' or trace=PATH first")

    def telemetry_report(self) -> str:
        """ASCII heatmaps/histograms of the device telemetry snapshot."""
        from repro.obs.analyze import telemetry_report

        if self.telemetry is None:
            raise ValueError("run with telemetry=True first")
        return telemetry_report(self.telemetry)


def spec_from_kwargs(
    config: SSDConfig,
    workload: Union[str, Trace],
    ftl: str = "cube",
    *,
    queue_depth: int = 32,
    warmup_requests: int = 0,
    prefill: float = 0.9,
    n_requests: int = 8000,
    seed: int = 7,
    trace: Optional[str] = None,
    metrics_interval: Optional[float] = None,
    telemetry: bool = False,
    profile: bool = False,
    open_loop: bool = False,
    max_events: Optional[int] = None,
    check=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    artifact_dir: Optional[str] = None,
    artifact_every: Optional[float] = None,
    **ftl_kwargs,
) -> SimulationSpec:
    """The :class:`~repro.specs.SimulationSpec` equivalent of the legacy
    flat-kwarg :func:`run_simulation` call -- the back-compat mapping,
    pinned in one place.

    ``open_loop=True`` maps to an *unbounded* open-loop
    :class:`~repro.specs.HostSpec` (``queue_depth=None``), preserving
    the historical ``run_open_loop`` semantics; NCQ replay (finite
    depth + arrivals) is spec-form only.
    """
    if isinstance(workload, str):
        workload = WorkloadSpec(workload, n_requests=n_requests)
    host = HostSpec(
        queue_depth=None if open_loop else queue_depth,
        open_loop=open_loop,
    )
    options = RunOptions(
        trace=trace,
        metrics_interval=metrics_interval,
        telemetry=telemetry,
        profile=profile,
        check=check,
        max_events=max_events,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        resume_from=resume_from,
        artifact_dir=artifact_dir,
        artifact_every=artifact_every,
    )
    return SimulationSpec(
        config=config,
        workload=workload,
        ftl=ftl,
        host=host,
        options=options,
        warmup_requests=warmup_requests,
        prefill=prefill,
        seed=seed,
        ftl_kwargs=dict(ftl_kwargs),
    )


def run_simulation(
    config: Union[SSDConfig, SimulationSpec],
    workload: Union[str, Trace, None] = None,
    ftl: str = "cube",
    *,
    queue_depth: int = 32,
    warmup_requests: int = 0,
    prefill: float = 0.9,
    n_requests: int = 8000,
    seed: int = 7,
    trace: Optional[str] = None,
    metrics_interval: Optional[float] = None,
    telemetry: bool = False,
    profile: bool = False,
    open_loop: bool = False,
    max_events: Optional[int] = None,
    check=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    artifact_dir: Optional[str] = None,
    artifact_every: Optional[float] = None,
    **ftl_kwargs,
) -> SimulationResult:
    """Build, prefill, and run one SSD simulation.

    Accepts either one :class:`~repro.specs.SimulationSpec` as the sole
    positional argument (the preferred form) or the legacy flat kwargs
    below, which :func:`spec_from_kwargs` maps to the equivalent spec --
    the two forms produce byte-identical results.

    Parameters
    ----------
    config:
        The SSD to simulate, or a complete
        :class:`~repro.specs.SimulationSpec` (then every other argument
        must be left at its default).
    workload:
        A workload name (``"OLTP"``, ``"Proxy"``, ...; generated with
        ``n_requests`` / ``seed``), a ``trace:<path>`` reference, or a
        pre-built :class:`~repro.workloads.base.Trace` (then
        ``n_requests`` and ``seed`` are ignored).
    ftl:
        FTL variant name (``"page"``, ``"vert"``, ``"cube"``, ...).
    trace:
        ``None`` disables tracing (the default; the simulation is
        bit-for-bit the untraced run), ``"memory"`` records spans into
        ``result.spans``, any other string is a path to stream a JSONL
        trace to.
    metrics_interval:
        Simulated microseconds between metrics snapshots; ``None``
        disables sampling.
    telemetry:
        Attach a :class:`~repro.obs.registry.TelemetryRegistry` with
        the device instruments (per-die busy time, queue depths,
        per-h-layer retries/tPROG, ORT hits) and return its snapshot
        in ``result.telemetry``.  Off by default; an untelemetered run
        is bit-for-bit the plain run.
    profile:
        Attach a :class:`~repro.obs.profile.WallClockProfiler` and
        return its section attribution in ``result.profile``.
    open_loop:
        Replay at recorded arrival times instead of closed-loop at
        ``queue_depth`` (the trace must carry arrivals).
    check:
        ``None`` disables runtime invariant checking (the default; the
        simulation is bit-for-bit the unchecked run).  ``True`` /
        ``"on"`` attaches an :class:`~repro.check.InvariantChecker`
        (per-event invariants plus one deep audit at the end);
        ``"strict"`` also deep-audits after every erase and
        periodically during the run.  A :class:`~repro.check.CheckConfig`
        passes through as-is.  The report lands in ``result.check``;
        any violation raises
        :class:`~repro.check.InvariantViolation`.
    checkpoint_every:
        Write a checkpoint every N completed host requests into
        ``checkpoint_dir`` (required together).  The run replays in
        quiescent segments of N requests (a deterministic scheduling
        change; see docs/PERSISTENCE.md) and can be resumed
        byte-identically from any checkpoint.  Incompatible with
        ``trace``, ``profile``, ``metrics_interval``, ``open_loop``
        and ``max_events``.
    resume_from:
        Path to a checkpoint directory to resume from.  ``config``,
        ``ftl``, ``workload`` and ``seed`` must match the original
        run (validated against the checkpoint header); ``queue_depth``,
        ``warmup_requests``, ``checkpoint_every`` and the check level
        are taken from the header.
    artifact_dir:
        Write a self-contained run-artifact directory under this base
        path (``<artifact_dir>/<run_id>/``; see
        :mod:`repro.obs.artifact`): the spec, result, latency quantile
        grids, a windowed telemetry time-series, tail/typical exemplar
        spans, and a typed manifest.  ``None`` (the default) disables
        artifacts; a run without them is bit-for-bit the plain run.
        The written path lands in ``result.artifact``.
    artifact_every:
        Simulated microseconds between telemetry time-series windows in
        the artifact (default 1000.0).
    """
    if isinstance(config, SimulationSpec):
        if workload is not None or ftl_kwargs:
            raise TypeError(
                "pass either one SimulationSpec or the flat kwarg form, "
                "not both"
            )
        return run_spec(config)
    return run_spec(
        spec_from_kwargs(
            config,
            workload,
            ftl,
            queue_depth=queue_depth,
            warmup_requests=warmup_requests,
            prefill=prefill,
            n_requests=n_requests,
            seed=seed,
            trace=trace,
            metrics_interval=metrics_interval,
            telemetry=telemetry,
            profile=profile,
            open_loop=open_loop,
            max_events=max_events,
            check=check,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
            artifact_dir=artifact_dir,
            artifact_every=artifact_every,
            **ftl_kwargs,
        )
    )


def run_spec(spec: SimulationSpec) -> SimulationResult:
    """Execute one :class:`~repro.specs.SimulationSpec`.

    The single executor behind both :func:`run_simulation` call forms:
    every option lives on the spec, so the kwarg shim cannot drift from
    the spec path.
    """
    from repro.check import InvariantChecker, parse_check_level

    config = spec.config
    host = spec.host
    options = spec.options
    if options.checkpoint_every is not None or options.resume_from is not None:
        incompatible = {
            "trace": options.trace,
            "profile": options.profile or None,
            "metrics_interval": options.metrics_interval,
            "open_loop": host.mode if host.mode != "closed" else None,
            "max_events": options.max_events,
            "tenants": host.tenants or None,
            "artifact_dir": options.artifact_dir,
        }
        bad = sorted(key for key, value in incompatible.items() if value)
        if bad:
            raise ValueError(
                f"checkpointing is incompatible with {', '.join(bad)} "
                "(see docs/PERSISTENCE.md)"
            )
        from repro.persist import run_checkpointed

        return run_checkpointed(
            config,
            spec.workload,
            spec.ftl,
            queue_depth=host.queue_depth,
            warmup_requests=spec.warmup_requests,
            prefill=spec.prefill,
            seed=spec.seed,
            telemetry=options.telemetry,
            check=options.check,
            checkpoint_every=options.checkpoint_every,
            checkpoint_dir=options.checkpoint_dir,
            resume_from=options.resume_from,
            spec=spec,
            **spec.ftl_kwargs,
        )

    artifacts = options.artifact_dir is not None
    tracer: Optional[Tracer] = None
    sink = None
    if options.trace is not None:
        sink = (
            InMemorySink() if options.trace == "memory"
            else JsonlSink(options.trace)
        )
        tracer = Tracer(sink)
    exemplars = None
    if artifacts:
        from repro.obs.exemplars import ExemplarRecorder
        from repro.obs.trace import NullSink

        # exemplars ride the span stream: give an artifact-only run a
        # tracer over a null sink, and wrap whichever sink is active so
        # the requested trace output is unchanged byte for byte
        if tracer is None:
            tracer = Tracer(NullSink())
        exemplars = ExemplarRecorder(tracer.sink, seed=spec.seed)
        tracer.sink = exemplars
        tracer.exemplars = exemplars
    # artifacts always embed a telemetry time-series, even when the
    # caller did not ask for result.telemetry
    registry = (
        TelemetryRegistry() if (options.telemetry or artifacts) else None
    )
    profiler = WallClockProfiler() if options.profile else None
    checker = None
    check_config = parse_check_level(options.check)
    if check_config is not None:
        # the data-integrity oracle reads content tags back; forcing
        # store_tags on changes only what the chips *remember*, never
        # any timing or random draw, so checked and unchecked runs stay
        # event-for-event identical
        if not config.store_tags:
            config = replace(config, store_tags=True)
        checker = InvariantChecker(check_config)
        checker.context.update(
            ftl=spec.ftl,
            workload=spec.workload_name,
            seed=spec.seed,
            check=check_config.level,
        )
    if profiler is not None:
        profiler.push("setup")
    sim = SSDSimulation(
        config,
        ftl=spec.ftl,
        tracer=tracer,
        telemetry=registry,
        profiler=profiler,
        checker=checker,
        **spec.ftl_kwargs,
    )
    recorder = None
    if artifacts:
        from repro.obs.timeseries import (
            DEFAULT_INTERVAL_US,
            TimeSeriesRecorder,
        )

        recorder = TimeSeriesRecorder(
            registry,
            sim.controller.engine,
            interval_us=options.artifact_every or DEFAULT_INTERVAL_US,
        )
        sim.timeseries = recorder
    # live progress is independent of artifacts: any run may report to
    # the process-wide sink the shard pool installed (None otherwise)
    from repro.parallel.progress import get_progress_sink, make_progress_hook

    progress_sink = get_progress_sink()
    if progress_sink is not None:
        sim.progress = make_progress_hook(progress_sink)
    if spec.prefill > 0:
        sim.prefill(spec.prefill)
    trace = spec.build_trace()
    if profiler is not None:
        profiler.pop()
    from repro.ssd.host import replay

    try:
        stats = replay(
            sim,
            trace,
            mode=host.mode,
            queue_depth=host.queue_depth,
            warmup_requests=spec.warmup_requests,
            max_events=options.max_events,
            metrics_interval_us=options.metrics_interval,
        )
    finally:
        if tracer is not None:
            tracer.close()
    # finalize before the telemetry snapshot so collected gauges include
    # the end-of-run deep audit
    check_report = checker.finalize() if checker is not None else None
    profile_report = profiler.to_dict() if profiler is not None else None
    artifact_path = None
    if artifacts:
        from repro.obs.artifact import write_artifact

        artifact_path = write_artifact(
            options.artifact_dir,
            spec,
            stats,
            timeseries=recorder,
            exemplars=exemplars,
            telemetry=registry.snapshot(),
            profile=profile_report,
            check=check_report,
        )
    return SimulationResult(
        stats=stats,
        spans=sink.spans if isinstance(sink, InMemorySink) else None,
        metrics=stats.metrics,
        trace_path=(
            options.trace if options.trace not in (None, "memory") else None
        ),
        # result.telemetry keeps its opt-in shape: artifact runs embed
        # the snapshot in the artifact without changing --json output
        telemetry=(
            registry.snapshot()
            if registry is not None and options.telemetry
            else None
        ),
        profile=profile_report,
        check=check_report,
        artifact=artifact_path,
    )


@dataclass
class BatchResult:
    """What :func:`run_many` produced for a batch of named runs.

    ``results`` is aligned with the input specs (input order, not
    completion order); a failed shard leaves ``None`` there and an entry
    in ``errors``.  ``telemetry`` is the combined registry snapshot
    merged across the specs that requested telemetry (see
    :func:`repro.parallel.merge.merge_snapshots` for the per-kind merge
    semantics), or ``None`` when no spec did.
    """

    names: List[str]
    results: List[Optional[SimulationResult]]
    errors: Dict[str, str] = field(default_factory=dict)
    telemetry: Optional[dict] = None
    #: names of shards relaunched after a worker hard-died (``retries=``)
    retried: List[str] = field(default_factory=list)
    #: names of shards loaded from a sweep checkpoint dir instead of run
    cached: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def result_for(self, name: str) -> SimulationResult:
        result = self.results[self.names.index(name)]
        if result is None:
            raise KeyError(
                f"run {name!r} failed: {self.errors.get(name, 'unknown error')}"
            )
        return result


def run_many(
    specs: Sequence["RunSpec"],
    jobs: int = 1,
    base_seed: int = 7,
    on_progress: Optional[Callable[[str, bool], None]] = None,
    retries: int = 0,
    checkpoint_dir: Optional[str] = None,
    on_heartbeat: Optional[Callable[[str, dict], None]] = None,
) -> BatchResult:
    """Run a batch of :class:`~repro.parallel.RunSpec` runs, sharded
    across up to ``jobs`` worker processes.

    The batch result is a pure function of ``(specs, base_seed)``: each
    spec's seed is its pinned ``seed`` or ``derive_seed(base_seed,
    spec.name)``, shards are crash-isolated (a dying worker fails only
    its own run), and results come back in spec order.  ``jobs=1`` runs
    everything inline and is the reference the parallel path reproduces
    bit-for-bit.

    ``on_progress`` (if given) is called with ``(name, ok)`` as each run
    finishes, in completion order.  ``on_heartbeat`` (if given) receives
    ``(name, payload)`` live-progress messages while runs are still in
    flight -- ``payload`` carries ``completed``/``total`` request counts
    and the shard's simulated-time watermark ``sim_us`` (see
    :mod:`repro.parallel.progress`).

    ``retries`` relaunches shards whose worker hard-died (same spec,
    same derived seed -- see :func:`repro.parallel.run_shards`); the
    names of retried shards land in ``BatchResult.retried`` and the
    ``shard_retries_total`` counter in ``BatchResult.telemetry``.
    ``checkpoint_dir`` makes the batch resumable: completed runs are
    saved there as they land, and a rerun with the same specs and base
    seed loads them (``BatchResult.cached``) instead of re-running.  A
    SIGINT raises :class:`~repro.parallel.ShardsInterrupted` carrying
    the completed outcomes.
    """
    from repro.parallel import merge_snapshots, run_shards, specs_to_shards

    shards = specs_to_shards(specs, base_seed)
    progress = None
    if on_progress is not None:
        callback = on_progress

        def progress(outcome):
            callback(outcome.name, outcome.ok)

    registry = TelemetryRegistry() if retries > 0 else None
    if checkpoint_dir is not None:
        from repro.persist import run_shards_resumable

        outcomes = run_shards_resumable(
            shards,
            jobs=jobs,
            checkpoint_dir=checkpoint_dir,
            base_seed=base_seed,
            on_progress=progress,
            retries=retries,
            registry=registry,
            heartbeat=on_heartbeat,
        )
    else:
        outcomes = run_shards(
            shards,
            jobs=jobs,
            on_progress=progress,
            retries=retries,
            registry=registry,
            heartbeat=on_heartbeat,
        )
    results: List[Optional[SimulationResult]] = []
    errors: Dict[str, str] = {}
    for outcome in outcomes:
        if outcome.ok:
            results.append(outcome.result)
        else:
            results.append(None)
            errors[outcome.name] = outcome.error or "unknown error"
    retried = [outcome.name for outcome in outcomes if outcome.retried]
    telemetered = [
        r.telemetry for r in results if r is not None and r.telemetry is not None
    ]
    if registry is not None and retried:
        telemetered.append(registry.snapshot())
    return BatchResult(
        names=[spec.name for spec in specs],
        results=results,
        errors=errors,
        telemetry=merge_snapshots(telemetered) if telemetered else None,
        retried=retried,
        cached=[outcome.name for outcome in outcomes if outcome.cached],
    )


@dataclass
class TenantScenarioResult:
    """A multi-tenant run plus the per-tenant solo baselines.

    ``shared`` is the all-tenants-together run; ``solo[name]`` replays
    exactly tenant *name*'s stream alone on an identical device (same
    derived seeds, same partition, same arrival process -- the
    per-tenant seed rule guarantees the stream is bit-identical with or
    without the other tenants present).  The difference between the two
    is, by construction, pure cross-tenant interference.
    """

    shared: SimulationResult
    solo: Dict[str, SimulationResult]

    def interference_matrix(self) -> Dict[str, dict]:
        """Per-tenant solo-vs-shared comparison.

        Each row: solo/shared p99 (reads and writes pooled), the p99
        slowdown factor (>= 1 means the tenant is slower when sharing),
        and solo/shared IOPS.
        """
        matrix: Dict[str, dict] = {}
        shared_tenants = self.shared.stats.tenants or {}
        for name, solo_result in self.solo.items():
            solo_slice = (solo_result.stats.tenants or {}).get(name)
            shared_slice = shared_tenants.get(name)
            if solo_slice is None or shared_slice is None:
                continue
            solo_p99 = solo_slice.p99_us
            shared_p99 = shared_slice.p99_us
            matrix[name] = {
                "solo_p99_us": solo_p99,
                "shared_p99_us": shared_p99,
                "p99_slowdown": (shared_p99 / solo_p99) if solo_p99 > 0 else 0.0,
                "solo_iops": solo_slice.iops(solo_result.stats.duration_us),
                "shared_iops": shared_slice.iops(self.shared.stats.duration_us),
            }
        return matrix

    def to_dict(self) -> dict:
        return {
            "scenario": self.shared.to_dict(),
            "solo": {
                name: result.to_dict() for name, result in self.solo.items()
            },
            "interference": self.interference_matrix(),
        }


def run_tenant_scenario(
    spec: SimulationSpec,
    jobs: int = 1,
    on_heartbeat: Optional[Callable[[str, dict], None]] = None,
) -> TenantScenarioResult:
    """Run a multi-tenant spec plus one solo baseline per tenant.

    The shared run and the N solo runs are independent simulations (N+1
    runs total), sharded across up to ``jobs`` workers.  Every run pins
    the scenario's own seed, so the tenant streams in the solo runs are
    bit-identical to their shared-run counterparts and the resulting
    :meth:`~TenantScenarioResult.interference_matrix` isolates
    cross-tenant interference.
    """
    from dataclasses import replace as dc_replace

    from repro.parallel import RunSpec

    if not spec.host.tenants:
        raise ValueError("run_tenant_scenario needs a spec with host.tenants")
    run_specs = [RunSpec(name="shared", spec=spec, seed=spec.seed)]
    for tenant in spec.host.tenants:
        solo_spec = dc_replace(
            spec, host=replace(spec.host, tenants=(tenant,))
        )
        run_specs.append(
            RunSpec(name=f"solo:{tenant.name}", spec=solo_spec, seed=spec.seed)
        )
    batch = run_many(
        run_specs, jobs=jobs, base_seed=spec.seed, on_heartbeat=on_heartbeat
    )
    if not batch.ok:
        failures = "; ".join(
            f"{name}: {error}" for name, error in sorted(batch.errors.items())
        )
        raise RuntimeError(f"tenant scenario runs failed: {failures}")
    return TenantScenarioResult(
        shared=batch.result_for("shared"),
        solo={
            tenant.name: batch.result_for(f"solo:{tenant.name}")
            for tenant in spec.host.tenants
        },
    )
