"""Read-retry model: optimal read-reference-voltage offsets and retries.

Section 2.3 of the paper: when a read returns uncorrectable errors, the
controller retries with shifted read reference voltages
:math:`V^{Read}_{Ref(i)} + \\Delta V^{Read}_{Ref(i)}` until the page
decodes; ``tREAD`` grows linearly with the number of retries.

The model aggregates the per-threshold offset vector :math:`\\mathbb{D}`
into a single integer *offset level* in ``[0, MAX_OFFSET]``:

- each (block, h-layer, aging) has a **stable optimal offset** -- the
  retention-induced :math:`V_{th}` shift, which grows with P/E cycles,
  retention time and layer severity.  All WLs of an h-layer share it
  (intra-layer similarity), while different h-layers differ (Sec. 4.2:
  "each h-layer in a block has different D");
- each individual read adds a small **transient deviation** (temperature,
  read disturb), which is what occasionally invalidates a cached offset.

A PS-unaware controller starts every failed read sweep from the default
references (offset 0), paying ``optimal`` retries.  A PS-aware controller
starts from a cached per-h-layer hint, paying ``|optimal - hint|``.

Calibration targets (Section 6.1): with offset-0 starts, no reads retry in
the fresh state, ~30 % retry at 2 K P/E + 1 month and ~90 % at 2 K P/E +
1 year; the PS-aware scheme cuts mean NumRetry by ~66 % (Fig. 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.nand.reliability import (
    AgingState,
    ReliabilityModel,
    hash_state,
    hash_unit,
    hash_unit_tail,
)

#: number of adjustable offset levels per direction (the paper's example
#: uses 7 representable offsets per threshold)
MAX_OFFSET = 7


@dataclass(frozen=True)
class ReadParams:
    """Operating parameters of one page read.

    ``offset_hint`` is the offset level used for the *first* sense.  The
    PS-unaware default is 0 (nominal references); a PS-aware controller
    passes the ORT entry of the target h-layer.
    """

    offset_hint: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.offset_hint <= MAX_OFFSET:
            raise ValueError(f"offset_hint must be in [0, {MAX_OFFSET}]")


class ReadRetryModel:
    """Maps (location, aging, read instance) to required retry counts."""

    def __init__(
        self,
        reliability: ReliabilityModel,
        drift_sqrt_coeff: float = 0.5,
        drift_linear_coeff: float = 2.5,
        transient_prob: float = 0.25,
        fresh_pe_threshold: int = 100,
    ) -> None:
        self.reliability = reliability
        self.drift_sqrt_coeff = drift_sqrt_coeff
        self.drift_linear_coeff = drift_linear_coeff
        if not 0.0 <= transient_prob <= 1.0:
            raise ValueError("transient_prob must be in [0, 1]")
        self.transient_prob = transient_prob
        self.fresh_pe_threshold = fresh_pe_threshold
        # premixed (seed, 0x7EAD, chip_id) prefixes of the per-read
        # transient draw, one per chip seen
        self._transient_states: dict = {}

    # ------------------------------------------------------------------

    def _drift_continuous(self, severity: float, aging: AgingState) -> float:
        """Continuous V_th drift in offset-level units."""
        if aging.pe_cycles < self.fresh_pe_threshold and aging.ret_frac == 0.0:
            return 0.0
        ret = aging.ret_frac
        pe = min(aging.pe_frac, 1.5)
        ret_term = self.drift_sqrt_coeff * ret**0.45 + self.drift_linear_coeff * ret
        layer_factor = 0.2 + 1.7 * severity
        return pe**1.2 * ret_term * layer_factor

    def stable_optimal(
        self, chip_id: int, block: int, layer: int, aging: AgingState
    ) -> int:
        """Stable optimal offset level of an h-layer under an aging state.

        Identical for every WL of the h-layer; deterministic per die
        location (the rounding noise models per-layer idiosyncrasy).
        """
        severity = float(self.reliability.layer_severity[layer])
        drift = self._drift_continuous(severity, aging)
        if drift == 0.0:
            return 0
        u = hash_unit(self.reliability.seed, 0x0FF5, chip_id, block, layer)
        return max(0, min(MAX_OFFSET, int(round(drift + (u - 0.5)))))

    def read_optimal(
        self, chip_id: int, block: int, layer: int, aging: AgingState, nonce: int
    ) -> int:
        """Optimal offset for one specific read: stable part + transient.

        ``nonce`` is a per-read counter; with probability
        ``transient_prob`` the read sees a +/-1 deviation (temperature or
        disturb transients).  The fresh state has no transients -- reads
        never retry on fresh blocks (Section 6.2).
        """
        stable = self.stable_optimal(chip_id, block, layer, aging)
        return self.transient_optimal(chip_id, block, layer, stable, aging, nonce)

    def transient_optimal(
        self,
        chip_id: int,
        block: int,
        layer: int,
        stable: int,
        aging: AgingState,
        nonce: int,
    ) -> int:
        """Per-read transient step on top of a known ``stable`` offset.

        Split out of :meth:`read_optimal` so callers that already hold
        the (precomputed) stable offset of the h-layer skip re-deriving
        it per read; the fresh-state short-circuit is preserved exactly.
        """
        if stable == 0 and aging.pe_cycles < self.fresh_pe_threshold:
            return 0
        state = self._transient_states.get(chip_id)
        if state is None:
            state = hash_state(self.reliability.seed, 0x7EAD, chip_id)
            self._transient_states[chip_id] = state
        u = hash_unit_tail(state, block, layer, nonce)
        if u < self.transient_prob / 2.0:
            return max(0, stable - 1)
        if u < self.transient_prob:
            return min(MAX_OFFSET, stable + 1)
        return stable

    @staticmethod
    def retries_needed(hint: int, optimal: int) -> int:
        """Number of retries to reach ``optimal`` when sensing starts at
        ``hint``.

        Retention shifts are directional, so the controller sweeps from
        the starting point toward the optimum; each step is one retry.
        """
        if not 0 <= hint <= MAX_OFFSET:
            raise ValueError("hint out of range")
        if not 0 <= optimal <= MAX_OFFSET:
            raise ValueError("optimal out of range")
        return abs(optimal - hint)
