"""Exception hierarchy for the NAND device model."""


class NandError(Exception):
    """Base class for all NAND device-model errors."""


class AddressError(NandError):
    """An address is outside the device geometry."""


class ProgramOrderError(NandError):
    """A program operation violates device ordering constraints.

    The 3D NAND model allows WLs of a block to be programmed in any order
    (the paper's Fig. 13 shows the three evaluated orders are reliability
    equivalent), but it still forbids programming a WL twice without an
    intervening block erase.
    """


class ProgramWindowError(NandError):
    """The requested (V_start, V_final) window cannot program the WL.

    Raised when the window is inverted or narrower than one ISPP step.
    """


class UnprogrammedReadError(NandError):
    """A read targeted a page that was never programmed since the last
    block erase."""


class UncorrectableError(NandError):
    """A read returned more raw bit errors than the ECC engine can correct,
    even after exhausting read retries."""


class WearOutError(NandError):
    """A block was erased beyond its rated endurance limit."""
