"""Paper-scale configuration sanity: the full 32-GB device."""


from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.synthetic import uniform_random_trace


class TestPaperScale:
    def test_geometry_matches_section_6_1(self):
        config = SSDConfig.paper_scale()
        geometry = config.geometry
        assert geometry.n_channels == 2
        assert geometry.chips_per_channel == 4
        assert geometry.blocks_per_chip == 428
        assert geometry.block.n_layers == 48
        assert geometry.block.wls_per_layer == 4
        assert geometry.block.pages_per_wl == 3
        assert geometry.block.page_size_bytes == 16 * 1024
        assert 30 <= geometry.total_bytes / 2**30 <= 34

    def test_paper_scale_simulation_runs(self):
        """A short trace on the full device (no prefill -- construction
        plus the hot path must scale to ~2 M physical pages)."""
        config = SSDConfig.paper_scale()
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 400, read_fraction=0.3, seed=3
        )
        stats = sim.run(trace, queue_depth=16)
        assert stats.completed_requests == 400
        assert stats.iops > 0
        sim.ftl.mapper.check_invariants()

    def test_mapping_tables_fit_in_memory(self):
        config = SSDConfig.paper_scale()
        sim = SSDSimulation(config, ftl="page")
        mapper = sim.ftl.mapper
        # int64 L2P + P2L + bool valid: well under 100 MB at 2 M pages
        total_bytes = (
            mapper._l2p.nbytes + mapper._p2l.nbytes + mapper._valid.nbytes
        )
        assert total_bytes < 100 * 2**20
