"""Property-based tests: write-buffer version accounting stays exact
and bounded under arbitrary admit / dispatch / complete churn.

Groups complete out of order (as flushes to different chips do in the
real datapath); after every operation ``check_invariants`` must pass,
the version table must stay bounded by the buffer capacity, and reads
must observe the freshest admitted copy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.write_buffer import WriteBuffer

CAPACITY = 12
N_LPNS = 8  # small space forces heavy coalescing and version churn

# op codes: 0 = admit, 1 = pop a WL group, 2 = complete an outstanding
# group (operand picks which, newest-first modulo the outstanding count)
OPS = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, N_LPNS * 4 - 1)),
    min_size=1,
    max_size=200,
)


class _Driver:
    def __init__(self):
        self.buffer = WriteBuffer(CAPACITY)
        self.groups = []  # dispatched, not yet completed
        self.latest = {}  # lpn -> data of the newest admitted copy
        self.admits = 0

    def admit(self, operand):
        lpn = operand % N_LPNS
        if not self.buffer.can_admit(lpn):
            return
        self.admits += 1
        data = (lpn, self.admits)
        before = self.buffer.latest_version(lpn)
        self.buffer.admit(lpn, data, waiter=None)
        assert self.buffer.latest_version(lpn) == before + 1
        self.latest[lpn] = data

    def pop(self, operand):
        group = self.buffer.pop_group(max_pages=1 + operand % 3)
        if group:
            self.groups.append(group)

    def complete(self, operand):
        if not self.groups:
            return
        group = self.groups.pop(operand % len(self.groups))
        self.buffer.complete(group)

    def apply(self, op, operand):
        (self.admit, self.pop, self.complete)[op](operand)


@settings(derandomize=True, max_examples=80, deadline=None)
@given(OPS)
def test_version_accounting_exact_and_bounded(ops):
    driver = _Driver()
    for op, operand in ops:
        driver.apply(op, operand)
        driver.buffer.check_invariants()
        # bounded: the table tracks buffered LPNs only, never the whole
        # touched-LPN space
        assert len(driver.buffer._versions) <= CAPACITY
        assert driver.buffer.occupancy <= CAPACITY


@settings(derandomize=True, max_examples=80, deadline=None)
@given(OPS)
def test_reads_see_freshest_copy(ops):
    driver = _Driver()
    for op, operand in ops:
        driver.apply(op, operand)
        for lpn, data in driver.latest.items():
            if driver.buffer.contains(lpn):
                assert driver.buffer.latest_data(lpn) == data


@settings(derandomize=True, max_examples=40, deadline=None)
@given(OPS)
def test_drained_buffer_is_empty(ops):
    driver = _Driver()
    for op, operand in ops:
        driver.apply(op, operand)
    # drain everything that is left
    while True:
        group = driver.buffer.pop_group(max_pages=CAPACITY)
        if not group:
            break
        driver.groups.append(group)
    while driver.groups:
        driver.complete(0)
    driver.buffer.check_invariants()
    assert driver.buffer.occupancy == 0
    assert len(driver.buffer._versions) == 0
