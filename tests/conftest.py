"""Shared fixtures for the test suite."""

import pytest

from repro.nand.chip import NandChip
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.nand.ispp import IsppEngine
from repro.nand.reliability import AgingState, ReliabilityModel
from repro.nand.timing import NandTiming


@pytest.fixture
def block_geometry():
    """The paper's block shape: 48 h-layers x 4 WLs, TLC."""
    return BlockGeometry()


@pytest.fixture
def small_geometry():
    """A small block shape for fast structural tests."""
    return BlockGeometry(n_layers=6, wls_per_layer=4, pages_per_wl=3,
                         page_size_bytes=4096)


@pytest.fixture
def ssd_geometry():
    return SSDGeometry(n_channels=2, chips_per_channel=2, blocks_per_chip=8,
                       block=BlockGeometry(n_layers=6, wls_per_layer=4))


@pytest.fixture
def reliability():
    return ReliabilityModel()


@pytest.fixture
def timing():
    return NandTiming()


@pytest.fixture
def ispp(timing):
    return IsppEngine(timing)


@pytest.fixture
def chip():
    """A default-geometry chip with few blocks."""
    return NandChip(chip_id=0, n_blocks=8)


@pytest.fixture
def quiet_chip():
    """A chip with environmental shifts disabled (deterministic ISPP)."""
    return NandChip(chip_id=0, n_blocks=8, env_shift_prob=0.0)


@pytest.fixture
def fresh():
    return AgingState(0, 0.0)


@pytest.fixture
def aged_eol():
    """End of life: 2 K P/E cycles with 1-year retention."""
    return AgingState(2000, 12.0)
