"""Opt-in runtime correctness tooling for the simulator.

- :class:`~repro.check.invariants.InvariantChecker` -- composable
  runtime invariants (mapping bijection, block lifecycle, free-pool and
  valid-page accounting, write-buffer versions, clock monotonicity)
  attached through the same pointer-test hook points the obs layer
  uses, so checks off means bit-for-bit the unchecked run.
- :class:`~repro.check.oracle.DataIntegrityOracle` -- a shadow store
  verifying every completed read end-to-end.
- :mod:`repro.check.fuzz` -- seeded randomized-workload differential
  fuzzing across FTLs (kept out of this namespace to avoid importing
  the full API stack; ``from repro.check import fuzz`` explicitly).

Enable via ``run_simulation(check=...)`` or the CLI ``--check`` /
``repro-ssd fuzz``.
"""

from repro.check.errors import InvariantViolation
from repro.check.invariants import (
    CheckConfig,
    InvariantChecker,
    parse_check_level,
)
from repro.check.oracle import DataIntegrityOracle, ShadowStore

__all__ = [
    "CheckConfig",
    "DataIntegrityOracle",
    "InvariantChecker",
    "InvariantViolation",
    "ShadowStore",
    "parse_check_level",
]
