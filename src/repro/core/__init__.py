"""Process-similarity-aware optimization machinery (the paper's Section 4/5).

This subpackage contains the paper's actual contribution, cleanly separated
from the device model it runs against:

- :mod:`repro.core.vfy_skip` -- redundant-verify elimination (Sec. 4.1.1);
- :mod:`repro.core.maxloop` -- spare-BER-margin (S_M) driven
  (V_start, V_final) adjustment (Sec. 4.1.2);
- :mod:`repro.core.program_order` -- horizontal-first / vertical-first /
  mixed-order program sequences (Sec. 4.1.3);
- :mod:`repro.core.safety` -- the post-program BER safety check
  (Sec. 4.1.4);
- :mod:`repro.core.ort` -- the optimal read-reference-offset table
  (Sec. 4.2 / 5.1);
- :mod:`repro.core.opm` -- the Optimal Parameter Manager (Sec. 5.1);
- :mod:`repro.core.wam` -- the WL Allocation Manager (Sec. 5.2).
"""

from repro.core.latency_predictor import LatencyPredictor, PredictionStats
from repro.core.maxloop import MarginTable, DEFAULT_MARGIN_TABLE, spare_margin
from repro.core.opm import LeaderObservation, OptimalParameterManager
from repro.core.ort import OptimalReadTable
from repro.core.program_order import (
    ProgramOrder,
    available_followers_after,
    follower_flags,
    horizontal_first,
    max_follower_run,
    mixed_order,
    program_sequence,
    vertical_first,
)
from repro.core.safety import SafetyChecker, SafetyVerdict
from repro.core.vfy_skip import n_skip_per_state, paper_n_skip, total_skipped
from repro.core.wam import ActiveBlockCursor, WLAllocationManager

__all__ = [
    "LatencyPredictor",
    "PredictionStats",
    "MarginTable",
    "DEFAULT_MARGIN_TABLE",
    "spare_margin",
    "LeaderObservation",
    "OptimalParameterManager",
    "OptimalReadTable",
    "ProgramOrder",
    "horizontal_first",
    "vertical_first",
    "mixed_order",
    "program_sequence",
    "follower_flags",
    "max_follower_run",
    "available_followers_after",
    "SafetyChecker",
    "SafetyVerdict",
    "n_skip_per_state",
    "paper_n_skip",
    "total_skipped",
    "ActiveBlockCursor",
    "WLAllocationManager",
]
