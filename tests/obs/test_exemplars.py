"""Exemplar selection: slowest-K, deterministic reservoir, GC-collision
flags, and the annotate side channel."""

from repro.obs.exemplars import ExemplarRecorder, link_tail_buckets
from repro.obs.trace import InMemorySink, Span


def _request(request, kind="read", start=0.0, end=100.0, lpn=0, **info):
    payload = {"kind": kind, "lpn": lpn, "n_pages": 1}
    payload.update(info)
    return Span(
        request=request, lpn=lpn, stage="request",
        start_us=start, end_us=end, info=payload,
    )


def _stage(request, stage, start, end, chip=None, lpn=0, **info):
    return Span(
        request=request, lpn=lpn, stage=stage,
        start_us=start, end_us=end, chip=chip, info=info,
    )


def _emit_read(recorder, request, latency, start=0.0, chip=0, retries=0):
    recorder.emit(
        _stage(request, "nand_read", start, start + latency, chip=chip,
               **({"retries": retries} if retries else {}))
    )
    recorder.emit(_request(request, start=start, end=start + latency))


class TestForwarding:
    def test_spans_forward_to_inner_sink_unchanged(self):
        inner = InMemorySink()
        recorder = ExemplarRecorder(inner)
        spans = [
            _stage(1, "nand_read", 0.0, 5.0, chip=0),
            _request(1, end=5.0),
            _stage(None, "erase", 0.0, 2000.0, chip=1),
        ]
        for span in spans:
            recorder.emit(span)
        assert inner.spans == spans


class TestSlowestK:
    def test_keeps_exactly_the_k_slowest(self):
        recorder = ExemplarRecorder(k_slowest=3, reservoir_size=2, seed=7)
        for request, latency in enumerate([10, 90, 20, 80, 30, 70, 40]):
            _emit_read(recorder, request, float(latency))
        slowest = recorder.to_dict()["kinds"]["read"]["slowest"]
        assert [r["latency_us"] for r in slowest] == [90.0, 80.0, 70.0]
        assert [r["request"] for r in slowest] == [1, 3, 5]

    def test_ties_keep_the_earlier_request(self):
        recorder = ExemplarRecorder(k_slowest=1, reservoir_size=1, seed=7)
        _emit_read(recorder, 1, 50.0)
        _emit_read(recorder, 2, 50.0)
        slowest = recorder.to_dict()["kinds"]["read"]["slowest"]
        assert [r["request"] for r in slowest] == [1]

    def test_kinds_are_separated(self):
        recorder = ExemplarRecorder(k_slowest=2, reservoir_size=2, seed=7)
        _emit_read(recorder, 1, 10.0)
        recorder.emit(_stage(2, "nand_program", 0.0, 700.0, chip=1))
        recorder.emit(_request(2, kind="write", end=700.0))
        kinds = recorder.to_dict()["kinds"]
        assert set(kinds) == {"read", "write"}
        assert kinds["write"]["count"] == 1


class TestReservoir:
    def test_same_seed_same_stream_same_reservoir(self):
        def run():
            recorder = ExemplarRecorder(k_slowest=2, reservoir_size=4, seed=42)
            for request in range(50):
                _emit_read(recorder, request, float(request % 7))
            return recorder.to_dict()

        assert run() == run()

    def test_different_seed_may_differ_but_stays_valid(self):
        def run(seed):
            recorder = ExemplarRecorder(k_slowest=2, reservoir_size=4, seed=seed)
            for request in range(50):
                _emit_read(recorder, request, float(request % 7))
            return recorder.to_dict()["kinds"]["read"]

        kinds = run(1)
        assert len(kinds["typical"]) == 4
        assert kinds["count"] == 50


class TestRecordContents:
    def test_stage_breakdown_retries_and_chips(self):
        recorder = ExemplarRecorder()
        recorder.emit(_stage(5, "chip_queue", 0.0, 10.0, chip=2))
        recorder.emit(_stage(5, "nand_read", 10.0, 60.0, chip=2, retries=3))
        recorder.emit(_request(5, end=60.0, lpn=123))
        record = recorder.to_dict()["kinds"]["read"]["slowest"][0]
        assert record["stages_us"] == {"chip_queue": 10.0, "nand_read": 50.0}
        assert record["retries"] == 3
        assert record["chips"] == [2]
        assert record["lpn"] == 123
        assert record["latency_us"] == 60.0

    def test_annotate_collects_layers_without_a_span(self):
        inner = InMemorySink()
        recorder = ExemplarRecorder(inner)
        recorder.annotate(7, 0, {"layer": 3})
        recorder.annotate(7, 1, {"layer": 1})
        recorder.annotate(7, 2, {"layer": 3})
        _emit_read(recorder, 7, 10.0)
        record = recorder.to_dict()["kinds"]["read"]["slowest"][0]
        assert record["layers"] == [1, 3]
        # the side channel must never leak a span into the trace
        assert all(s.stage != "annotate" for s in inner.spans)

    def test_tenant_passes_through(self):
        recorder = ExemplarRecorder()
        recorder.emit(_request(9, tenant="oltp", end=10.0))
        record = recorder.to_dict()["kinds"]["read"]["slowest"][0]
        assert record["tenant"] == "oltp"


class TestGcCollision:
    def test_overlapping_background_on_touched_chip_flags(self):
        recorder = ExemplarRecorder()
        recorder.emit(_stage(None, "gc_program", 40.0, 90.0, chip=0))
        _emit_read(recorder, 1, 60.0, start=50.0, chip=0)
        record = recorder.to_dict()["kinds"]["read"]["slowest"][0]
        assert record["gc_collision"] is True

    def test_background_on_other_chip_does_not_flag(self):
        recorder = ExemplarRecorder()
        recorder.emit(_stage(None, "erase", 40.0, 90.0, chip=5))
        _emit_read(recorder, 1, 60.0, start=50.0, chip=0)
        record = recorder.to_dict()["kinds"]["read"]["slowest"][0]
        assert record["gc_collision"] is False

    def test_disjoint_background_interval_does_not_flag(self):
        recorder = ExemplarRecorder()
        recorder.emit(_stage(None, "gc_read", 0.0, 10.0, chip=0))
        _emit_read(recorder, 1, 60.0, start=50.0, chip=0)
        record = recorder.to_dict()["kinds"]["read"]["slowest"][0]
        assert record["gc_collision"] is False


class TestTailLinks:
    def test_exemplars_land_in_their_buckets(self):
        recorder = ExemplarRecorder(k_slowest=4, reservoir_size=2, seed=7)
        for request, latency in enumerate([10.0, 95.0, 120.0, 200.0]):
            _emit_read(recorder, request, latency)
        thresholds = {
            "read": {
                "p90_us": 90.0, "p99_us": 100.0,
                "p999_us": 150.0, "max_us": 200.0,
            }
        }
        links = link_tail_buckets(recorder.to_dict(), thresholds)
        buckets = links["read"]["buckets"]
        assert buckets["p90-p99"] == [1]
        assert buckets["p99-p999"] == [2]
        assert buckets["p999-max"] == [3]
        assert links["read"]["thresholds"]["p999_us"] == 150.0
