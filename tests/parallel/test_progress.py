"""Live-progress plumbing: hook cadence, the process-wide sink, shard
heartbeats across worker pipes, and --log-level propagation."""

import pytest

from repro.obs.log import configure_logging, configured_level
from repro.parallel.progress import (
    get_progress_sink,
    make_progress_hook,
    set_progress_sink,
)
from repro.parallel.runner import ShardSpec, run_shards


class TestProgressHook:
    def test_fires_at_stride_multiples_and_completion(self):
        seen = []
        hook = make_progress_hook(seen.append, parts=4)
        for completed in range(1, 11):
            hook(completed, 10, sim_us=float(completed) * 5.0)
        # stride = 10 // 4 = 2: every even count, plus the final 10th
        assert [p["completed"] for p in seen] == [2, 4, 6, 8, 10]
        assert seen[-1] == {"completed": 10, "total": 10, "sim_us": 50.0}

    def test_total_smaller_than_parts_fires_only_at_completion(self):
        # tiny runs must not flood the pipe with one message per request
        # (a thousand-cell sweep has thousands of these hooks): only the
        # final completion is reported
        seen = []
        hook = make_progress_hook(seen.append, parts=16)
        for completed in range(1, 4):
            hook(completed, 3, sim_us=0.0)
        assert [p["completed"] for p in seen] == [3]

    def test_final_emit_is_deduped(self):
        # a resumed/segmented replay can re-report the final completion;
        # the hook forwards it once
        seen = []
        hook = make_progress_hook(seen.append, parts=4)
        for completed in range(1, 9):
            hook(completed, 8, sim_us=float(completed))
        hook(8, 8, sim_us=8.0)
        assert [p["completed"] for p in seen] == [2, 4, 6, 8]

    def test_cadence_is_deterministic(self):
        def run():
            seen = []
            hook = make_progress_hook(seen.append, parts=4)
            for completed in range(1, 101):
                hook(completed, 100, sim_us=float(completed))
            return seen

        assert run() == run()


class TestSinkRegistry:
    def test_round_trip_and_clear(self):
        assert get_progress_sink() is None
        sink = lambda payload: None  # noqa: E731
        set_progress_sink(sink)
        try:
            assert get_progress_sink() is sink
        finally:
            set_progress_sink(None)
        assert get_progress_sink() is None


def _emitting_worker(n):
    """Reports n completions through this process's bound sink."""
    sink = get_progress_sink()
    assert sink is not None, "worker should have a pipe-backed sink"
    hook = make_progress_hook(sink, parts=4)
    for completed in range(1, n + 1):
        hook(completed, n, sim_us=float(completed) * 2.0)
    return n


def _report_log_level():
    return configured_level()


class TestShardHeartbeats:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_heartbeats_reach_the_parent(self, jobs):
        beats = []
        specs = [
            ShardSpec("s0", _emitting_worker, {"n": 8}),
            ShardSpec("s1", _emitting_worker, {"n": 8}),
        ]
        outcomes = run_shards(specs, jobs=jobs, heartbeat=lambda name, p:
                              beats.append((name, p)))
        assert [o.ok for o in outcomes] == [True, True]
        names = {name for name, _ in beats}
        assert names == {"s0", "s1"}
        for name in ("s0", "s1"):
            mine = [p for n, p in beats if n == name]
            assert [p["completed"] for p in mine] == [2, 4, 6, 8]
            assert all(p["total"] == 8 for p in mine)
            assert mine[-1]["sim_us"] == 16.0

    def test_no_heartbeat_callback_means_no_sink_inline(self):
        specs = [ShardSpec("s0", _emitting_worker, {"n": 4})]
        outcomes = run_shards(specs, jobs=1)
        # the worker's assert would have failed the shard
        assert not outcomes[0].ok
        assert "sink" in outcomes[0].error


class TestLogLevelPropagation:
    def test_worker_inherits_the_parent_level(self):
        previous = configured_level()
        configure_logging("debug")
        try:
            specs = [ShardSpec("lvl", _report_log_level)]
            outcomes = run_shards(specs, jobs=2)
        finally:
            configure_logging(previous or "warning")
        assert outcomes[0].ok
        assert outcomes[0].result == "debug"
