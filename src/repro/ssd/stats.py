"""Latency / IOPS statistics collection and CDF helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.ftl.base import FTLCounters
    from repro.obs.metrics import MetricsSample

#: version stamp of the :meth:`SimulationStats.to_dict` layout; bump when
#: keys change shape so downstream tooling can dispatch (v2: typed counter
#: serialization, p999/max latency fields, optional metrics timeline)
SCHEMA_VERSION = 2


class LatencyStats:
    """Accumulates latency samples (microseconds) and summarizes them.

    Samples live in a geometrically grown float64 buffer: a run adds
    hundreds of thousands of samples one by one, and appending straight
    into the array (amortized O(1), no per-sample Python float object
    retained) replaces the old list-then-convert scheme.  The numpy view
    over the filled prefix is cached between queries, since a run
    summarizes the same distribution many times (mean, several
    percentiles, CDF).
    """

    _INITIAL_CAPACITY = 64

    def __init__(self) -> None:
        self._buffer = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._count = 0
        self._view: Optional[np.ndarray] = None

    def _reserve(self, extra: int) -> None:
        needed = self._count + extra
        capacity = len(self._buffer)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.float64)
        grown[: self._count] = self._buffer[: self._count]
        self._buffer = grown

    def add(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError("latency must be >= 0")
        if self._count == len(self._buffer):
            self._reserve(1)
        self._buffer[self._count] = latency_us
        self._count += 1
        self._view = None

    def extend(self, samples: Sequence[float]) -> None:
        """Bulk-append samples (checkpoint restore)."""
        values = np.fromiter((float(value) for value in samples), dtype=np.float64)
        if values.size:
            self._reserve(values.size)
            self._buffer[self._count : self._count + values.size] = values
            self._count += values.size
            self._view = None

    def sample_list(self) -> List[float]:
        """The raw samples as a plain list (checkpoint serialization);
        float64 -> Python float is exact, so values round-trip."""
        return self._buffer[: self._count].tolist()

    def __len__(self) -> int:
        return self._count

    @property
    def samples(self) -> np.ndarray:
        if self._view is None:
            self._view = self._buffer[: self._count]
        return self._view

    @property
    def mean_us(self) -> float:
        return float(np.mean(self.samples)) if self._count else 0.0

    @property
    def max_us(self) -> float:
        return float(np.max(self.samples)) if self._count else 0.0

    def percentile(self, p: float) -> float:
        """p-th percentile latency in microseconds (p in [0, 100])."""
        if not self._count:
            return 0.0
        return float(np.percentile(self.samples, p))

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted latencies, cumulative fraction) for CDF plots."""
        if not self._count:
            return np.array([]), np.array([])
        values = np.sort(self.samples)
        fractions = np.arange(1, len(values) + 1) / len(values)
        return values, fractions

    def fraction_below(self, threshold_us: float) -> float:
        if not self._count:
            return 0.0
        return float(np.mean(self.samples <= threshold_us))


def _latency_block(stats: LatencyStats) -> dict:
    return {
        "count": len(stats),
        "mean_us": stats.mean_us,
        "p50_us": stats.percentile(50),
        "p90_us": stats.percentile(90),
        "p99_us": stats.percentile(99),
        "p999_us": stats.percentile(99.9),
        "max_us": stats.max_us,
    }


@dataclass
class TenantStats:
    """Per-tenant slice of a multi-tenant run's statistics."""

    completed_requests: int = 0
    read_latency: LatencyStats = field(default_factory=LatencyStats)
    write_latency: LatencyStats = field(default_factory=LatencyStats)

    def iops(self, duration_us: float) -> float:
        if duration_us <= 0:
            return 0.0
        return self.completed_requests / (duration_us / 1e6)

    @property
    def p99_us(self) -> float:
        """p99 over reads and writes together (the interference metric)."""
        if not (len(self.read_latency) or len(self.write_latency)):
            return 0.0
        samples = np.concatenate(
            (self.read_latency.samples, self.write_latency.samples)
        )
        return float(np.percentile(samples, 99))

    def to_dict(self, duration_us: float = 0.0) -> dict:
        return {
            "completed_requests": self.completed_requests,
            "iops": self.iops(duration_us),
            "p99_us": self.p99_us,
            "read_latency": _latency_block(self.read_latency),
            "write_latency": _latency_block(self.write_latency),
        }


@dataclass
class SimulationStats:
    """Result of one simulation run."""

    ftl_name: str
    workload: str
    duration_us: float = 0.0
    completed_requests: int = 0
    read_latency: LatencyStats = field(default_factory=LatencyStats)
    write_latency: LatencyStats = field(default_factory=LatencyStats)
    counters: Optional["FTLCounters"] = None
    #: :class:`~repro.faults.counters.RecoveryCounters` of the run; only
    #: serialized when any recovery action fired, so fault-free output is
    #: unchanged
    recovery: Optional[object] = None
    #: time-sliced :class:`~repro.obs.metrics.MetricsSample` timeline;
    #: present only when the run sampled metrics
    metrics: Optional[List["MetricsSample"]] = None
    #: per-tenant statistics of a multi-tenant run, keyed by tenant name;
    #: None on single-stream runs so their serialized output is unchanged
    tenants: Optional[Dict[str, TenantStats]] = None

    @property
    def iops(self) -> float:
        """Completed host requests per second."""
        if self.duration_us <= 0:
            return 0.0
        return self.completed_requests / (self.duration_us / 1e6)

    def to_dict(self) -> dict:
        """JSON-serializable summary, result schema v2 (see
        docs/OBSERVABILITY.md for the layout contract)."""
        latency_block = _latency_block

        result = {
            "schema_version": SCHEMA_VERSION,
            "ftl": self.ftl_name,
            "workload": self.workload,
            "duration_us": self.duration_us,
            "completed_requests": self.completed_requests,
            "iops": self.iops,
            "read_latency": latency_block(self.read_latency),
            "write_latency": latency_block(self.write_latency),
        }
        if self.counters is not None:
            result["counters"] = self.counters.to_dict()
        if self.recovery is not None and self.recovery.any():
            result["recovery"] = self.recovery.to_dict()
        if self.metrics is not None:
            result["metrics"] = [sample.to_dict() for sample in self.metrics]
        if self.tenants is not None:
            result["tenants"] = {
                name: tenant.to_dict(self.duration_us)
                for name, tenant in self.tenants.items()
            }
        return result

    def summary(self) -> str:
        line = (
            f"{self.ftl_name:>9s} | {self.workload:>6s} | "
            f"IOPS {self.iops:10.0f} | "
            f"read p50/p99 {self.read_latency.percentile(50):7.0f}/"
            f"{self.read_latency.percentile(99):7.0f} us | "
            f"write p50/p99 {self.write_latency.percentile(50):7.0f}/"
            f"{self.write_latency.percentile(99):7.0f} us"
        )
        if self.recovery is not None and self.recovery.any():
            recovery = self.recovery
            line += (
                f" | recovery: pfail {recovery.program_fails}"
                f" efail {recovery.erase_fails}"
                f" retired {recovery.blocks_retired}"
                f" scrubs {recovery.scrubs}"
                f" ort-inv {recovery.ort_invalidations}"
                f" uncorr {recovery.uncorrectable_after_recovery}"
            )
        return line


def normalize(values: Sequence[float], baseline: float) -> List[float]:
    """Normalize a series over a baseline value (paper-style plots)."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return [value / baseline for value in values]
