"""Failure-injection and edge-condition integration tests."""



from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.base import IORequest, Trace
from repro.workloads.synthetic import sequential_trace, uniform_random_trace


class TestEnvironmentalStress:
    def test_heavy_shift_storm_still_completes(self):
        """Even with 20 % of programs hit by environmental shifts, the
        safety-check/reprogram loop converges and data stays intact."""
        config = SSDConfig.small(store_tags=True, env_shift_prob=0.20)
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 500, read_fraction=0.2, seed=31
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.completed_requests == 500
        assert stats.counters.reprograms > 10
        sim.ftl.mapper.check_invariants()

    def test_reprogram_never_loops_forever(self):
        """Reprograms use default (monitoring) parameters, which cannot
        over-skip, so one retry always settles a WL."""
        config = SSDConfig.small(env_shift_prob=0.5)
        sim = SSDSimulation(config, ftl="cube")
        trace = sequential_trace(config.logical_pages, 150, n_pages=3, seed=1)
        stats = sim.run(trace, queue_depth=4)
        total_programs = stats.counters.flash_programs
        # every reprogram is one extra program; bounded well below 2x
        assert stats.counters.reprograms < total_programs


class TestTinyResources:
    def test_minimal_buffer(self):
        """Buffer exactly one WL group wide still makes progress."""
        config = SSDConfig.small(
            buffer_capacity_pages=SSDConfig.small().geometry.block.pages_per_wl
        )
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 300, read_fraction=0.0, seed=2
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.completed_requests == 300

    def test_queue_depth_one(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 120, read_fraction=0.5, seed=3
        )
        stats = sim.run(trace, queue_depth=1)
        assert stats.completed_requests == 120

    def test_single_inflight_program(self):
        config = SSDConfig.small(max_inflight_programs=1)
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 200, read_fraction=0.3, seed=4
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.completed_requests == 200

    def test_one_active_block_per_chip(self):
        config = SSDConfig.small(active_blocks_per_chip=1)
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 200, read_fraction=0.0, seed=5
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.completed_requests == 200


class TestWorkloadEdges:
    def test_pure_write_workload(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 300, read_fraction=0.0, seed=6
        )
        stats = sim.run(trace, queue_depth=8)
        assert len(stats.read_latency) == 0
        assert len(stats.write_latency) == 300

    def test_pure_read_of_unwritten_space(self):
        """Reads of never-written LPNs complete from the mapping table."""
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="page")
        trace = uniform_random_trace(
            config.logical_pages, 200, read_fraction=1.0, seed=7
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.completed_requests == 200
        assert stats.counters.flash_reads == 0

    def test_repeated_overwrites_of_one_page(self):
        config = SSDConfig.small(store_tags=True)
        sim = SSDSimulation(config, ftl="cube")
        trace = Trace("hammer", config.logical_pages,
                      [IORequest("W", 7, 1)] * 100)
        stats = sim.run(trace, queue_depth=16)
        assert stats.completed_requests == 100
        assert sim.ftl.buffer.coalesced_writes > 0
        sim.ftl.mapper.check_invariants()

    def test_giant_requests(self):
        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="cube")
        trace = Trace("big", config.logical_pages, [
            IORequest("W", 0, 64),
            IORequest("R", 0, 64),
            IORequest("W", 64, 64),
        ])
        stats = sim.run(trace, queue_depth=2)
        assert stats.completed_requests == 3
