"""repro: reproduction of "Exploiting Process Similarity of 3D Flash Memory
for High Performance SSDs" (Shim et al., MICRO 2019).

The package is organized as:

- :mod:`repro.nand` -- a mechanistic 3D NAND flash device model (geometry,
  reliability surfaces, ISPP program engine, read-retry engine, ECC, chip).
- :mod:`repro.core` -- the paper's contribution: process-similarity-aware
  parameter monitoring and reuse (OPM, WAM, VFY skipping, MaxLoop reduction,
  program orders, the optimal-read-offset table).
- :mod:`repro.sim` -- a discrete-event simulation engine.
- :mod:`repro.ssd` -- SSD-level substrate (config, controller, write buffer,
  statistics).
- :mod:`repro.ftl` -- page-level FTLs: ``pageFTL`` (baseline), ``vertFTL``
  (inter-layer-variability baseline) and ``cubeFTL`` (PS-aware).
- :mod:`repro.workloads` -- synthetic trace generators for the six evaluated
  workloads (Mail, Web, Proxy, OLTP, Rocks, Mongo).
- :mod:`repro.characterization` -- the Section 3 characterization study.
- :mod:`repro.analysis` -- CDF / percentile / normalization helpers.
- :mod:`repro.obs` -- request-lifecycle tracing and time-sliced metrics.
- :mod:`repro.api` -- the stable :func:`~repro.api.run_simulation` facade.

The convenience re-exports below resolve lazily so that subpackages can be
imported independently.
"""

from importlib import import_module
from typing import TYPE_CHECKING

__version__ = "1.0.0"

_EXPORTS = {
    "BlockGeometry": "repro.nand.geometry",
    "SSDGeometry": "repro.nand.geometry",
    "PageAddress": "repro.nand.geometry",
    "WLAddress": "repro.nand.geometry",
    "NandTiming": "repro.nand.timing",
    "ReliabilityModel": "repro.nand.reliability",
    "AgingState": "repro.nand.reliability",
    "NandChip": "repro.nand.chip",
    "SSDConfig": "repro.ssd.config",
    "PageFTL": "repro.ftl",
    "VertFTL": "repro.ftl",
    "CubeFTL": "repro.ftl",
    "make_ftl": "repro.ftl",
    "SSDSimulation": "repro.ssd.controller",
    "run_simulation": "repro.api",
    "SimulationResult": "repro.api",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    return getattr(import_module(module_name), name)


def __dir__():
    return __all__


if TYPE_CHECKING:  # pragma: no cover - static-analysis convenience
    from repro.api import SimulationResult, run_simulation
    from repro.ftl import CubeFTL, PageFTL, VertFTL, make_ftl
    from repro.nand.chip import NandChip
    from repro.nand.geometry import BlockGeometry, PageAddress, SSDGeometry, WLAddress
    from repro.nand.reliability import AgingState, ReliabilityModel
    from repro.nand.timing import NandTiming
    from repro.ssd.config import SSDConfig
    from repro.ssd.controller import SSDSimulation
