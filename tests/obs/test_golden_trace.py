"""Byte-identical JSONL traces against a committed golden baseline.

The trace path is pure-Python float arithmetic with a fixed key order
and Python's deterministic float repr, so a given (config, workload,
seed) must reproduce the committed bytes exactly -- on any host and
with telemetry attached or not.  A diff here means the simulated
timeline itself moved: either an intentional model change (regenerate
the golden with ``tests/obs/golden/regen.py``) or an accidental
perturbation (fix it).
"""

import os

import pytest

from repro.api import run_simulation, spec_from_kwargs
from repro.ssd.config import SSDConfig
from tests.helpers.determinism import assert_files_identical

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "trace.jsonl")


def _run_traced(path, **kwargs):
    config = SSDConfig.small(logical_fraction=0.4)
    return run_simulation(
        config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
        n_requests=120, seed=7, trace=path, **kwargs,
    )


class TestGoldenTrace:
    def test_trace_matches_golden(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _run_traced(path)
        assert_files_identical(path, GOLDEN, "trace vs golden")

    def test_trace_matches_golden_with_telemetry_and_profile(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _run_traced(path, telemetry=True, profile=True)
        assert_files_identical(path, GOLDEN, "instrumented trace vs golden")


class TestSpecFormIdentity:
    """The kwarg shim and the spec form must be the *same run*: both
    funnel through run_spec, so their span traces are byte-identical
    for every FTL."""

    @pytest.mark.parametrize("ftl", ["page", "vert", "cube", "oracle"])
    def test_kwargs_vs_spec_trace_bytes(self, tmp_path, ftl):
        config = SSDConfig.small(logical_fraction=0.4)
        kwargs_path = str(tmp_path / f"kwargs-{ftl}.jsonl")
        run_simulation(
            config, "OLTP", ftl=ftl, queue_depth=8, prefill=0.4,
            n_requests=120, seed=7, trace=kwargs_path,
        )
        spec_path = str(tmp_path / f"spec-{ftl}.jsonl")
        spec = spec_from_kwargs(
            config, "OLTP", ftl=ftl, queue_depth=8, prefill=0.4,
            n_requests=120, seed=7, trace=spec_path,
        )
        run_simulation(spec)
        assert_files_identical(
            kwargs_path, spec_path, f"kwarg vs spec trace ({ftl})"
        )

    def test_spec_form_matches_golden(self, tmp_path):
        """The spec form reproduces the committed golden bytes of the
        historical kwarg path."""
        path = str(tmp_path / "trace.jsonl")
        spec = spec_from_kwargs(
            SSDConfig.small(logical_fraction=0.4), "OLTP", ftl="cube",
            queue_depth=8, prefill=0.4, n_requests=120, seed=7, trace=path,
        )
        run_simulation(spec)
        assert_files_identical(path, GOLDEN, "spec-form trace vs golden")
