"""Persistent, content-addressable run artifacts.

A *run artifact* is a self-contained directory capturing everything a
seeded run produced, laid out as::

    <artifact_dir>/<run_id>/
        manifest.json     typed index: schema version, run id, spec
                          fingerprint, per-file byte counts + SHA-256,
                          summary counts
        spec.json         the resolved SimulationSpec (artifact knobs
                          stripped -- see below)
        result.json       SimulationStats.to_dict() (results schema v2)
        latency.json      101-point quantile tables per op type
        timeseries.jsonl  delta-compressed telemetry windows
                          (repro.obs.timeseries)
        telemetry.json    end-of-run registry snapshot
        exemplars.json    tail + typical request exemplars with
                          histogram tail-bucket links
                          (repro.obs.exemplars)
        profile.json      optional: wall-clock profiler buckets
                          (host-dependent, excluded from byte-identity)
        check.json        optional: invariant-checker report

The ``run_id`` is the first 16 hex digits of the SHA-256 over the
canonical JSON of the spec dict -- seed included, artifact knobs
(``artifact_dir`` / ``artifact_every``) excluded, so *where* you store
the artifact never changes *which* run it names.  Identical spec+seed
therefore always maps to the same directory with byte-identical
deterministic files (everything except ``profile.json`` / ``check.json``
is wall-clock free), which is what makes results content-addressable
for caching and for the future job server.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

ARTIFACT_SCHEMA_VERSION = 1

#: files every valid artifact must carry
REQUIRED_FILES = ("spec.json", "result.json", "latency.json")

#: quantile grid for latency.json (p0, p1, ..., p100)
QUANTILE_GRID = tuple(range(101))


def _canonical(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _stripped_spec_dict(spec) -> dict:
    """Spec dict with the artifact knobs removed (they locate the
    artifact; they are not part of the simulated run's identity)."""
    data = spec.to_dict()
    options = dict(data.get("options", {}))
    options.pop("artifact_dir", None)
    options.pop("artifact_every", None)
    if options:
        data["options"] = options
    else:
        data.pop("options", None)
    return data


def run_fingerprint(spec) -> str:
    """Full SHA-256 hex over the canonical artifact-knob-stripped spec."""
    blob = _canonical(_stripped_spec_dict(spec))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_id(spec) -> str:
    """Content-addressable run name: first 16 hex of the fingerprint."""
    return run_fingerprint(spec)[:16]


def _quantile_table(latency) -> dict:
    return {
        "count": len(latency),
        "quantiles_us": [latency.percentile(p) for p in QUANTILE_GRID],
    }


def _write_json(path: str, data) -> None:
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _file_entry(path: str) -> dict:
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
            size += len(chunk)
    return {"bytes": size, "sha256": digest.hexdigest()}


def write_artifact(
    base_dir: str,
    spec,
    stats,
    *,
    timeseries=None,
    exemplars=None,
    telemetry: Optional[dict] = None,
    profile: Optional[dict] = None,
    check: Optional[dict] = None,
) -> str:
    """Write ``<base_dir>/<run_id>/`` and return its path.

    ``timeseries`` is a :class:`~repro.obs.timeseries.TimeSeriesRecorder`
    (already finalized), ``exemplars`` an
    :class:`~repro.obs.exemplars.ExemplarRecorder`, ``telemetry`` a
    registry snapshot dict.  An existing directory for the same run id
    is overwritten file-by-file: identical spec+seed produces identical
    bytes, so the overwrite is a no-op in content terms.
    """
    from repro.obs.exemplars import link_tail_buckets

    rid = run_id(spec)
    run_dir = os.path.join(base_dir, rid)
    os.makedirs(run_dir, exist_ok=True)

    files: Dict[str, dict] = {}

    def emit(name: str, writer) -> None:
        path = os.path.join(run_dir, name)
        writer(path)
        files[name] = _file_entry(path)

    emit("spec.json", lambda p: _write_json(p, _stripped_spec_dict(spec)))
    emit("result.json", lambda p: _write_json(p, stats.to_dict()))
    emit(
        "latency.json",
        lambda p: _write_json(
            p,
            {
                "read": _quantile_table(stats.read_latency),
                "write": _quantile_table(stats.write_latency),
            },
        ),
    )

    records = []
    if timeseries is not None:
        records = timeseries.records

        def write_jsonl(path: str) -> None:
            with open(path, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True))
                    handle.write("\n")

        emit("timeseries.jsonl", write_jsonl)

    if telemetry is not None:
        emit("telemetry.json", lambda p: _write_json(p, telemetry))

    exemplar_count = 0
    if exemplars is not None:
        document = exemplars.to_dict()
        thresholds = {}
        for kind, latency in (
            ("read", stats.read_latency),
            ("write", stats.write_latency),
        ):
            if kind in document["kinds"] and len(latency):
                thresholds[kind] = {
                    "p90_us": latency.percentile(90),
                    "p99_us": latency.percentile(99),
                    "p999_us": latency.percentile(99.9),
                    "max_us": latency.max_us,
                }
        document["tail_links"] = link_tail_buckets(document, thresholds)
        exemplar_count = sum(
            len(kind["slowest"]) + len(kind["typical"])
            for kind in document["kinds"].values()
        )
        emit("exemplars.json", lambda p: _write_json(p, document))

    if profile is not None:
        emit("profile.json", lambda p: _write_json(p, profile))
    if check is not None:
        emit("check.json", lambda p: _write_json(p, check))

    manifest = {
        "artifact_schema_version": ARTIFACT_SCHEMA_VERSION,
        "run_id": rid,
        "fingerprint": run_fingerprint(spec),
        "seed": spec.seed,
        "ftl": spec.ftl,
        "workload": spec.workload_name,
        "files": {name: files[name] for name in sorted(files)},
        "counts": {
            "completed_requests": stats.completed_requests,
            "timeseries_windows": len(records),
            "exemplars": exemplar_count,
        },
    }
    _write_json(os.path.join(run_dir, "manifest.json"), manifest)
    return run_dir


def load_artifact(run_dir: str) -> dict:
    """Load every file of an artifact; optional files load as ``None``."""

    def read_json(name: str):
        path = os.path.join(run_dir, name)
        if not os.path.isfile(path):
            return None
        with open(path) as handle:
            return json.load(handle)

    manifest = read_json("manifest.json")
    if manifest is None:
        raise FileNotFoundError(f"{run_dir} has no manifest.json")
    timeseries = None
    jsonl = os.path.join(run_dir, "timeseries.jsonl")
    if os.path.isfile(jsonl):
        with open(jsonl) as handle:
            timeseries = [json.loads(line) for line in handle if line.strip()]
    return {
        "path": run_dir,
        "manifest": manifest,
        "spec": read_json("spec.json"),
        "result": read_json("result.json"),
        "latency": read_json("latency.json"),
        "timeseries": timeseries,
        "telemetry": read_json("telemetry.json"),
        "exemplars": read_json("exemplars.json"),
        "profile": read_json("profile.json"),
        "check": read_json("check.json"),
    }


def validate_artifact(run_dir: str) -> List[str]:
    """Schema-check one artifact directory; returns problems (empty =
    valid).  Used by ``tools/check_schema.py --run-artifact``."""
    problems: List[str] = []
    manifest_path = os.path.join(run_dir, "manifest.json")
    if not os.path.isfile(manifest_path):
        return [f"{run_dir}: missing manifest.json"]
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except ValueError as error:
        return [f"{run_dir}: manifest.json is not valid JSON: {error}"]

    version = manifest.get("artifact_schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        problems.append(
            f"artifact_schema_version is {version!r}, "
            f"expected {ARTIFACT_SCHEMA_VERSION}"
        )
    for key in ("run_id", "fingerprint", "seed", "files", "counts"):
        if key not in manifest:
            problems.append(f"manifest.json missing key {key!r}")
    if problems:
        return problems

    if manifest["run_id"] != manifest["fingerprint"][:16]:
        problems.append("run_id does not match fingerprint prefix")
    basename = os.path.basename(os.path.normpath(run_dir))
    if basename != manifest["run_id"]:
        problems.append(
            f"directory name {basename!r} does not match "
            f"run_id {manifest['run_id']!r}"
        )

    files = manifest["files"]
    for name in REQUIRED_FILES:
        if name not in files:
            problems.append(f"manifest.json does not list required {name}")
    for name, entry in sorted(files.items()):
        path = os.path.join(run_dir, name)
        if not os.path.isfile(path):
            problems.append(f"listed file {name} is missing")
            continue
        actual = _file_entry(path)
        if actual["bytes"] != entry.get("bytes"):
            problems.append(
                f"{name}: size {actual['bytes']} != manifest "
                f"{entry.get('bytes')}"
            )
        if actual["sha256"] != entry.get("sha256"):
            problems.append(f"{name}: sha256 mismatch against manifest")
    if problems:
        return problems

    spec_path = os.path.join(run_dir, "spec.json")
    if os.path.isfile(spec_path):
        from repro.specs import validate_spec_dict

        with open(spec_path) as handle:
            spec_data = json.load(handle)
        problems += [f"spec.json: {p}" for p in validate_spec_dict(spec_data)]
        fingerprint = hashlib.sha256(
            _canonical(spec_data).encode("utf-8")
        ).hexdigest()
        if fingerprint != manifest["fingerprint"]:
            problems.append("spec.json does not hash to manifest fingerprint")

    result_path = os.path.join(run_dir, "result.json")
    if os.path.isfile(result_path):
        with open(result_path) as handle:
            result = json.load(handle)
        for key in ("schema_version", "iops", "read_latency", "write_latency"):
            if key not in result:
                problems.append(f"result.json missing key {key!r}")
    return problems


def write_sweep_manifest(
    base_dir: str, cells: Dict[str, Optional[str]], base_seed: int
) -> str:
    """Index the per-cell artifacts of one sweep/batch under its tree.

    ``cells`` maps cell name to the cell's artifact directory (``None``
    for failed cells).  Paths are stored relative to ``base_dir`` so the
    tree relocates cleanly.
    """
    relative = {}
    for name in sorted(cells):
        path = cells[name]
        relative[name] = (
            os.path.relpath(path, base_dir) if path is not None else None
        )
    manifest = {
        "artifact_schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": "sweep",
        "base_seed": base_seed,
        "cells": relative,
    }
    path = os.path.join(base_dir, "sweep.json")
    os.makedirs(base_dir, exist_ok=True)
    _write_json(path, manifest)
    return path
