"""MaxLoop reduction via the spare BER margin S_M (Section 4.1.2).

When the leading WL of an h-layer is programmed, the OPM monitors the
E<->P1 error rate ``BER_EP1``.  The *spare margin*

.. math::

    S_M = \\frac{BER_{EP1}^{Max} - BER_{EP1}}{BER_{EP1}}
        = \\frac{BER_{EP1}^{Max}}{BER_{EP1}} - 1

expresses, in relative units, how far the h-layer currently sits below
the maximum error rate the ECC budget allows.  A pre-characterized
conversion table (the paper builds it "off-line from extensive
experimental measurements"; here it is derived once from the device
model's squeeze-cost curve) maps S_M to a total (V_start, V_final)
adjustment margin in millivolts, which the ISPP engine converts into
removed loops.

The table is *tight but safe*: for every point of the device model's
(layer x aging) grid, applying the granted margin keeps the read-back
BER below the derated ECC limit (asserted by tests).  The paper's example
point -- S_M = 1.7 maps to a 320 mV total margin, cutting tPROG by about
19.7 % -- is a row of the default table.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple

#: default maximum-allowed E<->P1 BER.  Calibrated against the device
#: model so the worst layer at end of life (2 K P/E + 1 year) sits just
#: below it (S_M slightly above 0) while fresh blocks enjoy a large S_M.
DEFAULT_BER_EP1_MAX = 5.5e-4


def spare_margin(ber_ep1: float, ber_ep1_max: float = DEFAULT_BER_EP1_MAX) -> float:
    """Compute S_M from a monitored E<->P1 BER.

    Returns 0 when the measurement already exceeds the allowance (no
    relaxation permitted).
    """
    if ber_ep1 <= 0:
        raise ValueError("ber_ep1 must be positive")
    return max(0.0, ber_ep1_max / ber_ep1 - 1.0)


@dataclass(frozen=True)
class MarginTable:
    """Piecewise-linear S_M -> total window-adjustment-margin conversion.

    ``points`` are (S_M, margin_mv) breakpoints in increasing S_M order;
    queries interpolate linearly and clamp at both ends.  A second table
    (``start_fraction``) states how the total margin is divided between
    raising V_start and lowering V_final (the paper keeps this split in a
    separate pre-defined table).
    """

    points: Tuple[Tuple[float, float], ...]
    start_fraction: float = 0.6

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("table needs at least two breakpoints")
        s_values = [s for s, _ in self.points]
        if s_values != sorted(s_values) or len(set(s_values)) != len(s_values):
            raise ValueError("S_M breakpoints must be strictly increasing")
        if any(m < 0 for _, m in self.points):
            raise ValueError("margins must be non-negative")
        if not 0.0 <= self.start_fraction <= 1.0:
            raise ValueError("start_fraction must be in [0, 1]")

    def margin_mv(self, s_m: float) -> float:
        """Total (V_start, V_final) adjustment margin for a given S_M."""
        if s_m <= self.points[0][0]:
            return self.points[0][1]
        if s_m >= self.points[-1][0]:
            return self.points[-1][1]
        s_values = [s for s, _ in self.points]
        hi = bisect.bisect_right(s_values, s_m)
        lo = hi - 1
        s0, m0 = self.points[lo]
        s1, m1 = self.points[hi]
        t = (s_m - s0) / (s1 - s0)
        return m0 + t * (m1 - m0)

    def split(self, s_m: float) -> Tuple[float, float]:
        """Return (V_start raise, V_final drop) in mV for a given S_M."""
        total = self.margin_mv(s_m)
        start = total * self.start_fraction
        return (start, total - start)


#: default conversion table.  The paper's Fig. 11(b) anchor -- S_M = 1.7
#: grants 320 mV -- is an explicit breakpoint; margins saturate at 420 mV
#: (about 3.5 ISPP steps) for very healthy layers.
DEFAULT_MARGIN_TABLE = MarginTable(
    points=(
        (0.0, 0.0),
        (0.15, 60.0),
        (0.4, 130.0),
        (0.8, 210.0),
        (1.2, 270.0),
        (1.7, 320.0),
        (2.5, 370.0),
        (4.0, 420.0),
    )
)


def margin_for_ber(
    ber_ep1: float,
    table: MarginTable = DEFAULT_MARGIN_TABLE,
    ber_ep1_max: float = DEFAULT_BER_EP1_MAX,
) -> float:
    """Convenience: monitored BER_EP1 straight to a total margin in mV."""
    return table.margin_mv(spare_margin(ber_ep1, ber_ep1_max))


def vert_ftl_static_margin(points: Sequence[Tuple[float, float]] = ()) -> float:
    """The conservative offline V_final-only margin used by vertFTL.

    The paper's prior-work baseline [13] decides a fixed V_final reduction
    per h-layer from offline characterization under worst-case lifetime
    conditions; across layers this averages about 130 mV (one ISPP step)
    and yields roughly an 8 % tPROG improvement.
    """
    if points:
        return sum(m for _, m in points) / len(points)
    return 130.0
