"""Wear tracking and wear-aware free-block selection.

The paper's FTLs sit on a standard page-mapping substrate; like any real
FTL, that substrate should avoid concentrating erases on a few blocks
(especially relevant here, since cubeFTL's margins shrink as blocks age
-- uneven wear would prematurely strip some blocks of their follower
speedups).  This module provides:

- :class:`WearStats` -- per-chip erase-count statistics;
- :func:`min_wear_selector` -- a selection key for
  :meth:`repro.ftl.blockmgr.BlockManager.take_free` that always picks the
  least-worn free block (classic dynamic wear leveling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.nand.chip import NandChip


@dataclass(frozen=True)
class WearStats:
    """Erase-count distribution of one chip's blocks."""

    min_pe: int
    max_pe: int
    mean_pe: float
    std_pe: float

    @property
    def spread(self) -> int:
        """Max-min erase gap; the quantity wear leveling minimizes."""
        return self.max_pe - self.min_pe


def chip_wear_stats(chip: NandChip) -> WearStats:
    """Collect the erase-count distribution of a chip."""
    counts = np.array([chip.block_pe(block) for block in range(chip.n_blocks)])
    return WearStats(
        min_pe=int(counts.min()),
        max_pe=int(counts.max()),
        mean_pe=float(counts.mean()),
        std_pe=float(counts.std()),
    )


def min_wear_selector(chip: NandChip) -> Callable[[int], int]:
    """Selection key: prefer the free block with the fewest erases."""

    def key(block: int) -> int:
        return chip.block_pe(block)

    return key


def wear_imbalance(chips: List[NandChip]) -> float:
    """Largest per-chip erase spread across an SSD's chips."""
    if not chips:
        raise ValueError("need at least one chip")
    return max(chip_wear_stats(chip).spread for chip in chips)
