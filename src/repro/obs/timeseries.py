"""Windowed telemetry time-series: periodic registry snapshots, delta-compressed.

A :class:`TimeSeriesRecorder` snapshots a
:class:`~repro.obs.registry.TelemetryRegistry` every ``interval_us`` of
*simulated* time, riding on :meth:`repro.sim.engine.Engine.every`
exactly like the :class:`~repro.obs.metrics.MetricsSampler` does: with
no recorder attached the event sequence is bit-for-bit the run without
one; with one attached its events only *read* state, and it is stopped
at the last host completion so the engine clock never advances past the
real workload.

Each snapshot is flattened to scalar keys
(:func:`flatten_snapshot`) and stored as a *delta window*: the first
window carries every key, later windows carry only the keys whose value
changed.  Long runs over multi-billion-op horizons therefore pay for
what moved, not for the whole instrument catalog per window.
:func:`expand_records` inverts the compression for analysis and report
rendering.

Determinism is part of the contract (the run-artifact suite asserts
byte-identical ``timeseries.jsonl`` files for identical seeded runs):
keys are sorted, label values stringified the same way the registry
snapshot stringifies them, and no wall-clock value ever enters a
record.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

#: default snapshot cadence when ``artifact_every`` is not given (us)
DEFAULT_INTERVAL_US = 1000.0


def flatten_snapshot(snapshot: dict) -> Dict[str, float]:
    """Flatten a registry snapshot into sorted scalar ``key -> value``.

    Key layout: ``name{label=value,...}.field`` where ``field`` is
    ``value`` for counters/gauges and ``count`` / ``sum`` /
    ``bucket[<edge>]`` for histograms.  Unlabelled instruments omit the
    ``{...}`` part.  The result iterates in sorted key order.
    """
    flat: Dict[str, float] = {}
    for name in sorted(snapshot):
        described = snapshot[name]
        for row in described.get("series", []):
            labels = row.get("labels")
            if labels:
                label_part = ",".join(
                    f"{key}={labels[key]}" for key in sorted(labels)
                )
                prefix = f"{name}{{{label_part}}}"
            else:
                prefix = name
            if "value" in row:
                flat[f"{prefix}.value"] = row["value"]
            else:
                flat[f"{prefix}.count"] = row["count"]
                flat[f"{prefix}.sum"] = row["sum"]
                for edge, count in row.get("buckets", {}).items():
                    flat[f"{prefix}.bucket[{edge}]"] = count
    return {key: flat[key] for key in sorted(flat)}


def expand_records(records: Iterable[dict]) -> Tuple[List[float], List[Dict[str, float]]]:
    """Invert the delta compression: ``(timestamps, full windows)``.

    Every returned window carries the complete key set known at that
    time (keys appearing mid-run -- new label combinations -- are absent
    from earlier windows, exactly as they were absent from the live
    registry).
    """
    times: List[float] = []
    windows: List[Dict[str, float]] = []
    current: Dict[str, float] = {}
    for record in records:
        current = dict(current)
        current.update(record["values"])
        times.append(record["t_us"])
        windows.append(current)
    return times, windows


class TimeSeriesRecorder:
    """Engine-driven periodic registry snapshots with delta compression.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.registry.TelemetryRegistry` to snapshot
        (collectors run on every snapshot, so collected gauges are
        point-in-time correct).
    engine:
        The event engine driving simulated time.
    interval_us:
        Simulated microseconds between windows.
    """

    def __init__(self, registry, engine, interval_us: float = DEFAULT_INTERVAL_US) -> None:
        if interval_us <= 0:
            raise ValueError("interval_us must be > 0")
        self.registry = registry
        self.engine = engine
        self.interval_us = interval_us
        #: delta windows: ``{"t_us": ..., "full": ..., "values": {...}}``
        self.records: List[dict] = []
        self._last: Dict[str, float] = {}
        self._recurring = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Take the t=start window and begin periodic recording."""
        self._take()
        self._recurring = self.engine.every(self.interval_us, self._take)

    def stop(self) -> None:
        """Cancel the pending snapshot event (the engine clock will not
        advance to it)."""
        if self._recurring is not None:
            self._recurring.stop()
            self._recurring = None

    def finalize(self) -> List[dict]:
        """Stop recording and take the end-of-run window, replacing a
        periodic window that happens to share its timestamp so the final
        window always aligns with the final statistics."""
        self.stop()
        now = self.engine.now
        if self.records and self.records[-1]["t_us"] == now:
            dropped = self.records.pop()
            # rebuild the "previous" view without the dropped window so
            # the replacement's delta is computed against the same base
            self._last = dict(self._last)
            for key in dropped["values"]:
                self._last.pop(key, None)
            _, windows = expand_records(self.records)
            self._last = windows[-1] if windows else {}
        self._take()
        return self.records

    # ------------------------------------------------------------------

    def _take(self) -> None:
        flat = flatten_snapshot(self.registry.snapshot())
        if not self.records:
            delta = flat
            full = True
        else:
            delta = {
                key: value
                for key, value in flat.items()
                if self._last.get(key) != value
            }
            full = False
        self.records.append(
            {"t_us": self.engine.now, "full": full, "values": delta}
        )
        self._last = flat
