"""Tests for the WL Allocation Manager (Section 5.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.wam import (
    ActiveBlockCursor,
    Allocation,
    SequentialCursor,
    WLAllocationManager,
)
from repro.nand.geometry import BlockGeometry, WLAddress


@pytest.fixture
def geometry():
    return BlockGeometry(n_layers=6, wls_per_layer=4)


@pytest.fixture
def cursor(geometry):
    return ActiveBlockCursor(block=7, geometry=geometry)


class TestActiveBlockCursor:
    def test_initial_state(self, cursor):
        assert cursor.leader_available()
        assert not cursor.follower_available()
        assert cursor.i_leader == 0
        assert cursor.i_follower == 0

    def test_take_leader_advances_pointer(self, cursor):
        allocation = cursor.take_leader()
        assert allocation == Allocation(7, WLAddress(0, 0), is_leader=True)
        assert cursor.i_leader == 1
        assert cursor.follower_available()

    def test_followers_only_behind_leader(self, cursor):
        cursor.take_leader()
        for wl in (1, 2, 3):
            allocation = cursor.take_follower()
            assert allocation.address == WLAddress(0, wl)
            assert not allocation.is_leader
        # layer 0 drained; layer 1's leader not programmed yet
        assert not cursor.follower_available()

    def test_take_follower_without_leader_raises(self, cursor):
        with pytest.raises(LookupError):
            cursor.take_follower()

    def test_exhaustion_and_counts(self, cursor, geometry):
        total = geometry.wls_per_block
        taken = set()
        while not cursor.exhausted:
            allocation = cursor.take(prefer_follower=True)
            taken.add(allocation.address.as_tuple())
        assert len(taken) == total
        with pytest.raises(LookupError):
            cursor.take_leader()

    def test_leaders_remaining(self, cursor, geometry):
        assert cursor.leaders_remaining() == geometry.n_layers
        cursor.take_leader()
        assert cursor.leaders_remaining() == geometry.n_layers - 1

    def test_followers_remaining(self, cursor):
        cursor.take_leader()
        cursor.take_leader()
        assert cursor.followers_remaining() == 6  # two led layers x 3
        cursor.take_follower()
        assert cursor.followers_remaining() == 5

    def test_free_wls_accounting(self, cursor, geometry):
        assert cursor.free_wls() == geometry.wls_per_block
        cursor.take_leader()
        cursor.take_follower()
        assert cursor.free_wls() == geometry.wls_per_block - 2

    def test_prefer_leader_falls_back_to_follower(self, cursor, geometry):
        for _ in range(geometry.n_layers):
            cursor.take_leader()
        allocation = cursor.take(prefer_follower=False)
        assert not allocation.is_leader

    def test_prefer_follower_falls_back_to_leader(self, cursor):
        allocation = cursor.take(prefer_follower=True)
        assert allocation.is_leader


class TestSequentialCursor:
    def test_horizontal_first_order(self, geometry):
        cursor = SequentialCursor(3, geometry)
        addresses = [cursor.take().address for _ in range(5)]
        assert addresses == [
            WLAddress(0, 0),
            WLAddress(0, 1),
            WLAddress(0, 2),
            WLAddress(0, 3),
            WLAddress(1, 0),
        ]

    def test_leader_flag_on_wl0(self, geometry):
        cursor = SequentialCursor(3, geometry)
        flags = [cursor.take().is_leader for _ in range(8)]
        assert flags == [True, False, False, False, True, False, False, False]

    def test_exhaustion(self, geometry):
        cursor = SequentialCursor(3, geometry)
        for _ in range(geometry.wls_per_block):
            cursor.take()
        assert cursor.exhausted
        with pytest.raises(LookupError):
            cursor.take()


class TestWLAllocationManager:
    @pytest.fixture
    def wam(self, geometry):
        manager = WLAllocationManager(geometry, active_blocks_per_chip=2,
                                      mu_threshold=0.9)
        manager.install_block(0, 10)
        manager.install_block(0, 11)
        return manager

    def test_low_utilization_prefers_leaders(self, wam):
        allocation = wam.allocate(0, utilization=0.3)
        assert allocation.is_leader

    def test_high_utilization_prefers_followers(self, wam):
        wam.allocate(0, utilization=0.3)  # program one leader first
        allocation = wam.allocate(0, utilization=0.95)
        assert not allocation.is_leader

    def test_high_utilization_without_followers_takes_leader(self, wam):
        allocation = wam.allocate(0, utilization=0.95)
        assert allocation.is_leader

    def test_low_utilization_skips_free_followers(self, wam):
        """Fig. 16 case 1: leaders are used even when followers of lower
        h-layers remain free."""
        wam.allocate(0, utilization=0.3)
        allocation = wam.allocate(0, utilization=0.3)
        assert allocation.is_leader
        assert allocation.address.layer == 1

    def test_allocation_counters(self, wam):
        wam.allocate(0, utilization=0.3)
        wam.allocate(0, utilization=0.95)
        assert wam.leader_allocations == 1
        assert wam.follower_allocations == 1

    def test_exhausted_blocks_removed(self, wam, geometry):
        total = 2 * geometry.wls_per_block
        for _ in range(total):
            assert wam.allocate(0, utilization=0.95) is not None
        assert wam.allocate(0, utilization=0.95) is None
        assert wam.blocks_needed(0) == 2

    def test_blocks_needed(self, geometry):
        manager = WLAllocationManager(geometry, active_blocks_per_chip=2)
        assert manager.blocks_needed(3) == 2
        manager.install_block(3, 0)
        assert manager.blocks_needed(3) == 1

    def test_free_wls(self, wam, geometry):
        assert wam.free_wls(0) == 2 * geometry.wls_per_block

    def test_validation(self, geometry):
        with pytest.raises(ValueError):
            WLAllocationManager(geometry, active_blocks_per_chip=0)
        with pytest.raises(ValueError):
            WLAllocationManager(geometry, mu_threshold=0.0)


@given(
    choices=st.lists(st.booleans(), min_size=1, max_size=200),
)
def test_cursor_never_double_allocates_property(choices):
    """Under any preference sequence, the MOS cursor hands out each WL at
    most once and followers always follow their layer's leader."""
    geometry = BlockGeometry(n_layers=5, wls_per_layer=4)
    cursor = ActiveBlockCursor(0, geometry)
    seen = set()
    led = set()
    for prefer_follower in choices:
        if cursor.exhausted:
            break
        allocation = cursor.take(prefer_follower)
        key = allocation.address.as_tuple()
        assert key not in seen
        seen.add(key)
        if allocation.is_leader:
            led.add(allocation.address.layer)
        else:
            assert allocation.address.layer in led
