"""Stable high-level entry point: configure, run, observe.

:func:`run_simulation` is the one call every front end goes through
(CLI, benchmarks, examples, notebooks): it builds the SSD, prefills it,
replays a workload, and optionally attaches the :mod:`repro.obs`
tracer and metrics sampler.  Everything it returns is packed into a
:class:`SimulationResult`, so callers never reach into the simulation
objects themselves -- the facade is the compatibility surface; the
internals behind it are free to move.

Example::

    from repro.api import run_simulation
    from repro.ssd.config import SSDConfig

    result = run_simulation(SSDConfig(), "OLTP", ftl="cube",
                            n_requests=2000, trace="memory")
    print(result.iops)
    breakdown = result.breakdown()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel import RunSpec

from repro.obs.metrics import MetricsSample
from repro.obs.profile import WallClockProfiler
from repro.obs.registry import TelemetryRegistry
from repro.obs.trace import InMemorySink, JsonlSink, Span, Tracer
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.ssd.stats import SimulationStats
from repro.workloads import make_workload
from repro.workloads.base import Trace


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    stats: SimulationStats
    #: recorded spans when ``trace="memory"`` was requested, else None
    spans: Optional[List[Span]] = None
    #: metrics timeline when ``metrics_interval`` was set, else None
    metrics: Optional[List[MetricsSample]] = None
    #: path of the written JSONL trace when ``trace`` was a path
    trace_path: Optional[str] = None
    #: registry snapshot when ``telemetry=True`` was requested, else None
    telemetry: Optional[dict] = None
    #: wall-clock section attribution when ``profile=True``, else None
    profile: Optional[dict] = None
    #: invariant-checker report when ``check=`` was requested, else None
    #: (violation counts, oracle stats, and the ``state_digest`` of the
    #: final logical state for differential comparisons)
    check: Optional[dict] = None

    @property
    def iops(self) -> float:
        return self.stats.iops

    def to_dict(self) -> dict:
        """The schema-v2 result dict (same as ``stats.to_dict()``)."""
        return self.stats.to_dict()

    def breakdown(self) -> str:
        """Per-stage-group latency decomposition of the recorded trace."""
        from repro.obs.analyze import breakdown_report, load_trace

        if self.spans is not None:
            return breakdown_report(self.spans)
        if self.trace_path is not None:
            return breakdown_report(load_trace(self.trace_path))
        raise ValueError("run with trace='memory' or trace=PATH first")

    def telemetry_report(self) -> str:
        """ASCII heatmaps/histograms of the device telemetry snapshot."""
        from repro.obs.analyze import telemetry_report

        if self.telemetry is None:
            raise ValueError("run with telemetry=True first")
        return telemetry_report(self.telemetry)


def run_simulation(
    config: SSDConfig,
    workload: Union[str, Trace],
    ftl: str = "cube",
    *,
    queue_depth: int = 32,
    warmup_requests: int = 0,
    prefill: float = 0.9,
    n_requests: int = 8000,
    seed: int = 7,
    trace: Optional[str] = None,
    metrics_interval: Optional[float] = None,
    telemetry: bool = False,
    profile: bool = False,
    open_loop: bool = False,
    max_events: Optional[int] = None,
    check=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    **ftl_kwargs,
) -> SimulationResult:
    """Build, prefill, and run one SSD simulation.

    Parameters
    ----------
    config:
        The SSD to simulate.
    workload:
        A workload name (``"OLTP"``, ``"Proxy"``, ...; generated with
        ``n_requests`` / ``seed``) or a pre-built
        :class:`~repro.workloads.base.Trace` (then ``n_requests`` and
        ``seed`` are ignored).
    ftl:
        FTL variant name (``"page"``, ``"vert"``, ``"cube"``, ...).
    trace:
        ``None`` disables tracing (the default; the simulation is
        bit-for-bit the untraced run), ``"memory"`` records spans into
        ``result.spans``, any other string is a path to stream a JSONL
        trace to.
    metrics_interval:
        Simulated microseconds between metrics snapshots; ``None``
        disables sampling.
    telemetry:
        Attach a :class:`~repro.obs.registry.TelemetryRegistry` with
        the device instruments (per-die busy time, queue depths,
        per-h-layer retries/tPROG, ORT hits) and return its snapshot
        in ``result.telemetry``.  Off by default; an untelemetered run
        is bit-for-bit the plain run.
    profile:
        Attach a :class:`~repro.obs.profile.WallClockProfiler` and
        return its section attribution in ``result.profile``.
    open_loop:
        Replay at recorded arrival times instead of closed-loop at
        ``queue_depth`` (the trace must carry arrivals).
    check:
        ``None`` disables runtime invariant checking (the default; the
        simulation is bit-for-bit the unchecked run).  ``True`` /
        ``"on"`` attaches an :class:`~repro.check.InvariantChecker`
        (per-event invariants plus one deep audit at the end);
        ``"strict"`` also deep-audits after every erase and
        periodically during the run.  A :class:`~repro.check.CheckConfig`
        passes through as-is.  The report lands in ``result.check``;
        any violation raises
        :class:`~repro.check.InvariantViolation`.
    checkpoint_every:
        Write a checkpoint every N completed host requests into
        ``checkpoint_dir`` (required together).  The run replays in
        quiescent segments of N requests (a deterministic scheduling
        change; see docs/PERSISTENCE.md) and can be resumed
        byte-identically from any checkpoint.  Incompatible with
        ``trace``, ``profile``, ``metrics_interval``, ``open_loop``
        and ``max_events``.
    resume_from:
        Path to a checkpoint directory to resume from.  ``config``,
        ``ftl``, ``workload`` and ``seed`` must match the original
        run (validated against the checkpoint header); ``queue_depth``,
        ``warmup_requests``, ``checkpoint_every`` and the check level
        are taken from the header.
    """
    from repro.check import InvariantChecker, parse_check_level

    if checkpoint_every is not None or resume_from is not None:
        incompatible = {
            "trace": trace,
            "profile": profile or None,
            "metrics_interval": metrics_interval,
            "open_loop": open_loop or None,
            "max_events": max_events,
        }
        bad = sorted(key for key, value in incompatible.items() if value)
        if bad:
            raise ValueError(
                f"checkpointing is incompatible with {', '.join(bad)} "
                "(see docs/PERSISTENCE.md)"
            )
        from repro.persist import run_checkpointed

        return run_checkpointed(
            config,
            workload,
            ftl,
            queue_depth=queue_depth,
            warmup_requests=warmup_requests,
            prefill=prefill,
            n_requests=n_requests,
            seed=seed,
            telemetry=telemetry,
            check=check,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
            **ftl_kwargs,
        )

    tracer: Optional[Tracer] = None
    sink = None
    if trace is not None:
        sink = InMemorySink() if trace == "memory" else JsonlSink(trace)
        tracer = Tracer(sink)
    registry = TelemetryRegistry() if telemetry else None
    profiler = WallClockProfiler() if profile else None
    checker = None
    check_config = parse_check_level(check)
    if check_config is not None:
        # the data-integrity oracle reads content tags back; forcing
        # store_tags on changes only what the chips *remember*, never
        # any timing or random draw, so checked and unchecked runs stay
        # event-for-event identical
        if not config.store_tags:
            config = replace(config, store_tags=True)
        checker = InvariantChecker(check_config)
        checker.context.update(
            ftl=ftl,
            workload=workload if isinstance(workload, str) else workload.name,
            seed=seed,
            check=check_config.level,
        )
    if profiler is not None:
        profiler.push("setup")
    sim = SSDSimulation(
        config,
        ftl=ftl,
        tracer=tracer,
        telemetry=registry,
        profiler=profiler,
        checker=checker,
        **ftl_kwargs,
    )
    if prefill > 0:
        sim.prefill(prefill)
    if isinstance(workload, str):
        workload = make_workload(
            workload, config.logical_pages, n_requests, seed=seed
        )
    if profiler is not None:
        profiler.pop()
    try:
        if open_loop:
            stats = sim.run_open_loop(
                workload,
                max_events=max_events,
                metrics_interval_us=metrics_interval,
            )
        else:
            stats = sim.run(
                workload,
                queue_depth=queue_depth,
                warmup_requests=warmup_requests,
                max_events=max_events,
                metrics_interval_us=metrics_interval,
            )
    finally:
        if tracer is not None:
            tracer.close()
    # finalize before the telemetry snapshot so collected gauges include
    # the end-of-run deep audit
    check_report = checker.finalize() if checker is not None else None
    return SimulationResult(
        stats=stats,
        spans=sink.spans if isinstance(sink, InMemorySink) else None,
        metrics=stats.metrics,
        trace_path=trace if trace not in (None, "memory") else None,
        telemetry=registry.snapshot() if registry is not None else None,
        profile=profiler.to_dict() if profiler is not None else None,
        check=check_report,
    )


@dataclass
class BatchResult:
    """What :func:`run_many` produced for a batch of named runs.

    ``results`` is aligned with the input specs (input order, not
    completion order); a failed shard leaves ``None`` there and an entry
    in ``errors``.  ``telemetry`` is the combined registry snapshot
    merged across the specs that requested telemetry (see
    :func:`repro.parallel.merge.merge_snapshots` for the per-kind merge
    semantics), or ``None`` when no spec did.
    """

    names: List[str]
    results: List[Optional[SimulationResult]]
    errors: Dict[str, str] = field(default_factory=dict)
    telemetry: Optional[dict] = None
    #: names of shards relaunched after a worker hard-died (``retries=``)
    retried: List[str] = field(default_factory=list)
    #: names of shards loaded from a sweep checkpoint dir instead of run
    cached: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def result_for(self, name: str) -> SimulationResult:
        result = self.results[self.names.index(name)]
        if result is None:
            raise KeyError(
                f"run {name!r} failed: {self.errors.get(name, 'unknown error')}"
            )
        return result


def run_many(
    specs: Sequence["RunSpec"],
    jobs: int = 1,
    base_seed: int = 7,
    on_progress: Optional[Callable[[str, bool], None]] = None,
    retries: int = 0,
    checkpoint_dir: Optional[str] = None,
) -> BatchResult:
    """Run a batch of :class:`~repro.parallel.RunSpec` runs, sharded
    across up to ``jobs`` worker processes.

    The batch result is a pure function of ``(specs, base_seed)``: each
    spec's seed is its pinned ``seed`` or ``derive_seed(base_seed,
    spec.name)``, shards are crash-isolated (a dying worker fails only
    its own run), and results come back in spec order.  ``jobs=1`` runs
    everything inline and is the reference the parallel path reproduces
    bit-for-bit.

    ``on_progress`` (if given) is called with ``(name, ok)`` as each run
    finishes, in completion order.

    ``retries`` relaunches shards whose worker hard-died (same spec,
    same derived seed -- see :func:`repro.parallel.run_shards`); the
    names of retried shards land in ``BatchResult.retried`` and the
    ``shard_retries_total`` counter in ``BatchResult.telemetry``.
    ``checkpoint_dir`` makes the batch resumable: completed runs are
    saved there as they land, and a rerun with the same specs and base
    seed loads them (``BatchResult.cached``) instead of re-running.  A
    SIGINT raises :class:`~repro.parallel.ShardsInterrupted` carrying
    the completed outcomes.
    """
    from repro.parallel import merge_snapshots, run_shards, specs_to_shards

    shards = specs_to_shards(specs, base_seed)
    progress = None
    if on_progress is not None:
        callback = on_progress

        def progress(outcome):
            callback(outcome.name, outcome.ok)

    registry = TelemetryRegistry() if retries > 0 else None
    if checkpoint_dir is not None:
        from repro.persist import run_shards_resumable

        outcomes = run_shards_resumable(
            shards,
            jobs=jobs,
            checkpoint_dir=checkpoint_dir,
            base_seed=base_seed,
            on_progress=progress,
            retries=retries,
            registry=registry,
        )
    else:
        outcomes = run_shards(
            shards,
            jobs=jobs,
            on_progress=progress,
            retries=retries,
            registry=registry,
        )
    results: List[Optional[SimulationResult]] = []
    errors: Dict[str, str] = {}
    for outcome in outcomes:
        if outcome.ok:
            results.append(outcome.result)
        else:
            results.append(None)
            errors[outcome.name] = outcome.error or "unknown error"
    retried = [outcome.name for outcome in outcomes if outcome.retried]
    telemetered = [
        r.telemetry for r in results if r is not None and r.telemetry is not None
    ]
    if registry is not None and retried:
        telemetered.append(registry.snapshot())
    return BatchResult(
        names=[spec.name for spec in specs],
        results=results,
        errors=errors,
        telemetry=merge_snapshots(telemetered) if telemetered else None,
        retried=retried,
        cached=[outcome.name for outcome in outcomes if outcome.cached],
    )
