"""Request-lifecycle tracing: spans, sinks, and the tracer.

A *span* is one contiguous interval a host page spent in one stage of
the datapath.  The stages tile: for every page of a request, the spans
recorded for that ``(request, lpn)`` pair cover ``[issue, completion]``
with no gaps and no overlap, so per-stage sums reproduce the page's
end-to-end latency exactly (this is asserted by
:func:`repro.obs.analyze.validate_trace` and the test suite).

Span taxonomy (see ``docs/OBSERVABILITY.md`` for the full contract):

=================  ========================================================
stage              meaning
=================  ========================================================
``request``        the whole host request (issue to last-page completion)
``buffer_read``    read served from the write buffer / mapping table
``buffer_wait``    write waiting for a free write-buffer slot
``buffer_staged``  write staged in the buffer awaiting WL-group dispatch
``bus_queue``      waiting for the channel (host flush or read transfer)
``bus_xfer``       data moving over the channel
``chip_queue``     waiting for the die FIFO
``nand_read``      array sense time excluding retries
``read_retry``     extra sense time spent on read retries
``nand_program``   one-shot WL program occupying the die
``recovery_read``  conservative re-read after an uncorrectable read
``gc_read``        GC migration read (unattributed: ``request`` is null)
``gc_program``     GC migration program (unattributed)
``erase``          block erase (unattributed)
=================  ========================================================

Sinks are pluggable.  :class:`JsonlSink` writes one JSON object per
span with a fixed key order, so two runs with the same seed produce
byte-identical trace files (determinism is part of the contract).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: stages a host *read* page can pass through
READ_STAGES = (
    "buffer_read",
    "chip_queue",
    "nand_read",
    "read_retry",
    "recovery_read",
    "bus_queue",
    "bus_xfer",
)

#: stages a host *write* page can pass through
WRITE_STAGES = (
    "buffer_wait",
    "buffer_staged",
    "bus_queue",
    "bus_xfer",
    "chip_queue",
    "nand_program",
)

#: background stages never attributed to a host request
BACKGROUND_STAGES = ("gc_read", "gc_program", "erase")


@dataclass(frozen=True)
class Span:
    """One stage interval of one page (or one background operation)."""

    #: host request id, or ``None`` for background (GC / erase) spans
    request: Optional[int]
    #: logical page the span belongs to (``None`` for background spans)
    lpn: Optional[int]
    stage: str
    start_us: float
    end_us: float
    #: chip the stage executed on (``None`` for buffer-level stages)
    chip: Optional[int] = None
    #: stage-specific extras (``num_retry``, ``fail``, ``vfy_skipped``...)
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        """JSONL record with a fixed key order (byte-determinism)."""
        record: Dict[str, object] = {
            "request": self.request,
            "lpn": self.lpn,
            "stage": self.stage,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "chip": self.chip,
        }
        if self.info:
            record["info"] = {key: self.info[key] for key in sorted(self.info)}
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            request=record["request"],
            lpn=record["lpn"],
            stage=record["stage"],
            start_us=record["start_us"],
            end_us=record["end_us"],
            chip=record.get("chip"),
            info=record.get("info", {}),
        )


class TraceSink:
    """Where spans go.  Subclasses override :meth:`emit`."""

    def emit(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class NullSink(TraceSink):
    """Discards every span (tracing plumbing with zero retention)."""

    def emit(self, span: Span) -> None:
        pass


class InMemorySink(TraceSink):
    """Keeps every span in a list (analysis within the same process)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)


class JsonlSink(TraceSink):
    """Streams spans to a JSON-lines file.

    Records are written in emission order with a fixed key order and
    Python's deterministic float repr, so identical runs yield
    byte-identical files.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w")
        self.count = 0

    def emit(self, span: Span) -> None:
        self._handle.write(json.dumps(span.to_dict()))
        self._handle.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Tracer:
    """Assigns request ids and routes spans to a sink.

    The tracer is attached to the :class:`~repro.ssd.controller.SSDController`
    (``controller.tracer``); the FTL hooks test ``tracer is not None``
    and otherwise do nothing, so a disabled tracer costs one pointer
    comparison per hook and the simulation's event sequence is
    untouched either way (recording never schedules events).
    """

    __slots__ = ("sink", "exemplars", "_next_request", "_admits")

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink = sink if sink is not None else InMemorySink()
        #: optional :class:`~repro.obs.exemplars.ExemplarRecorder` fed
        #: out-of-band page context via :meth:`annotate`
        self.exemplars = None
        self._next_request = 0
        #: (request, lpn) -> buffer-admission time, open until dispatch
        self._admits: Dict[Tuple[int, int], float] = {}

    # -- request lifecycle ---------------------------------------------

    def begin_request(self) -> int:
        """Allocate the next request id (ids are issue-ordered, so two
        identically seeded runs number their requests identically)."""
        request = self._next_request
        self._next_request += 1
        return request

    def end_request(
        self,
        request: int,
        is_read: bool,
        lpn: int,
        n_pages: int,
        issued_us: float,
        completed_us: float,
        tenant: Optional[str] = None,
    ) -> None:
        """Emit the end-to-end ``request`` span.

        ``tenant`` tags the span in multi-tenant runs; untagged requests
        emit exactly the historical span layout (golden traces are
        byte-pinned), so the key only appears when a tenant is named.
        """
        info = {
            "kind": "read" if is_read else "write",
            "lpn": lpn,
            "n_pages": n_pages,
        }
        if tenant is not None:
            info["tenant"] = tenant
        self.sink.emit(
            Span(
                request=request,
                lpn=None,
                stage="request",
                start_us=issued_us,
                end_us=completed_us,
                info=info,
            )
        )

    # -- span emission --------------------------------------------------

    def span(
        self,
        request: Optional[int],
        lpn: Optional[int],
        stage: str,
        start_us: float,
        end_us: float,
        chip: Optional[int] = None,
        **info: object,
    ) -> None:
        self.sink.emit(
            Span(
                request=request,
                lpn=lpn,
                stage=stage,
                start_us=start_us,
                end_us=end_us,
                chip=chip,
                info=info,
            )
        )

    # -- exemplar side channel ------------------------------------------

    def annotate(self, request: int, lpn: int, **info: object) -> None:
        """Report out-of-band page context (e.g. the physical h-layer)
        for exemplar sampling *without* emitting a span.

        Span layouts are byte-pinned by the golden traces, so context
        that only exemplars need must not widen span ``info``; this
        side channel forwards it to the attached
        :class:`~repro.obs.exemplars.ExemplarRecorder` instead and is a
        no-op when none is attached.
        """
        if self.exemplars is not None:
            self.exemplars.annotate(request, lpn, info)

    # -- write-buffer bookkeeping ---------------------------------------

    def note_admit(self, request: int, lpn: int, now_us: float) -> None:
        """A page entered the write buffer; the ``buffer_staged`` span
        stays open until :meth:`pop_admit` at WL-group dispatch."""
        self._admits[(request, lpn)] = now_us

    def pop_admit(self, request: int, lpn: int) -> Optional[float]:
        """Close a page's staging interval.  Returns ``None`` when the
        page has no open interval (e.g. a failed program's re-dispatch,
        which starts its next stage directly)."""
        return self._admits.pop((request, lpn), None)

    def close(self) -> None:
        self.sink.close()
