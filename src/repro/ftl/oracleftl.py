"""oracleFTL: a perfect-knowledge upper bound on PS-aware programming.

Section 4.1.1 opens with the observation that *"if we knew the exact
number of required ISPP loops for each cell a priori, no VFY would be
necessary -- although this would be impossible in practice"*.  This FTL
makes that impossible assumption: it reads each WL's true program profile
and safe window margin straight out of the device model and programs
*every* WL (leaders included) with fully optimized parameters.

It bounds from above what any monitoring-based scheme can achieve on the
program path, which makes it a useful ablation reference: the gap between
cubeFTL and oracleFTL is the price of having to monitor leaders at
default latency.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.maxloop import (
    DEFAULT_BER_EP1_MAX,
    DEFAULT_MARGIN_TABLE,
    MarginTable,
    spare_margin,
)
from repro.core.wam import Allocation
from repro.ftl.pageftl import PageFTL
from repro.nand.ispp import ProgramParams
from repro.ssd.config import SSDConfig


class OracleFTL(PageFTL):
    """Programs every WL with its true optimal parameters (no monitoring)."""

    name = "oracleFTL"

    def __init__(
        self,
        config: SSDConfig,
        controller,
        margin_table: MarginTable = DEFAULT_MARGIN_TABLE,
        ber_ep1_max: float = DEFAULT_BER_EP1_MAX,
    ) -> None:
        super().__init__(config, controller)
        self.margin_table = margin_table
        self.ber_ep1_max = ber_ep1_max
        self._params_cache = {}

    def program_params(
        self, chip_id: int, allocation: Allocation
    ) -> Tuple[ProgramParams, float]:
        layer = allocation.address.layer
        key = (chip_id, allocation.block, layer)
        cached = self._params_cache.get(key)
        if cached is not None:
            return cached
        chip = self.controller.chip(chip_id)
        # the oracle: read the ground truth out of the device model
        slowdown = chip.reliability.program_slowdown(chip_id, allocation.block, layer)
        profile = chip.ispp.wl_profile(slowdown)
        true_ber_ep1 = chip.reliability.ber_ep1(
            chip_id, allocation.block, layer, 0, chip.block_aging(allocation.block)
        )
        margin = self.margin_table.margin_mv(
            spare_margin(true_ber_ep1, self.ber_ep1_max)
        )
        params = chip.ispp.follower_params(profile, window_squeeze_mv=int(margin))
        result = (params, float(params.window_squeeze_mv))
        self._params_cache[key] = result
        return result

    def on_block_erased(self, chip_id: int, block: int) -> None:
        stale = [key for key in self._params_cache if key[:2] == (chip_id, block)]
        for key in stale:
            del self._params_cache[key]
