"""Geometry of the 3D NAND cubic organization.

The paper's device (Section 3.1 and Section 6.1) is a 3D TLC chip whose
blocks have 48 horizontal layers (h-layers) with 4 word lines (WLs) per
h-layer; each WL holds three 16-KB logical pages (TLC).  The WLs of a block
can equivalently be grouped into *vertical layers* (v-layers): v-layer *j*
is the set of WLs with intra-layer index *j* across all h-layers
(Fig. 1(a) of the paper).

Addressing conventions used throughout the package:

- an **h-layer index** counts from the *top* of the stack (``0`` = topmost
  layer, first to be etched widest) down to ``n_layers - 1`` (bottom);
- a **WL index** within an h-layer runs ``0 .. wls_per_layer - 1``; index
  ``0`` is, by convention, the *leading* WL of the h-layer under the
  horizontal-first program order (the actual leader is whichever WL of the
  h-layer happens to be programmed first -- see :mod:`repro.core.opm`);
- a **page index** within a WL runs ``0 .. pages_per_wl - 1`` (LSB, CSB,
  MSB for TLC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.nand.errors import AddressError


@dataclass(frozen=True)
class WLAddress:
    """Address of a word line within a block: (h-layer, wl-in-layer)."""

    layer: int
    wl: int

    def as_tuple(self) -> Tuple[int, int]:
        return (self.layer, self.wl)


@dataclass(frozen=True)
class PageAddress:
    """Fully qualified physical page address within one chip."""

    block: int
    layer: int
    wl: int
    page: int

    @property
    def wl_address(self) -> WLAddress:
        return WLAddress(self.layer, self.wl)


@dataclass(frozen=True)
class BlockGeometry:
    """Shape of one 3D NAND block.

    Defaults match the paper's evaluated chip: 48 h-layers x 4 WLs,
    TLC (3 pages per WL), 16-KB pages.
    """

    n_layers: int = 48
    wls_per_layer: int = 4
    pages_per_wl: int = 3
    page_size_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        if self.wls_per_layer < 1:
            raise ValueError("wls_per_layer must be >= 1")
        if self.pages_per_wl < 1:
            raise ValueError("pages_per_wl must be >= 1")
        if self.page_size_bytes < 1:
            raise ValueError("page_size_bytes must be >= 1")
        # hot-path derived sizes, precomputed (frozen dataclass)
        object.__setattr__(self, "_wls_per_block", self.n_layers * self.wls_per_layer)
        object.__setattr__(
            self, "_pages_per_block", self.n_layers * self.wls_per_layer * self.pages_per_wl
        )

    @property
    def wls_per_block(self) -> int:
        return self._wls_per_block

    @property
    def pages_per_block(self) -> int:
        return self._pages_per_block

    @property
    def block_bytes(self) -> int:
        return self.pages_per_block * self.page_size_bytes

    @property
    def n_vlayers(self) -> int:
        """Number of vertical layers (one per WL slot of an h-layer)."""
        return self.wls_per_layer

    def wl_index(self, layer: int, wl: int) -> int:
        """Flatten an (h-layer, wl) pair into a block-local WL index."""
        self.check_wl(layer, wl)
        return layer * self.wls_per_layer + wl

    def wl_from_index(self, index: int) -> WLAddress:
        """Inverse of :meth:`wl_index`."""
        if not 0 <= index < self.wls_per_block:
            raise AddressError(f"WL index {index} out of range")
        return WLAddress(index // self.wls_per_layer, index % self.wls_per_layer)

    def page_index(self, layer: int, wl: int, page: int) -> int:
        """Flatten (h-layer, wl, page) into a block-local page index."""
        self.check_page(layer, wl, page)
        return self.wl_index(layer, wl) * self.pages_per_wl + page

    def page_from_index(self, index: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`page_index`: return (layer, wl, page)."""
        if not 0 <= index < self.pages_per_block:
            raise AddressError(f"page index {index} out of range")
        wl_index, page = divmod(index, self.pages_per_wl)
        addr = self.wl_from_index(wl_index)
        return (addr.layer, addr.wl, page)

    def check_wl(self, layer: int, wl: int) -> None:
        if not 0 <= layer < self.n_layers:
            raise AddressError(f"h-layer {layer} out of range [0, {self.n_layers})")
        if not 0 <= wl < self.wls_per_layer:
            raise AddressError(f"WL {wl} out of range [0, {self.wls_per_layer})")

    def check_page(self, layer: int, wl: int, page: int) -> None:
        self.check_wl(layer, wl)
        if not 0 <= page < self.pages_per_wl:
            raise AddressError(f"page {page} out of range [0, {self.pages_per_wl})")

    def iter_wls(self) -> Iterator[WLAddress]:
        """Iterate over all WLs in horizontal-first order."""
        for layer in range(self.n_layers):
            for wl in range(self.wls_per_layer):
                yield WLAddress(layer, wl)

    def iter_vlayer(self, vlayer: int) -> Iterator[WLAddress]:
        """Iterate over the WLs of one vertical layer, top to bottom."""
        if not 0 <= vlayer < self.n_vlayers:
            raise AddressError(f"v-layer {vlayer} out of range")
        for layer in range(self.n_layers):
            yield WLAddress(layer, vlayer)


@dataclass(frozen=True)
class SSDGeometry:
    """Shape of the whole SSD: channels (buses), chips, blocks, block shape.

    Defaults match the paper's evaluation platform: 2 buses x 4 chips,
    428 blocks per chip (about 32 GB usable with the default block shape).
    """

    n_channels: int = 2
    chips_per_channel: int = 4
    blocks_per_chip: int = 428
    block: BlockGeometry = BlockGeometry()

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be >= 1")
        if self.chips_per_channel < 1:
            raise ValueError("chips_per_channel must be >= 1")
        if self.blocks_per_chip < 1:
            raise ValueError("blocks_per_chip must be >= 1")
        n_chips = self.n_channels * self.chips_per_channel
        pages_per_chip = self.blocks_per_chip * self.block.pages_per_block
        object.__setattr__(self, "_n_chips", n_chips)
        object.__setattr__(self, "_pages_per_chip", pages_per_chip)
        object.__setattr__(self, "_total_pages", n_chips * pages_per_chip)

    @property
    def n_chips(self) -> int:
        return self._n_chips

    @property
    def pages_per_chip(self) -> int:
        return self._pages_per_chip

    @property
    def total_pages(self) -> int:
        return self._total_pages

    @property
    def total_bytes(self) -> int:
        return self.total_pages * self.block.page_size_bytes

    def chip_id(self, channel: int, chip: int) -> int:
        """Flatten a (channel, chip-on-channel) pair into a global chip id."""
        if not 0 <= channel < self.n_channels:
            raise AddressError(f"channel {channel} out of range")
        if not 0 <= chip < self.chips_per_channel:
            raise AddressError(f"chip {chip} out of range")
        return channel * self.chips_per_channel + chip

    def channel_of_chip(self, chip_id: int) -> int:
        """Channel (bus) that a global chip id is attached to."""
        if not 0 <= chip_id < self.n_chips:
            raise AddressError(f"chip id {chip_id} out of range")
        return chip_id // self.chips_per_channel

    def ppn(self, chip_id: int, addr: PageAddress) -> int:
        """Flatten a (chip, page-address) pair into a global physical page
        number (PPN)."""
        if not 0 <= chip_id < self.n_chips:
            raise AddressError(f"chip id {chip_id} out of range")
        if not 0 <= addr.block < self.blocks_per_chip:
            raise AddressError(f"block {addr.block} out of range")
        block_page = self.block.page_index(addr.layer, addr.wl, addr.page)
        return (
            chip_id * self.pages_per_chip
            + addr.block * self.block.pages_per_block
            + block_page
        )

    def wl_ppn(self, chip_id: int, block: int, layer: int, wl: int) -> int:
        """PPN of page 0 of a WL; the WL's pages are contiguous after it.

        ``wl_ppn(...) + page == ppn(chip_id, PageAddress(block, layer,
        wl, page))`` by the flattening formula, so a caller binding every
        page of a WL computes the base once instead of re-flattening the
        full address per page.
        """
        if not 0 <= chip_id < self.n_chips:
            raise AddressError(f"chip id {chip_id} out of range")
        if not 0 <= block < self.blocks_per_chip:
            raise AddressError(f"block {block} out of range")
        self.block.check_wl(layer, wl)
        return (
            chip_id * self.pages_per_chip
            + block * self.block.pages_per_block
            + (layer * self.block.wls_per_layer + wl) * self.block.pages_per_wl
        )

    def ppn_to_address(self, ppn: int) -> Tuple[int, PageAddress]:
        """Inverse of :meth:`ppn`: return (chip_id, page address)."""
        if not 0 <= ppn < self.total_pages:
            raise AddressError(f"PPN {ppn} out of range")
        chip_id, rest = divmod(ppn, self.pages_per_chip)
        block, block_page = divmod(rest, self.block.pages_per_block)
        layer, wl, page = self.block.page_from_index(block_page)
        return chip_id, PageAddress(block, layer, wl, page)
