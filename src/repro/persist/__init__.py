"""Durability for simulations: checkpoint/restore, SPOR, resumable sweeps.

Three independent layers (see docs/PERSISTENCE.md):

- **Checkpoint/restore** (:mod:`repro.persist.checkpoint`,
  :mod:`repro.persist.driver`): versioned on-disk snapshots of a running
  simulation at quiescent barriers, with byte-identical resume --
  surfaced as ``run_simulation(checkpoint_every=..., resume_from=...)``
  and ``repro-ssd simulate --checkpoint/--resume``.
- **SPOR** (:mod:`repro.persist.spor`): sudden-power-off injection at a
  simulated instant plus OOB-based FTL recovery, verified end-to-end by
  the shadow-store oracle.
- **Resumable sweeps** (:mod:`repro.persist.manifest`): a manifest +
  per-shard result directory so an interrupted ``repro-ssd sweep``
  reruns only unfinished shards.
"""

from repro.persist.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    config_fingerprint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    read_header,
    validate_header,
    write_checkpoint,
)
from repro.persist.driver import (
    capture_state,
    restore_state,
    run_checkpointed,
)
from repro.persist.manifest import (
    MANIFEST_SCHEMA_VERSION,
    ManifestMismatch,
    load_manifest,
    run_shards_resumable,
    shard_result_path,
    write_manifest,
)
from repro.persist.spor import SporReport, run_spor_campaign

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "MANIFEST_SCHEMA_VERSION",
    "ManifestMismatch",
    "SporReport",
    "capture_state",
    "config_fingerprint",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "load_manifest",
    "read_header",
    "restore_state",
    "run_checkpointed",
    "run_shards_resumable",
    "run_spor_campaign",
    "shard_result_path",
    "validate_header",
    "write_checkpoint",
    "write_manifest",
]
