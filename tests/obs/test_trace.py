"""Request-lifecycle tracing: tiling contract, determinism, breakdowns."""

import pytest

from repro.api import run_simulation
from repro.nand.reliability import AgingState
from repro.obs.analyze import (
    breakdown_report,
    load_trace,
    page_chains,
    request_breakdown,
    request_spans,
    stage_summary,
    validate_trace,
)
from repro.obs.trace import JsonlSink, NullSink, Span, Tracer
from repro.ssd.config import SSDConfig


def _run_traced(workload="OLTP", ftl="cube", aging=None, **kwargs):
    config = SSDConfig.small(logical_fraction=0.4)
    if aging is not None:
        config = config.with_aging(aging)
    defaults = dict(
        queue_depth=8, warmup_requests=0, prefill=0.4, n_requests=300,
        seed=7, trace="memory",
    )
    defaults.update(kwargs)
    return run_simulation(config, workload, ftl=ftl, **defaults)


class TestSpan:
    def test_roundtrip(self):
        span = Span(3, 17, "nand_read", 1.0, 2.5, chip=1, info={"retries": 2})
        assert Span.from_dict(span.to_dict()) == span
        assert span.duration_us == 1.5

    def test_fixed_key_order(self):
        span = Span(0, 1, "bus_xfer", 0.0, 1.0, chip=0, info={"b": 1, "a": 2})
        keys = list(span.to_dict().keys())
        assert keys == ["request", "lpn", "stage", "start_us", "end_us",
                        "chip", "info"]
        assert list(span.to_dict()["info"].keys()) == ["a", "b"]

    def test_info_omitted_when_empty(self):
        assert "info" not in Span(0, 1, "bus_xfer", 0.0, 1.0).to_dict()


class TestSinks:
    def test_null_sink_discards(self):
        tracer = Tracer(NullSink())
        tracer.span(0, 1, "nand_read", 0.0, 1.0)
        tracer.close()

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        tracer.span(0, 1, "nand_read", 0.0, 1.0, chip=2, retries=1)
        tracer.close()
        tracer.close()  # idempotent
        spans = load_trace(path)
        assert len(spans) == sink.count == 1
        assert spans[0].stage == "nand_read"
        assert spans[0].info == {"retries": 1}


class TestTilingContract:
    """Per-page stage spans must cover [issue, completion] exactly."""

    @pytest.mark.parametrize("ftl", ["page", "vert", "cube"])
    def test_fresh_oltp(self, ftl):
        result = _run_traced(ftl=ftl)
        assert result.spans, "no spans recorded"
        assert validate_trace(result.spans) == []

    @pytest.mark.parametrize("workload", ["OLTP", "Proxy"])
    def test_aged_with_retries(self, workload):
        result = _run_traced(
            workload=workload, ftl="page", aging=AgingState(2000, 12.0)
        )
        assert result.stats.counters.read_retries > 0
        assert validate_trace(result.spans) == []

    def test_every_request_has_a_span(self):
        result = _run_traced()
        requests = request_spans(result.spans)
        assert len(requests) == result.stats.completed_requests

    def test_spans_sum_to_request_latency_single_page(self):
        """For one-page requests the stage sum IS the request latency."""
        result = _run_traced()
        requests = request_spans(result.spans)
        chains = page_chains(result.spans)
        checked = 0
        for (request, _lpn), chain in chains.items():
            parent = requests[request]
            if parent.info["n_pages"] != 1:
                continue
            total = sum(span.duration_us for span in chain)
            assert total == pytest.approx(parent.duration_us, abs=1e-6)
            checked += 1
        assert checked > 0


class TestDeterminism:
    def test_byte_identical_jsonl_across_runs(self, tmp_path):
        paths = [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        for path in paths:
            _run_traced(trace=path)
        first, second = (open(path, "rb").read() for path in paths)
        assert first == second
        assert len(first) > 0


class TestBreakdown:
    @pytest.mark.parametrize("workload", ["OLTP", "Proxy"])
    def test_separates_queueing_nand_retry(self, workload):
        result = _run_traced(
            workload=workload, ftl="page", aging=AgingState(2000, 12.0),
            n_requests=400,
        )
        breakdown = request_breakdown(result.spans)
        totals = {"queueing": 0.0, "nand": 0.0, "retry": 0.0}
        for groups in breakdown.values():
            for key in totals:
                totals[key] += groups[key]
        assert totals["nand"] > 0
        assert totals["queueing"] > 0
        assert totals["retry"] > 0  # aged page FTL retries on reads

    def test_report_mentions_groups(self):
        result = _run_traced()
        report = breakdown_report(result.spans)
        assert "queueing" in report
        assert "nand" in report

    def test_stage_summary_counts(self):
        result = _run_traced()
        summary = stage_summary(result.spans)
        assert summary["nand_program"]["count"] > 0
        assert summary["nand_program"]["mean_us"] > 0

    def test_result_breakdown_helper(self):
        result = _run_traced()
        assert "nand" in result.breakdown()

    def test_breakdown_requires_trace(self):
        config = SSDConfig.small(logical_fraction=0.4)
        result = run_simulation(
            config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
            n_requests=50,
        )
        with pytest.raises(ValueError):
            result.breakdown()


class TestGcAttribution:
    def test_background_spans_unattributed(self):
        from repro.workloads.synthetic import uniform_random_trace

        config = SSDConfig.small(logical_fraction=0.7)
        workload = uniform_random_trace(
            config.logical_pages, 800, read_fraction=0.2, seed=5
        )
        result = run_simulation(
            config, workload, ftl="cube", queue_depth=8, prefill=0.95,
            trace="memory",
        )
        background = [
            span for span in result.spans
            if span.stage in ("gc_read", "gc_program", "erase")
        ]
        assert background, "run too small to trigger GC"
        assert all(span.request is None for span in background)
        # background work never appears in host page chains
        assert validate_trace(result.spans) == []


class TestZeroPerturbation:
    def test_tracing_does_not_change_results(self):
        untraced = _run_traced(trace=None)
        traced = _run_traced(trace="memory")
        assert traced.stats.to_dict() == untraced.stats.to_dict()
