"""Deterministic-latency prediction from process similarity.

Section 8 of the paper: *"Since the horizontal similarity guarantees
accurate I/O response times, it can be used to build SSDs with a highly
deterministic latency as a solution to the long-tail problem in SSDs."*

This module implements that extension.  Once the leading WL of an
h-layer has been monitored, the latency of every subsequent operation on
that h-layer is *computable in advance*:

- a follower program's tPROG follows exactly from the monitored loop
  intervals and the granted window margin (the ISPP engine is
  deterministic given those inputs);
- a read's sense time follows from the ORT entry (offset hits need no
  retry; only rare transient shifts deviate).

The :class:`LatencyPredictor` exposes the predictions and keeps
accuracy accounting, which the deterministic-latency benchmark and
example use to show near-zero error for PS-predicted operations versus
the wide spread a PS-unaware estimator suffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.opm import OptimalParameterManager
from repro.nand.timing import NandTiming


@dataclass
class PredictionStats:
    """Accumulates (predicted, actual) latency pairs."""

    predicted: List[float] = field(default_factory=list)
    actual: List[float] = field(default_factory=list)

    def record(self, predicted_us: float, actual_us: float) -> None:
        if predicted_us < 0 or actual_us < 0:
            raise ValueError("latencies must be >= 0")
        self.predicted.append(predicted_us)
        self.actual.append(actual_us)

    def __len__(self) -> int:
        return len(self.predicted)

    @property
    def errors_us(self) -> np.ndarray:
        return np.asarray(self.actual) - np.asarray(self.predicted)

    @property
    def mean_abs_error_us(self) -> float:
        if not self.predicted:
            return 0.0
        return float(np.abs(self.errors_us).mean())

    @property
    def exact_fraction(self) -> float:
        """Fraction of operations predicted to within one microsecond."""
        if not self.predicted:
            return 0.0
        return float((np.abs(self.errors_us) <= 1.0).mean())

    def percentile_abs_error(self, p: float) -> float:
        if not self.predicted:
            return 0.0
        return float(np.percentile(np.abs(self.errors_us), p))


class LatencyPredictor:
    """Predicts per-operation latencies from the OPM's monitored state."""

    def __init__(self, opm: OptimalParameterManager, timing: NandTiming) -> None:
        self.opm = opm
        self.timing = timing
        self.program_stats = PredictionStats()
        self.read_stats = PredictionStats()

    # ------------------------------------------------------------------
    # program side
    # ------------------------------------------------------------------

    def predict_program_us(
        self, chip_id: int, block: int, layer: int
    ) -> Optional[float]:
        """Predicted tPROG of the *next* program on an h-layer.

        Returns None when the h-layer has no monitored leader yet (its
        first program is a monitoring leader whose latency depends on the
        not-yet-observed layer speed).
        """
        if not self.opm.has_leader(chip_id, block, layer):
            return None
        observation = self.opm.leader_observation(chip_id, block, layer)
        params = self.opm.follower_params(chip_id, block, layer)
        # follower_params counts invocations as real follower programs;
        # prediction queries must not distort that statistic
        self.opm.follower_program_count -= 1
        result = self.opm.ispp.simulate(observation.monitored, params)
        predicted = result.t_prog_us
        if params.window_squeeze_mv != 0 or any(
            start > 1 for start in params.verify_plan.start_loops
        ):
            predicted += self.timing.t_param_set_us
        return predicted

    def predict_program_default_us(self) -> float:
        """PS-unaware estimate: the nominal (datasheet) tPROG."""
        return self.opm.ispp.default_t_prog_us(0.0)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def predict_read_us(self, chip_id: int, block: int, layer: int) -> float:
        """Predicted sense time of a read using the ORT hint.

        With a learned offset the read is expected to decode on the first
        sense; an unlearned h-layer is predicted at the nominal tREAD
        (the PS-unaware assumption).
        """
        return self.timing.read_us(0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def record_program(self, predicted_us: float, actual_us: float) -> None:
        self.program_stats.record(predicted_us, actual_us)

    def record_read(self, predicted_us: float, actual_us: float) -> None:
        self.read_stats.record(predicted_us, actual_us)
