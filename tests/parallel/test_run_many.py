"""``repro.api.run_many``: batch runs merged back into spec order."""

import pytest

from repro.api import run_many
from repro.parallel import RunSpec, derive_seed, resolve_seed, specs_to_shards
from repro.ssd.config import SSDConfig


def _specs(telemetry=False):
    config = SSDConfig.small()
    return [
        RunSpec(
            name=f"cell-{workload}",
            config=config,
            workload=workload,
            n_requests=200,
            prefill=0.3,
            telemetry=telemetry,
        )
        for workload in ("OLTP", "Proxy")
    ]


class TestRunMany:
    def test_results_in_spec_order(self):
        batch = run_many(_specs(), jobs=1)
        assert batch.ok
        assert batch.names == ["cell-OLTP", "cell-Proxy"]
        assert all(r is not None and r.stats.iops > 0 for r in batch.results)

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_many(_specs(telemetry=True), jobs=1)
        pooled = run_many(_specs(telemetry=True), jobs=2)
        assert serial.ok and pooled.ok
        for a, b in zip(serial.results, pooled.results):
            assert a.to_dict() == b.to_dict()
            assert a.telemetry == b.telemetry
        assert serial.telemetry == pooled.telemetry

    def test_failed_spec_is_isolated(self):
        specs = _specs() + [
            RunSpec(name="broken", config=SSDConfig.small(), workload="NOPE")
        ]
        batch = run_many(specs, jobs=2)
        assert not batch.ok
        assert set(batch.errors) == {"broken"}
        assert batch.results[2] is None
        assert batch.results[0] is not None and batch.results[1] is not None
        with pytest.raises(KeyError):
            batch.result_for("broken")
        assert batch.result_for("cell-OLTP").stats.iops > 0

    def test_merged_telemetry_present_only_when_requested(self):
        assert run_many(_specs(), jobs=1).telemetry is None
        merged = run_many(_specs(telemetry=True), jobs=1).telemetry
        assert merged is not None and "chip_busy_us" in merged

    def test_seed_resolution_rule(self):
        spec = _specs()[0]
        assert resolve_seed(spec, 7) == derive_seed(7, spec.name)
        pinned = RunSpec(
            name="pinned", config=SSDConfig.small(), workload="OLTP", seed=42
        )
        assert resolve_seed(pinned, 7) == 42

    def test_duplicate_names_rejected(self):
        spec = _specs()[0]
        with pytest.raises(ValueError, match="duplicate"):
            specs_to_shards([spec, spec], base_seed=7)
