"""Byte-identity of the hot-path optimizations on full simulations.

Two switches changed the hot path without being allowed to change any
simulated byte: the precomputed reliability tables (``REPRO_FAST_PATH``)
and the engine's batched same-timestamp dispatch.  Each test replays the
same trace three ways -- default (batched + tables), scalar tables off,
and the reference one-event-at-a-time engine loop -- and asserts the
span traces are byte-identical, across every FTL and the paper's aging
sweep.
"""

import heapq

import pytest

from repro.api import run_simulation
from repro.nand.reliability import AgingState
from repro.sim.engine import Engine
from repro.ssd.config import SSDConfig
from tests.helpers.determinism import assert_files_identical

ALL_FTLS = ["page", "vert", "cube", "oracle"]

AGING = {
    "fresh": AgingState(),
    "2k-pe": AgingState(2000, 0.0),
    "2k-pe-1yr": AgingState(2000, 12.0),
}


def _stepped_run(self, until=None, max_events=None, profiler=None):
    """The pre-batching reference loop: one event per iteration."""
    executed = 0
    while self._queue:
        if max_events is not None and executed >= max_events:
            return
        head = self._queue[0]
        if head.cancelled:
            heapq.heappop(self._queue)
            head.engine = None
            self._cancelled -= 1
            continue
        if until is not None and head.time > until:
            self._now = until
            return
        self.step()
        executed += 1
    if until is not None and until > self._now:
        self._now = until


def _run_traced(path, ftl, aging):
    config = SSDConfig.small(logical_fraction=0.4, aging=aging)
    run_simulation(
        config, "OLTP", ftl=ftl, queue_depth=8, prefill=0.4,
        n_requests=80, seed=7, trace=str(path),
    )


class TestFastPathByteIdentity:
    @pytest.mark.parametrize("aging_name", sorted(AGING))
    @pytest.mark.parametrize("ftl", ALL_FTLS)
    def test_tables_and_batching_change_no_bytes(
        self, tmp_path, monkeypatch, ftl, aging_name
    ):
        aging = AGING[aging_name]

        default = tmp_path / "default.jsonl"
        monkeypatch.setenv("REPRO_FAST_PATH", "1")
        _run_traced(default, ftl, aging)

        scalar = tmp_path / "scalar.jsonl"
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        _run_traced(scalar, ftl, aging)
        assert_files_identical(
            str(default), str(scalar),
            f"tables on vs off ({ftl}, {aging_name})",
        )

        stepped = tmp_path / "stepped.jsonl"
        monkeypatch.setenv("REPRO_FAST_PATH", "1")
        monkeypatch.setattr(Engine, "run", _stepped_run)
        _run_traced(stepped, ftl, aging)
        assert_files_identical(
            str(default), str(stepped),
            f"batched vs stepped engine ({ftl}, {aging_name})",
        )
