"""FIFO resources: buses and chip dies.

A :class:`FifoResource` is a single-server queue attached to the engine.
Jobs are submitted as *thunks* that execute when service begins and return
their service duration; this late binding matters for fidelity -- e.g. a
read's ORT offset hint must be fetched when the die actually starts the
read, after earlier reads have updated the table, not when the request
was queued.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.engine import Engine

#: a job executes at service start and returns (duration_us, payload)
Job = Callable[[], Tuple[float, Any]]
#: completion callback, receives the job's payload
Done = Callable[[Any], None]


class FifoResource:
    """A single-server FIFO queue (one NAND die or one channel)."""

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._queue: Deque[Tuple[Job, Optional[Done]]] = deque()
        self._busy = False
        self._busy_time = 0.0
        self._service_count = 0
        #: optional :class:`~repro.obs.device.ResourceTelemetry` hook
        #: (arrival queue depth, service durations); recording only,
        #: never scheduling, so the event sequence is unaffected
        self.telemetry = None

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def busy_time_us(self) -> float:
        return self._busy_time

    @property
    def service_count(self) -> int:
        return self._service_count

    def utilization(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed_us)

    def state_dict(self) -> dict:
        """Serializable state; only meaningful at quiescence (no job in
        service, nothing queued), which the checkpoint barrier asserts."""
        if self._busy or self._queue:
            raise RuntimeError(
                f"resource {self.name!r} not quiescent: "
                f"busy={self._busy}, queued={len(self._queue)}"
            )
        return {
            "busy_time_us": self._busy_time,
            "service_count": self._service_count,
        }

    def load_state_dict(self, state: dict) -> None:
        if self._busy or self._queue:
            raise RuntimeError(
                f"cannot restore state onto active resource {self.name!r}"
            )
        self._busy_time = state["busy_time_us"]
        self._service_count = state["service_count"]

    def submit(self, job: Job, on_done: Optional[Done] = None) -> None:
        """Queue a job; it runs when the server reaches it."""
        if self.telemetry is not None:
            # depth this arrival sees: waiting jobs plus the one in service
            self.telemetry.record_arrival(
                len(self._queue) + (1 if self._busy else 0)
            )
        self._queue.append((job, on_done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        job, on_done = self._queue.popleft()
        duration, payload = job()
        if duration < 0:
            raise ValueError("job duration must be >= 0")
        self._busy_time += duration
        self._service_count += 1
        if self.telemetry is not None:
            self.telemetry.record_service(duration)

        def _complete() -> None:
            # free the server first so completion callbacks observe a
            # consistent state, then deliver the payload, then continue
            self._busy = False
            if on_done is not None:
                on_done(payload)
            if not self._busy and self._queue:
                self._start_next()

        self.engine.schedule(duration, _complete)
