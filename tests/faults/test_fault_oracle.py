"""Fault-campaign differential: recovery must never serve stale data.

Runs seeded workloads through every FTL with fault injection active and
the invariant checker in strict mode: program-fail rewrites, conservative
re-reads, grown-bad retirement and GC migration all have to preserve
end-to-end data integrity, and all FTLs must still agree on the final
logical state.
"""

import pytest

from repro.check import CheckConfig
from repro.check.fuzz import DEFAULT_FTLS, run_fuzz
from repro.faults import get_campaign
from repro.ssd.config import SSDConfig


class TestOracleUnderFaults:
    @pytest.mark.parametrize("ftl", DEFAULT_FTLS)
    def test_each_ftl_clean_under_default_campaign(self, ftl):
        report = run_fuzz(seed=11, ops=150, ftls=(ftl,), faults="default")
        assert not report.violations, report.summary()
        check = report.reports[ftl]
        assert check["violations"] == 0
        oracle = check["oracle"]
        assert oracle["reads_verified"] + oracle["buffer_reads_verified"] > 0

    def test_all_ftls_agree_under_heavy_campaign(self):
        report = run_fuzz(seed=42, ops=150, faults="heavy")
        assert report.ok, report.summary()
        assert len(set(report.digests.values())) == 1

    def test_recovery_paths_actually_fired(self):
        """The campaign must exercise recovery, otherwise this suite
        proves nothing about it."""
        from repro.api import run_simulation
        from repro.check.fuzz import random_trace

        config = SSDConfig.small(logical_fraction=0.4).with_faults(
            get_campaign("heavy")
        )
        trace = random_trace(
            config.logical_pages, 800, seed=42, read_fraction=0.35
        )
        result = run_simulation(
            config, trace, ftl="cube", queue_depth=8, prefill=0.4,
            seed=42, check=CheckConfig.strict(),
        )
        assert result.check["violations"] == 0
        recovery = result.stats.recovery
        assert recovery is not None
        assert recovery.program_fails > 0
        assert recovery.blocks_retired > 0
