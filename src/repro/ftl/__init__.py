"""Flash translation layers.

- :class:`PageFTL` -- the PS-unaware page-mapping baseline.
- :class:`VertFTL` -- the inter-layer-variability baseline (conservative
  offline V_final-only adjustment, after Hung et al. [13]).
- :class:`CubeFTL` -- the paper's PS-aware FTL (OPM + WAM + MOS); with
  ``wam_enabled=False`` it becomes the cubeFTL- ablation of Section 6.3.
- :class:`DFTL` -- demand-paged mapping (bounded CMT, translation pages
  in flash) over the pageFTL allocation policy.
"""

from repro.ftl.base import BaseFTL, FTLCounters
from repro.ftl.mapping import PageMapper, UNMAPPED
from repro.ftl.blockmgr import BlockManager, BlockState, OutOfSpaceError
from repro.ftl.pageftl import PageFTL
from repro.ftl.vertftl import VertFTL
from repro.ftl.cubeftl import CubeFTL
from repro.ftl.oracleftl import OracleFTL
from repro.ftl.dftl import DFTL

_FTL_REGISTRY = {
    "page": PageFTL,
    "pageftl": PageFTL,
    "vert": VertFTL,
    "vertftl": VertFTL,
    "cube": CubeFTL,
    "cubeftl": CubeFTL,
    "oracle": OracleFTL,
    "oracleftl": OracleFTL,
    "dftl": DFTL,
}


def make_ftl(name, config, controller, **kwargs):
    """Instantiate an FTL by name ("page", "vert", "cube", "cube-").

    ``"cube-"`` yields cubeFTL with the WAM disabled (horizontal-first
    allocation), the paper's cubeFTL- configuration.
    """
    key = name.lower()
    if key in ("cube-", "cubeftl-"):
        return CubeFTL(config, controller, wam_enabled=False, **kwargs)
    try:
        cls = _FTL_REGISTRY[key]
    except KeyError:
        raise ValueError(f"unknown FTL {name!r}") from None
    return cls(config, controller, **kwargs)


__all__ = [
    "BaseFTL",
    "FTLCounters",
    "PageMapper",
    "UNMAPPED",
    "BlockManager",
    "BlockState",
    "OutOfSpaceError",
    "PageFTL",
    "VertFTL",
    "CubeFTL",
    "OracleFTL",
    "DFTL",
    "make_ftl",
]
